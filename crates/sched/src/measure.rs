//! The execution measure `ε_σ` (paper §3), computed exactly.
//!
//! A scheduler `σ` induces a probability measure on the σ-field generated
//! by cones of execution fragments. Over a finite horizon the measure is
//! fully described by the weights of *terminal* executions — executions
//! where `σ` halted (possibly with partial probability), where nothing is
//! enabled, or that reached the horizon. [`execution_measure`] expands the
//! cone tree and returns exactly that description; image measures under
//! insight functions (`f-dist`, Def. 3.5) follow by [`Disc::map`].
//!
//! The engine is generic over the weight domain: [`execution_measure`] is
//! the `f64` fast path, [`execution_measure_exact`] lifts every dyadic
//! weight into exact rationals for certification runs.
//!
//! Expansion is exponential in the horizon, so the fallible entry points
//! ([`try_execution_measure`], [`try_execution_measure_in`]) thread a
//! [`Budget`] through the loop and return
//! [`EngineError::BudgetExhausted`] instead of running away — the
//! degradation path that [`crate::robust::robust_observation_dist`]
//! turns into a Monte-Carlo fallback. The panicking wrappers are kept
//! for call sites that treat these failures as model bugs.

use crate::cache::EngineCache;
use crate::error::{disabled_action, Budget, EngineError};
use crate::scheduler::Scheduler;
use dpioa_core::fxhash::FxHashMap;
use dpioa_core::memo::CacheStats;
use dpioa_core::pool::{with_pool, PoolStats, WorkerPool};
use dpioa_core::{Action, Automaton, Execution, IValue, Value};
use dpioa_prob::{Disc, Ratio, SubDisc, Weight};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The finite-horizon description of `ε_σ`: terminal executions with
/// their probabilities, summing to one.
#[derive(Clone, Debug)]
pub struct ExecutionMeasure<W = f64> {
    entries: Vec<(Execution, W)>,
    horizon: usize,
}

impl<W: Weight> ExecutionMeasure<W> {
    /// Iterate `(execution, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Execution, &W)> {
        self.entries.iter().map(|(e, w)| (e, w))
    }

    /// Number of terminal executions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the measure has no entries (cannot happen for a valid
    /// automaton: the start execution itself is terminal when σ halts).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The expansion horizon used.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Total mass (should be 1; exposed for tests).
    pub fn total(&self) -> W {
        let mut t = W::zero();
        for (_, w) in &self.entries {
            t = t.add(w);
        }
        t
    }

    /// The image measure under an observation function — the basis of
    /// `f-dist` (Def. 3.5). Fallible form of [`ExecutionMeasure::observe`].
    pub fn try_observe(
        &self,
        mut f: impl FnMut(&Execution) -> Value,
    ) -> Result<Disc<Value, W>, EngineError> {
        Disc::from_entries(
            self.entries
                .iter()
                .map(|(e, w)| (f(e), w.clone()))
                .collect(),
        )
        .map_err(|e| EngineError::InvalidMeasure {
            detail: format!("execution measure weights do not sum to one: {e:?}"),
        })
    }

    /// The image measure under an observation function; panics if the
    /// collected weights do not normalize.
    pub fn observe(&self, f: impl FnMut(&Execution) -> Value) -> Disc<Value, W> {
        self.try_observe(f)
            .expect("execution measure weights sum to one")
    }

    /// The probability of the cone `C_α` (executions extending `α`),
    /// i.e. `ε_σ(C_α)` restricted to the horizon.
    ///
    /// O(entries × |α|) per query — kept as the oracle the property
    /// tests compare against; batch query workloads (the E2/E3 bound
    /// experiments) should build a [`ConeIndex`] once instead.
    pub fn cone_prob(&self, alpha: &Execution) -> W {
        let mut t = W::zero();
        for (e, w) in &self.entries {
            if alpha.is_prefix_of(e) {
                t = t.add(w);
            }
        }
        t
    }

    /// Build a prefix-indexed cone table: every prefix of every terminal
    /// execution, mapped to its cone probability. O(entries × horizon)
    /// once (the prefixes are O(1) handles onto the shared spine), then
    /// each [`ConeIndex::cone_prob`] query is a single hash lookup.
    pub fn cone_index(&self) -> ConeIndex<W> {
        let mut weights: FxHashMap<Execution, W> = FxHashMap::default();
        for (e, w) in &self.entries {
            for p in e.prefixes() {
                match weights.entry(p) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        let slot = o.get_mut();
                        *slot = slot.add(w);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(w.clone());
                    }
                }
            }
        }
        ConeIndex {
            weights,
            horizon: self.horizon,
        }
    }
}

/// A prefix-indexed view of an [`ExecutionMeasure`]: cone probabilities
/// `ε_σ(C_α)` precomputed for every prefix `α` of a terminal execution,
/// answerable in O(1) per query. Built by [`ExecutionMeasure::cone_index`].
#[derive(Clone, Debug)]
pub struct ConeIndex<W = f64> {
    weights: FxHashMap<Execution, W>,
    horizon: usize,
}

impl<W: Weight> ConeIndex<W> {
    /// `ε_σ(C_α)` restricted to the horizon — identical to
    /// [`ExecutionMeasure::cone_prob`] (the property tests assert it),
    /// in O(1) per query.
    pub fn cone_prob(&self, alpha: &Execution) -> W {
        self.weights.get(alpha).cloned().unwrap_or_else(W::zero)
    }

    /// Number of indexed prefixes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff no prefix is indexed.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The expansion horizon of the underlying measure.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

/// Expand `ε_σ` over `horizon` steps under a [`Budget`], with a fallible
/// weight-lifting function (applied to every scheduler and transition
/// weight). This is the engine core; every other expansion entry point
/// delegates here.
pub fn try_execution_measure_in<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy,
) -> Result<ExecutionMeasure<W>, EngineError> {
    let mut entries: Vec<(Execution, W)> = Vec::new();
    let mut stack: Vec<(Execution, W)> = vec![(Execution::start_of(auto), W::one())];
    let mut expansions: usize = 0;

    while let Some((exec, weight)) = stack.pop() {
        expansions += 1;
        budget.check(entries.len(), expansions)?;
        if exec.len() >= horizon {
            entries.push((exec, weight));
            continue;
        }
        let choice = sched.schedule(auto, &exec);
        let halt = lift(choice.halt_prob().to_f64())?;
        if choice.is_halt() {
            entries.push((exec, weight));
            continue;
        }
        if !halt.is_zero() {
            entries.push((exec.clone(), weight.mul(&halt)));
        }
        for (&a, p) in choice.iter() {
            let p = lift(p.to_f64())?;
            let Some(eta) = auto.transition(exec.lstate(), a) else {
                return Err(disabled_action(sched, a, exec.lstate()));
            };
            for (q2, r) in eta.iter() {
                let r = lift(r.to_f64())?;
                stack.push((exec.extend(a, q2.clone()), weight.mul(&p).mul(&r)));
            }
        }
    }

    Ok(ExecutionMeasure { entries, horizon })
}

/// Expand `ε_σ` exactly over `horizon` steps with an infallible
/// weight-lifting function and no budget. Panics on scheduler contract
/// violations; prefer [`try_execution_measure_in`] in library code.
pub fn execution_measure_in<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    lift: impl Fn(f64) -> W + Copy,
) -> ExecutionMeasure<W> {
    match try_execution_measure_in(auto, sched, horizon, &Budget::unlimited(), |w| Ok(lift(w))) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// The `f64` execution measure under a [`Budget`].
pub fn try_execution_measure(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
) -> Result<ExecutionMeasure<f64>, EngineError> {
    try_execution_measure_in(auto, sched, horizon, budget, Ok)
}

/// The `f64` execution measure.
pub fn execution_measure(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
) -> ExecutionMeasure<f64> {
    execution_measure_in(auto, sched, horizon, |w| w)
}

/// The exact-rational execution measure under a [`Budget`]. Returns
/// [`EngineError::NonDyadicWeight`] if any weight in the model is not
/// exactly representable (i.e. not a ratio within `i128` range) —
/// certification runs must fail loudly rather than silently round.
pub fn try_execution_measure_exact(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
) -> Result<ExecutionMeasure<Ratio>, EngineError> {
    try_execution_measure_in(auto, sched, horizon, budget, |w| {
        Ratio::from_f64_exact(w).ok_or(EngineError::NonDyadicWeight { weight: w })
    })
}

/// The exact-rational execution measure. Panics if any weight in the
/// model is not exactly representable (i.e. not dyadic within `i128`
/// range) — certification runs must fail loudly.
pub fn execution_measure_exact(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
) -> ExecutionMeasure<Ratio> {
    match try_execution_measure_exact(auto, sched, horizon, &Budget::unlimited()) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// Per-lane sequential cutover: a depth's frontier expands inline
/// unless it holds at least this many nodes **per pool lane** — below
/// that, batch submission and merge overhead dominate the expansion
/// work itself. Calibrated on the BENCH workloads (walk6 / coin-bank /
/// fault-walk); override via [`ParallelPolicy::new`].
pub const SEQ_CUTOVER_PER_LANE: usize = 128;

/// How the pooled exact engine dispatches each frontier depth:
/// sequentially inline below the cutover, fanned out over the worker
/// pool at or above it. This is the adaptive replacement for the old
/// fixed spawn threshold — with a lazily-spawning pool, a query whose
/// frontiers never reach `seq_cutover` pays **zero** thread overhead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelPolicy {
    /// Parallel lanes requested (caller included). `1` never pools.
    pub threads: usize,
    /// Minimum frontier size for a depth to be pooled.
    pub seq_cutover: usize,
}

impl ParallelPolicy {
    /// An explicit policy; `threads` is clamped to at least 1.
    pub fn new(threads: usize, seq_cutover: usize) -> ParallelPolicy {
        ParallelPolicy {
            threads: threads.max(1),
            seq_cutover,
        }
    }

    /// The calibrated policy for `threads` requested lanes: lanes are
    /// clamped to the machine's available parallelism (asking a 1-core
    /// box for 4 workers only adds contention) and the cutover scales
    /// per lane ([`SEQ_CUTOVER_PER_LANE`]).
    pub fn auto(threads: usize) -> ParallelPolicy {
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        let lanes = threads.clamp(1, avail);
        ParallelPolicy {
            threads: lanes,
            seq_cutover: if lanes <= 1 {
                usize::MAX
            } else {
                SEQ_CUTOVER_PER_LANE * lanes
            },
        }
    }

    /// Never pool: the sequential (but still memoizing) engine.
    pub fn sequential() -> ParallelPolicy {
        ParallelPolicy {
            threads: 1,
            seq_cutover: usize::MAX,
        }
    }
}

/// What the pooled exact engine actually did, for [`Provenance`]
/// records and bench output.
///
/// [`Provenance`]: crate::robust::Provenance
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactStats {
    /// Lanes used on pooled depths (1 when every depth stayed inline).
    pub threads: usize,
    /// Depths fanned out over the pool.
    pub pooled_depths: usize,
    /// Depths expanded inline on the calling thread.
    pub sequential_depths: usize,
    /// Pool activity attributable to this expansion.
    pub pool: PoolStats,
    /// Cache activity attributable to this expansion.
    pub cache: CacheStats,
}

/// A frontier node: the execution, the interned id of its last state
/// (so cache lookups never re-hash), and its cone weight.
type Node<W> = (Execution, IValue, W);

/// One worker's share of a depth step: the executions that terminated in
/// this chunk, and the chunk's contribution to the next frontier.
type DepthBatch<W> = (Vec<(Execution, W)>, Vec<Node<W>>);

/// Expand one frontier node into a (worker-local) terminal/next pair,
/// resolving the scheduler choice and the successor distribution
/// through the [`EngineCache`]. Bit-identical to the uncached engines:
/// cached `Disc`s are stored verbatim and the memoryless-choice memo is
/// licensed by the [`Scheduler::schedule_memoryless`] exactness
/// contract.
#[allow(clippy::too_many_arguments)]
fn expand_node<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    cache: &EngineCache,
    budget: &Budget,
    horizon: usize,
    expansions: &AtomicUsize,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy,
    node: &Node<W>,
    entries_base: usize,
    terminal: &mut Vec<(Execution, W)>,
    next: &mut Vec<Node<W>>,
) -> Result<(), EngineError> {
    let (exec, id, weight) = node;
    let n = expansions.fetch_add(1, Ordering::Relaxed) + 1;
    budget.check(entries_base + terminal.len(), n)?;
    if exec.len() >= horizon {
        terminal.push((exec.clone(), weight.clone()));
        return Ok(());
    }
    let cached = cache.memoryless_choice(sched, auto, exec.len(), exec.lstate(), *id);
    let fresh;
    let choice: &SubDisc<Action> = match &cached {
        Some(c) => c,
        // History-dependent at this (step, state): ask per execution.
        None => {
            fresh = sched.schedule(auto, exec);
            &fresh
        }
    };
    if choice.is_halt() {
        terminal.push((exec.clone(), weight.clone()));
        return Ok(());
    }
    let halt = lift(choice.halt_prob().to_f64())?;
    if !halt.is_zero() {
        terminal.push((exec.clone(), weight.mul(&halt)));
    }
    for (&a, p) in choice.iter() {
        let p = lift(p.to_f64())?;
        let Some(entry) = cache.successors(auto, exec.lstate(), *id, a) else {
            return Err(disabled_action(sched, a, exec.lstate()));
        };
        for ((q2, r), id2) in entry.eta.iter().zip(entry.ids.iter()) {
            let r = lift(r.to_f64())?;
            next.push((exec.extend(a, q2.clone()), *id2, weight.mul(&p).mul(&r)));
        }
    }
    Ok(())
}

/// Breadth-first expansion of `ε_σ` on a caller-provided
/// [`WorkerPool`], memoizing through `cache` — the engine behind the
/// general-exact tier. Depths below [`ParallelPolicy::seq_cutover`]
/// expand inline; at or above it the frontier is split into contiguous
/// chunks fanned out over the pool and merged **in chunk order**, so
/// the resulting entry list is deterministic (independent of thread
/// scheduling), and — because model weights are dyadic, hence `f64`
/// sums are order-exact — the weights are bit-identical to the
/// sequential engines'. Budget granularity: `expansions` is shared
/// exactly (one atomic per node); the `entries` count a worker checks
/// against is the depth-start count plus its own local terminals, so
/// the entry cap can overshoot by at most one depth's worth of parallel
/// discoveries.
///
/// A worker panic (only possible through user code in the automaton,
/// scheduler or lift function) is resumed on the calling thread after
/// the depth's surviving chunks are drained.
#[allow(clippy::too_many_arguments)]
pub fn try_execution_measure_pooled_with<'env, W, L>(
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &'env EngineCache,
    pool: &WorkerPool<'_, 'env>,
    lift: L,
) -> Result<(ExecutionMeasure<W>, ExactStats), EngineError>
where
    W: Weight,
    L: Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync + 'env,
{
    let lanes = pool.workers().min(policy.threads.max(1));
    let cache_base = cache.stats();
    let pool_base = pool.stats();
    // Shared by value with batch jobs (which must outlive `'env`), so
    // the counter lives behind an `Arc` and the budget is copied.
    let expansions = Arc::new(AtomicUsize::new(0));
    let budget = *budget;
    let mut pooled_depths = 0usize;
    let mut sequential_depths = 0usize;

    let start = Execution::start_of(auto);
    let root_id = IValue::of(start.lstate());
    let mut entries: Vec<(Execution, W)> = Vec::new();
    let mut frontier: Vec<Node<W>> = vec![(start, root_id, W::one())];
    while !frontier.is_empty() {
        let entries_base = entries.len();
        let mut next: Vec<Node<W>> = Vec::new();
        if lanes <= 1 || frontier.len() < policy.seq_cutover {
            sequential_depths += 1;
            for node in &frontier {
                expand_node(
                    auto,
                    sched,
                    cache,
                    &budget,
                    horizon,
                    &expansions,
                    lift,
                    node,
                    entries_base,
                    &mut entries,
                    &mut next,
                )?;
            }
        } else {
            pooled_depths += 1;
            let chunk = frontier.len().div_ceil(lanes);
            let mut chunks: Vec<Vec<Node<W>>> = Vec::with_capacity(lanes);
            let mut rest = frontier;
            while !rest.is_empty() {
                let tail = rest.split_off(chunk.min(rest.len()));
                chunks.push(rest);
                rest = tail;
            }
            let expansions = Arc::clone(&expansions);
            let results = pool.run_batch(chunks, move |_, chunk: Vec<Node<W>>| {
                let mut terminal = Vec::new();
                let mut local_next = Vec::new();
                for node in &chunk {
                    expand_node(
                        auto,
                        sched,
                        cache,
                        &budget,
                        horizon,
                        &expansions,
                        lift,
                        node,
                        entries_base,
                        &mut terminal,
                        &mut local_next,
                    )?;
                }
                Ok::<DepthBatch<W>, EngineError>((terminal, local_next))
            });
            for outcome in results {
                match outcome {
                    Ok(Ok((terminal, local_next))) => {
                        entries.extend(terminal);
                        next.extend(local_next);
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        }
        frontier = next;
    }
    let stats = ExactStats {
        threads: if pooled_depths > 0 { lanes } else { 1 },
        pooled_depths,
        sequential_depths,
        pool: pool.stats().since(pool_base),
        cache: cache.stats().since(cache_base),
    };
    Ok((ExecutionMeasure { entries, horizon }, stats))
}

/// [`try_execution_measure_pooled_with`] on a self-provisioned pool:
/// workers spawn lazily on the first pooled depth, so a query whose
/// frontiers stay below the cutover never pays thread overhead.
pub fn try_execution_measure_pooled_in<W, L>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &EngineCache,
    lift: L,
) -> Result<(ExecutionMeasure<W>, ExactStats), EngineError>
where
    W: Weight,
    L: Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync,
{
    if policy.threads == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "cannot expand with zero worker threads".into(),
        });
    }
    with_pool(policy.threads, |pool| {
        try_execution_measure_pooled_with(auto, sched, horizon, budget, policy, cache, pool, lift)
    })
}

/// The `f64` pooled + memoized execution measure under a [`Budget`].
pub fn try_execution_measure_pooled(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &EngineCache,
) -> Result<(ExecutionMeasure<f64>, ExactStats), EngineError> {
    try_execution_measure_pooled_in(auto, sched, horizon, budget, policy, cache, Ok)
}

/// Parallel expansion with a fresh per-call cache — kept as the
/// compatibility entry point; now a thin wrapper over the pooled engine
/// (persistent lazily-spawned workers instead of a `thread::scope` per
/// depth).
pub fn try_execution_measure_parallel_in<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    threads: usize,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync,
) -> Result<ExecutionMeasure<W>, EngineError> {
    if threads == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "cannot expand with zero worker threads".into(),
        });
    }
    let cache = EngineCache::new();
    let policy = ParallelPolicy::new(threads, SEQ_CUTOVER_PER_LANE * threads.max(1));
    try_execution_measure_pooled_in(auto, sched, horizon, budget, policy, &cache, lift)
        .map(|(measure, _)| measure)
}

/// The `f64` parallel execution measure under a [`Budget`].
pub fn try_execution_measure_parallel(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    threads: usize,
) -> Result<ExecutionMeasure<f64>, EngineError> {
    try_execution_measure_parallel_in(auto, sched, horizon, budget, threads, Ok)
}

/// One-call helper: the distribution of `f(execution)` under `ε_σ`.
pub fn observation_dist(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    f: impl FnMut(&Execution) -> Value,
) -> Disc<Value> {
    execution_measure(auto, sched, horizon).observe(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FirstEnabled, HaltingMix, ScriptedScheduler};
    use dpioa_core::{Action, ExplicitAutomaton, Signature, Value};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    /// flip: 0 →(1/2) heads(1) / tails(2); then report from either.
    fn coin() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("m-coin", Value::int(0))
            .state(0, Signature::new([], [], [act("m-flip")]))
            .state(1, Signature::new([], [act("m-report")], []))
            .state(2, Signature::new([], [act("m-report")], []))
            .transition(
                0,
                act("m-flip"),
                Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 1),
            )
            .step(1, act("m-report"), 1)
            .step(2, act("m-report"), 2)
            .build()
    }

    #[test]
    fn measure_is_normalized() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 3);
        assert!((m.total() - 1.0).abs() < 1e-12);
        assert_eq!(m.horizon(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn coin_splits_mass_evenly() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 1);
        // Two terminal executions, each 1/2.
        assert_eq!(m.len(), 2);
        for (_, w) in m.iter() {
            assert_eq!(*w, 0.5);
        }
    }

    #[test]
    fn observation_distribution() {
        let auto = coin();
        let d = observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        assert_eq!(d.prob(&Value::int(1)), 0.5);
        assert_eq!(d.prob(&Value::int(2)), 0.5);
    }

    #[test]
    fn halting_scheduler_leaves_mass_on_short_executions() {
        let auto = coin();
        // Follow with prob 1/2, halt with prob 1/2 at every step.
        let s = HaltingMix::new(FirstEnabled, 1, 1);
        let m = execution_measure(&auto, &s, 1);
        assert!((m.total() - 1.0).abs() < 1e-12);
        // Empty execution keeps mass 1/2.
        let empty = Execution::start_of(&auto);
        let w = m
            .iter()
            .find(|(e, _)| **e == empty)
            .map(|(_, w)| *w)
            .unwrap();
        assert_eq!(w, 0.5);
    }

    #[test]
    fn cone_probabilities() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 2);
        let root = Execution::start_of(&auto);
        assert!((m.cone_prob(&root) - 1.0).abs() < 1e-12);
        let heads = root.extend(act("m-flip"), Value::int(1));
        assert_eq!(m.cone_prob(&heads), 0.5);
    }

    #[test]
    fn scripted_schedule_produces_single_path_per_branch() {
        let auto = coin();
        let s = ScriptedScheduler::new(vec![act("m-flip"), act("m-report")]);
        let m = execution_measure(&auto, &s, 10);
        // flip then report on both branches: 2 executions of length 2.
        assert_eq!(m.len(), 2);
        for (e, w) in m.iter() {
            assert_eq!(e.len(), 2);
            assert_eq!(*w, 0.5);
        }
    }

    #[test]
    fn exact_measure_matches_f64_on_dyadics() {
        let auto = coin();
        let mf = execution_measure(&auto, &FirstEnabled, 2);
        let mr = execution_measure_exact(&auto, &FirstEnabled, 2);
        assert_eq!(mr.total(), Ratio::ONE);
        assert_eq!(mf.len(), mr.len());
        for (e, w) in mf.iter() {
            let exact: Vec<_> = mr.iter().filter(|(e2, _)| *e2 == e).collect();
            assert_eq!(exact.len(), 1);
            assert_eq!(Ratio::from_f64_exact(*w).unwrap(), *exact[0].1);
        }
    }

    #[test]
    fn horizon_zero_is_the_start_execution() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 0);
        assert_eq!(m.len(), 1);
        let (e, w) = m.iter().next().unwrap();
        assert_eq!(e.len(), 0);
        assert_eq!(*w, 1.0);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        let auto = coin();
        let free = execution_measure(&auto, &FirstEnabled, 3);
        let budgeted = try_execution_measure(
            &auto,
            &FirstEnabled,
            3,
            &Budget::unlimited()
                .with_max_entries(1_000)
                .with_max_expansions(1_000),
        )
        .unwrap();
        assert_eq!(free.len(), budgeted.len());
        assert!((budgeted.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_expansion_budget_exhausts_with_progress() {
        let auto = coin();
        let err = try_execution_measure(
            &auto,
            &FirstEnabled,
            5,
            &Budget::unlimited().with_max_expansions(2),
        )
        .unwrap_err();
        match err {
            EngineError::BudgetExhausted {
                expansions,
                deadline_hit,
                ..
            } => {
                assert_eq!(expansions, 3);
                assert!(!deadline_hit);
            }
            other => panic!("expected budget exhaustion, got {other}"),
        }
    }

    #[test]
    fn exact_budget_variant_exhausts_too() {
        let auto = coin();
        let err = try_execution_measure_exact(
            &auto,
            &FirstEnabled,
            5,
            &Budget::unlimited().with_max_entries(0),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExhausted { .. }));
    }

    #[test]
    fn cone_index_matches_naive_oracle() {
        let auto = coin();
        let s = HaltingMix::new(FirstEnabled, 3, 2);
        let m = execution_measure(&auto, &s, 3);
        let idx = m.cone_index();
        assert!(!idx.is_empty());
        assert_eq!(idx.horizon(), 3);
        // Every indexed prefix agrees with the naive scan; plus a probe
        // of executions outside the tree.
        for (e, _) in m.iter() {
            for p in e.prefixes() {
                assert_eq!(idx.cone_prob(&p), m.cone_prob(&p));
            }
        }
        let ghost = Execution::from_state(Value::int(77));
        assert_eq!(idx.cone_prob(&ghost), 0.0);
        assert_eq!(m.cone_prob(&ghost), 0.0);
    }

    #[test]
    fn parallel_frontier_matches_sequential_bitwise() {
        let auto = coin();
        for threads in [1, 2, 4] {
            let seq = execution_measure(&auto, &FirstEnabled, 3);
            let par = try_execution_measure_parallel(
                &auto,
                &FirstEnabled,
                3,
                &Budget::unlimited(),
                threads,
            )
            .unwrap();
            assert_eq!(par.len(), seq.len());
            assert_eq!(par.total(), seq.total());
            // Same set of (execution, weight) pairs, bit-identical.
            for (e, w) in seq.iter() {
                let found: Vec<_> = par.iter().filter(|(e2, _)| *e2 == e).collect();
                assert_eq!(found.len(), 1);
                assert_eq!(*found[0].1, *w);
            }
        }
    }

    #[test]
    fn parallel_frontier_respects_budget_and_thread_validation() {
        let auto = coin();
        let err = try_execution_measure_parallel(
            &auto,
            &FirstEnabled,
            5,
            &Budget::unlimited().with_max_expansions(2),
            2,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExhausted { .. }));
        let err = try_execution_measure_parallel(&auto, &FirstEnabled, 2, &Budget::unlimited(), 0)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidSampling { .. }));
    }

    /// A scheduler that deliberately violates Def. 3.1 by choosing an
    /// action that is never enabled.
    struct Rogue;
    impl crate::scheduler::Scheduler for Rogue {
        fn schedule(
            &self,
            _auto: &dyn Automaton,
            _exec: &Execution,
        ) -> dpioa_prob::SubDisc<Action> {
            dpioa_prob::SubDisc::dirac(act("m-rogue"))
        }
        fn describe(&self) -> String {
            "rogue".into()
        }
    }

    #[test]
    fn disabled_action_is_an_error_not_a_panic() {
        let auto = coin();
        let err = try_execution_measure(&auto, &Rogue, 3, &Budget::unlimited()).unwrap_err();
        match err {
            EngineError::DisabledAction {
                scheduler, action, ..
            } => {
                assert_eq!(scheduler, "rogue");
                assert_eq!(action, act("m-rogue"));
            }
            other => panic!("expected disabled-action error, got {other}"),
        }
    }
}
