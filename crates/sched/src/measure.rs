//! The execution measure `ε_σ` (paper §3), computed exactly.
//!
//! A scheduler `σ` induces a probability measure on the σ-field generated
//! by cones of execution fragments. Over a finite horizon the measure is
//! fully described by the weights of *terminal* executions — executions
//! where `σ` halted (possibly with partial probability), where nothing is
//! enabled, or that reached the horizon. [`execution_measure`] expands the
//! cone tree and returns exactly that description; image measures under
//! insight functions (`f-dist`, Def. 3.5) follow by [`Disc::map`].
//!
//! The engine is generic over the weight domain: [`execution_measure`] is
//! the `f64` fast path, [`execution_measure_exact`] lifts every dyadic
//! weight into exact rationals for certification runs.
//!
//! Expansion is exponential in the horizon, so the fallible entry points
//! ([`try_execution_measure`], [`try_execution_measure_in`]) thread a
//! [`Budget`] through the loop and return
//! [`EngineError::BudgetExhausted`] instead of running away — the
//! degradation path that [`crate::robust::robust_observation_dist`]
//! turns into a Monte-Carlo fallback. The panicking wrappers are kept
//! for call sites that treat these failures as model bugs.

use crate::cache::{
    decode_choice, decode_trans, lane_tail, ChoiceScope, EngineCache, LaneMemo, TailHalt,
    TailTemplate,
};
use crate::checkpoint::{stratum_reason, ConeCheckpoint, ExpansionOutcome, StratumSink};
use crate::error::{disabled_action, Budget, EngineError};
use crate::scheduler::Scheduler;
use dpioa_core::fxhash::FxHashMap;
use dpioa_core::memo::CacheStats;
use dpioa_core::pool::{even_spans, with_pool_seeded, PoolStats, WorkerPool, DEFAULT_STEAL_SEED};
use dpioa_core::{Action, Automaton, Execution, IValue, Value};
use dpioa_prob::{Disc, Ratio, SubDisc, Weight};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The finite-horizon description of `ε_σ`: terminal executions with
/// their probabilities, summing to one.
#[derive(Clone, Debug)]
pub struct ExecutionMeasure<W = f64> {
    entries: Vec<(Execution, W)>,
    horizon: usize,
}

impl<W: Weight> ExecutionMeasure<W> {
    /// Assemble a measure from a terminal list the caller guarantees to
    /// be a complete finite-horizon description of `ε_σ` — the flat
    /// engine's constructor (`crate::flat`); not a public API because
    /// arbitrary entry lists are not measures.
    pub(crate) fn from_parts(entries: Vec<(Execution, W)>, horizon: usize) -> ExecutionMeasure<W> {
        ExecutionMeasure { entries, horizon }
    }

    /// Iterate `(execution, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Execution, &W)> {
        self.entries.iter().map(|(e, w)| (e, w))
    }

    /// Number of terminal executions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the measure has no entries (cannot happen for a valid
    /// automaton: the start execution itself is terminal when σ halts).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The expansion horizon used.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Total mass (should be 1; exposed for tests).
    pub fn total(&self) -> W {
        let mut t = W::zero();
        for (_, w) in &self.entries {
            t = t.add(w);
        }
        t
    }

    /// The image measure under an observation function — the basis of
    /// `f-dist` (Def. 3.5). Fallible form of [`ExecutionMeasure::observe`].
    pub fn try_observe(
        &self,
        mut f: impl FnMut(&Execution) -> Value,
    ) -> Result<Disc<Value, W>, EngineError> {
        Disc::from_entries(
            self.entries
                .iter()
                .map(|(e, w)| (f(e), w.clone()))
                .collect(),
        )
        .map_err(|e| EngineError::InvalidMeasure {
            detail: format!("execution measure weights do not sum to one: {e:?}"),
        })
    }

    /// The image measure under an observation function; panics if the
    /// collected weights do not normalize.
    pub fn observe(&self, f: impl FnMut(&Execution) -> Value) -> Disc<Value, W> {
        self.try_observe(f)
            .expect("execution measure weights sum to one")
    }

    /// The probability of the cone `C_α` (executions extending `α`),
    /// i.e. `ε_σ(C_α)` restricted to the horizon.
    ///
    /// O(entries × |α|) per query — kept as the oracle the property
    /// tests compare against; batch query workloads (the E2/E3 bound
    /// experiments) should build a [`ConeIndex`] once instead.
    pub fn cone_prob(&self, alpha: &Execution) -> W {
        let mut t = W::zero();
        for (e, w) in &self.entries {
            if alpha.is_prefix_of(e) {
                t = t.add(w);
            }
        }
        t
    }

    /// Build a prefix-indexed cone table: every prefix of every terminal
    /// execution, mapped to its cone probability. O(entries × horizon)
    /// once (the prefixes are O(1) handles onto the shared spine), then
    /// each [`ConeIndex::cone_prob`] query is a single hash lookup.
    pub fn cone_index(&self) -> ConeIndex<W> {
        let mut weights: FxHashMap<Execution, W> = FxHashMap::default();
        for (e, w) in &self.entries {
            for p in e.prefixes() {
                match weights.entry(p) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        let slot = o.get_mut();
                        *slot = slot.add(w);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(w.clone());
                    }
                }
            }
        }
        ConeIndex {
            weights,
            horizon: self.horizon,
        }
    }
}

/// A prefix-indexed view of an [`ExecutionMeasure`]: cone probabilities
/// `ε_σ(C_α)` precomputed for every prefix `α` of a terminal execution,
/// answerable in O(1) per query. Built by [`ExecutionMeasure::cone_index`].
#[derive(Clone, Debug)]
pub struct ConeIndex<W = f64> {
    weights: FxHashMap<Execution, W>,
    horizon: usize,
}

impl<W: Weight> ConeIndex<W> {
    /// `ε_σ(C_α)` restricted to the horizon — identical to
    /// [`ExecutionMeasure::cone_prob`] (the property tests assert it),
    /// in O(1) per query.
    pub fn cone_prob(&self, alpha: &Execution) -> W {
        self.weights.get(alpha).cloned().unwrap_or_else(W::zero)
    }

    /// Number of indexed prefixes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff no prefix is indexed.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The expansion horizon of the underlying measure.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

/// Expand `ε_σ` over `horizon` steps under a [`Budget`], with a fallible
/// weight-lifting function (applied to every scheduler and transition
/// weight). This is the engine core; every other expansion entry point
/// delegates here.
pub fn try_execution_measure_in<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy,
) -> Result<ExecutionMeasure<W>, EngineError> {
    let mut entries: Vec<(Execution, W)> = Vec::new();
    let mut stack: Vec<(Execution, W)> = vec![(Execution::start_of(auto), W::one())];
    let mut expansions: usize = 0;

    while let Some((exec, weight)) = stack.pop() {
        expansions += 1;
        budget.check(entries.len(), expansions)?;
        if exec.len() >= horizon {
            entries.push((exec, weight));
            continue;
        }
        let choice = sched.schedule(auto, &exec);
        let halt = lift(choice.halt_prob().to_f64())?;
        if choice.is_halt() {
            entries.push((exec, weight));
            continue;
        }
        if !halt.is_zero() {
            entries.push((exec.clone(), weight.mul(&halt)));
        }
        for (&a, p) in choice.iter() {
            let p = lift(p.to_f64())?;
            let Some(eta) = auto.transition(exec.lstate(), a) else {
                return Err(disabled_action(sched, a, exec.lstate()));
            };
            for (q2, r) in eta.iter() {
                let r = lift(r.to_f64())?;
                stack.push((exec.extend(a, q2.clone()), weight.mul(&p).mul(&r)));
            }
        }
    }

    Ok(ExecutionMeasure { entries, horizon })
}

/// Expand `ε_σ` exactly over `horizon` steps with an infallible
/// weight-lifting function and no budget. Panics on scheduler contract
/// violations; prefer [`try_execution_measure_in`] in library code.
pub fn execution_measure_in<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    lift: impl Fn(f64) -> W + Copy,
) -> ExecutionMeasure<W> {
    match try_execution_measure_in(auto, sched, horizon, &Budget::unlimited(), |w| Ok(lift(w))) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// The `f64` execution measure under a [`Budget`].
pub fn try_execution_measure(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
) -> Result<ExecutionMeasure<f64>, EngineError> {
    try_execution_measure_in(auto, sched, horizon, budget, Ok)
}

/// The `f64` execution measure.
pub fn execution_measure(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
) -> ExecutionMeasure<f64> {
    execution_measure_in(auto, sched, horizon, |w| w)
}

/// The exact-rational execution measure under a [`Budget`]. Returns
/// [`EngineError::NonDyadicWeight`] if any weight in the model is not
/// exactly representable (i.e. not a ratio within `i128` range) —
/// certification runs must fail loudly rather than silently round.
pub fn try_execution_measure_exact(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
) -> Result<ExecutionMeasure<Ratio>, EngineError> {
    try_execution_measure_in(auto, sched, horizon, budget, |w| {
        Ratio::from_f64_exact(w).ok_or(EngineError::NonDyadicWeight { weight: w })
    })
}

/// The exact-rational execution measure. Panics if any weight in the
/// model is not exactly representable (i.e. not dyadic within `i128`
/// range) — certification runs must fail loudly.
pub fn execution_measure_exact(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
) -> ExecutionMeasure<Ratio> {
    match try_execution_measure_exact(auto, sched, horizon, &Budget::unlimited()) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// Per-lane sequential cutover: a depth's frontier expands inline
/// unless it holds at least this many nodes **per pool lane** — below
/// that, batch submission and merge overhead dominate the expansion
/// work itself. Calibrated on the BENCH workloads (walk6 / coin-bank /
/// fault-walk); override via [`ParallelPolicy::new`].
pub const SEQ_CUTOVER_PER_LANE: usize = 128;

/// Default steal-split granularity: a stolen span is subdivided down to
/// (roughly) this many frontier nodes per grain. Large enough that the
/// per-grain bookkeeping (one atomic add, one contribution record, the
/// output vec allocations) amortizes; small enough that a hot span
/// redistributes. Retuned from 64 after the throttled-wakeup rework:
/// grains this size keep the caller's drain loop out of the deque
/// locks long enough to matter, and split-on-steal still subdivides a
/// stolen span down to `unit` for idle lanes.
pub const DEFAULT_SPLIT_UNIT: usize = 256;

/// Once a pooled frontier is within this many steps of the horizon,
/// each grain expands its entire remaining subtree in-grain
/// ([`expand_tail_grain`]) instead of round-tripping the last few
/// frontiers through dispatch/merge. With fanout-two workloads the
/// tail holds the overwhelming majority of the cone tree's nodes
/// (about `1 - 2^-K` of them), so this is where the pooled engine
/// earns its speedup; the per-depth segment merge keeps the result
/// bit-identical to sequential expansion.
pub(crate) const TAIL_DEPTHS: usize = 5;

/// How the pooled exact engine dispatches each frontier depth:
/// sequentially inline below the cutover, fanned out as splittable
/// spans over the work-stealing pool at or above it. This is the
/// adaptive replacement for the old fixed spawn threshold — with a
/// lazily-spawning pool, a query whose frontiers never reach
/// `seq_cutover` pays **zero** thread overhead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelPolicy {
    /// Parallel lanes requested (caller included). `1` never pools.
    pub threads: usize,
    /// Minimum frontier size for a depth to be pooled.
    pub seq_cutover: usize,
    /// Steal-split granularity in frontier nodes (see
    /// [`DEFAULT_SPLIT_UNIT`]); clamped to at least 1.
    pub split_unit: usize,
    /// Seed for the pool's deterministic steal-victim RNG. Only the
    /// schedule of steals depends on it — results never do (the
    /// bit-identity proptests sweep seeds).
    pub steal_seed: u64,
}

impl ParallelPolicy {
    /// An explicit policy; `threads` is clamped to at least 1.
    pub fn new(threads: usize, seq_cutover: usize) -> ParallelPolicy {
        ParallelPolicy {
            threads: threads.max(1),
            seq_cutover,
            split_unit: DEFAULT_SPLIT_UNIT,
            steal_seed: DEFAULT_STEAL_SEED,
        }
    }

    /// The calibrated policy for `threads` requested lanes: the cutover
    /// scales per lane ([`SEQ_CUTOVER_PER_LANE`]). Lanes are **not**
    /// clamped to `available_parallelism` — with work-stealing deques
    /// an overcommitted lane is just a deque another lane drains, and
    /// containerized bench boxes routinely under-report their
    /// parallelism. The cutover still keeps small queries inline.
    pub fn auto(threads: usize) -> ParallelPolicy {
        let lanes = threads.max(1);
        ParallelPolicy {
            threads: lanes,
            seq_cutover: if lanes <= 1 {
                usize::MAX
            } else {
                SEQ_CUTOVER_PER_LANE * lanes
            },
            split_unit: DEFAULT_SPLIT_UNIT,
            steal_seed: DEFAULT_STEAL_SEED,
        }
    }

    /// Never pool: the sequential (but still memoizing) engine.
    pub fn sequential() -> ParallelPolicy {
        ParallelPolicy {
            threads: 1,
            seq_cutover: usize::MAX,
            split_unit: DEFAULT_SPLIT_UNIT,
            steal_seed: DEFAULT_STEAL_SEED,
        }
    }

    /// This policy with a different steal-split granularity.
    pub fn with_split_unit(self, split_unit: usize) -> ParallelPolicy {
        ParallelPolicy {
            split_unit: split_unit.max(1),
            ..self
        }
    }

    /// This policy with a different steal-RNG seed.
    pub fn with_steal_seed(self, steal_seed: u64) -> ParallelPolicy {
        ParallelPolicy { steal_seed, ..self }
    }
}

/// What the pooled exact engine actually did, for [`Provenance`]
/// records and bench output.
///
/// [`Provenance`]: crate::robust::Provenance
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExactStats {
    /// Lanes used on pooled depths (1 when every depth stayed inline).
    pub threads: usize,
    /// Depths fanned out over the pool.
    pub pooled_depths: usize,
    /// Depths expanded inline on the calling thread.
    pub sequential_depths: usize,
    /// Pool activity attributable to this expansion.
    pub pool: PoolStats,
    /// Cache activity attributable to this expansion.
    pub cache: CacheStats,
}

/// A frontier node: the execution, the interned id of its last state
/// (so cache lookups never re-hash), and its cone weight.
type Node<W> = (Execution, IValue, W);

/// One grain's output at a pooled depth: the frontier range it covered
/// (identified by `start`), the lane that ran it, its per-depth
/// terminal segments, and its contribution to the next frontier.
///
/// `segs[k]` holds the executions that terminate `k` steps past this
/// grain's frontier depth. On a normal pooled depth `segs` has length
/// 1 (only this depth's halts); within [`TAIL_DEPTHS`] of the horizon
/// the grain expands its whole remaining subtree in place
/// ([`expand_tail_grain`]) and `segs` has one slot per remaining depth.
/// Sorting grains by `start` and concatenating segment `k` across all
/// grains, for `k = 0, 1, …`, reproduces exactly the per-depth
/// sequential processing order (see the determinism note on
/// [`try_execution_measure_pooled_with`]).
struct Contribution<W> {
    start: usize,
    lane: usize,
    segs: Vec<Vec<(Execution, W)>>,
    next: Vec<Node<W>>,
}

/// Expand one frontier node into a (worker-local) terminal/next pair,
/// resolving the scheduler choice and the successor distribution
/// through the shared [`EngineCache`] — the inline-depth path.
/// `ordinal` is this node's position in the global expansion count
/// (for budget accounting). Bit-identical to the uncached engines:
/// cached `Disc`s are stored verbatim and the memoryless-choice memo
/// is licensed by the [`Scheduler::schedule_memoryless`] exactness
/// contract.
#[allow(clippy::too_many_arguments)]
fn expand_node<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    cache: &EngineCache,
    scope: ChoiceScope,
    budget: &Budget,
    horizon: usize,
    ordinal: usize,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy,
    node: &Node<W>,
    entries_base: usize,
    terminal: &mut Vec<(Execution, W)>,
    next: &mut Vec<Node<W>>,
) -> Result<(), EngineError> {
    let (exec, id, weight) = node;
    budget.check(entries_base + terminal.len(), ordinal)?;
    if exec.len() >= horizon {
        terminal.push((exec.clone(), weight.clone()));
        return Ok(());
    }
    let cached = cache.memoryless_choice(scope, sched, auto, exec.len(), exec.lstate(), *id);
    let fresh;
    let choice: &SubDisc<Action> = match &cached {
        Some(c) => c,
        // History-dependent at this (step, state): ask per execution.
        None => {
            fresh = sched.schedule(auto, exec);
            &fresh
        }
    };
    if choice.is_halt() {
        terminal.push((exec.clone(), weight.clone()));
        return Ok(());
    }
    let halt = lift(choice.halt_prob().to_f64())?;
    if !halt.is_zero() {
        terminal.push((exec.clone(), weight.mul(&halt)));
    }
    for (&a, p) in choice.iter() {
        let p = lift(p.to_f64())?;
        let Some(entry) = cache.successors(auto, exec.lstate(), *id, a) else {
            return Err(disabled_action(sched, a, exec.lstate()));
        };
        for ((q2, r), id2) in entry.eta.iter().zip(entry.ids.iter()) {
            let r = lift(r.to_f64())?;
            next.push((exec.extend(a, q2.clone()), *id2, weight.mul(&p).mul(&r)));
        }
    }
    Ok(())
}

/// [`expand_node`] for a pooled grain on a *normal* depth (more than
/// [`TAIL_DEPTHS`] steps from the horizon): lookups go through the
/// lane's decoded L1 ([`LaneMemo`]) — plain hash probes, probabilities
/// already lifted — and every child goes to the next frontier.
///
/// Bit-identity: decoded weights are the same lifts the shared path
/// computes per node and the per-entry `weight.mul(&p).mul(&r)` order
/// is unchanged.
#[allow(clippy::too_many_arguments)]
fn expand_node_lane<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    shared: &EngineCache,
    scope: ChoiceScope,
    lane: &mut LaneMemo<W>,
    budget: &Budget,
    ordinal: usize,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy,
    node: &Node<W>,
    entries_base: usize,
    terminal: &mut Vec<(Execution, W)>,
    next: &mut Vec<Node<W>>,
) -> Result<(), EngineError> {
    let (exec, id, weight) = node;
    budget.check(entries_base + terminal.len(), ordinal)?;
    let step = exec.len();
    // Disjoint field borrows: the decoded choice stays borrowed from
    // `choices` while `trans` is probed mutably per action — no `Arc`
    // clones on the hit path (the whole point of the L1).
    let LaneMemo {
        trans,
        choices,
        trans_cap,
        choice_cap,
        ..
    } = lane;
    if choices.len() >= *choice_cap {
        choices.clear();
    }
    let cached = match choices.entry((step, *id)) {
        std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => v.insert(decode_choice(
            shared,
            scope,
            sched,
            auto,
            step,
            exec.lstate(),
            *id,
            lift,
        )?),
    };
    if let Some(choice) = cached {
        if choice.is_halt {
            terminal.push((exec.clone(), weight.clone()));
            return Ok(());
        }
        let halt = choice.halt.as_ref().expect("non-halt choice lifts halt");
        if !halt.is_zero() {
            terminal.push((exec.clone(), weight.mul(halt)));
        }
        for (a, p) in &choice.acts {
            if trans.len() >= *trans_cap {
                trans.clear();
            }
            let slot = match trans.entry((*id, *a)) {
                std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(decode_trans(shared, auto, exec.lstate(), *id, *a, lift)?)
                }
            };
            let Some(entry) = slot else {
                return Err(disabled_action(sched, *a, exec.lstate()));
            };
            for (q2, id2, r) in &entry.succ {
                next.push((exec.extend(*a, q2.clone()), *id2, weight.mul(p).mul(r)));
            }
        }
        return Ok(());
    }
    // History-dependent at this (step, state): ask per execution and
    // lift per node, exactly like the shared path.
    let fresh = sched.schedule(auto, exec);
    if fresh.is_halt() {
        terminal.push((exec.clone(), weight.clone()));
        return Ok(());
    }
    let halt = lift(fresh.halt_prob().to_f64())?;
    if !halt.is_zero() {
        terminal.push((exec.clone(), weight.mul(&halt)));
    }
    for (&a, p) in fresh.iter() {
        let p = lift(p.to_f64())?;
        if trans.len() >= *trans_cap {
            trans.clear();
        }
        let slot = match trans.entry((*id, a)) {
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(decode_trans(shared, auto, exec.lstate(), *id, a, lift)?)
            }
        };
        let Some(entry) = slot else {
            return Err(disabled_action(sched, a, exec.lstate()));
        };
        for (q2, id2, r) in &entry.succ {
            next.push((exec.extend(a, q2.clone()), *id2, weight.mul(&p).mul(r)));
        }
    }
    Ok(())
}

/// The tail arm of a pooled grain: the grain's span sits within
/// [`TAIL_DEPTHS`] steps of the horizon, so each node's entire
/// remaining subtree is expanded in-grain — none of the last `K`
/// frontiers (the overwhelming majority of the cone tree's nodes)
/// round-trips through dispatch/merge. The common path compiles the
/// `(step, state)` subtree once per lane into a [`TailTemplate`] and
/// replays it per node ([`replay_tail`]): no cache probes, no
/// scheduler calls, just extend/multiply/push per edge. Terminals `k`
/// steps past the grain's frontier depth are emitted into `segs[k]`;
/// `segs.len()` is the remaining depth count plus one.
///
/// Order reproduction: each local level is the sequential engine's
/// frontier at that depth *restricted to this grain's subtree*, in the
/// same order (each frontier is the concatenation of the previous
/// depth's children in parent order — induction over `k`). So the
/// per-level emission into `segs[k]` reproduces each skipped depth's
/// sequential order exactly, and the weight products multiply in the
/// same per-node order as the per-depth engine: dyadic weights stay
/// bit-identical.
///
/// Returns the number of descendant nodes visited past the span itself
/// — the sequential engine counts each as one frontier-node expansion,
/// so the grain reserves their ordinals in one batched add.
#[allow(clippy::too_many_arguments)]
fn expand_tail_grain<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    shared: &EngineCache,
    scope: ChoiceScope,
    lane: &mut LaneMemo<W>,
    budget: &Budget,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy,
    work: &[Node<W>],
    entries_base: usize,
    base: usize,
    segs: &mut [Vec<(Execution, W)>],
) -> Result<usize, EngineError> {
    let remaining = segs.len() - 1;
    if remaining == 0 {
        // The span already sits at the horizon: unconditional terminal
        // copies, exactly like the sequential engine's horizon check.
        let seg = &mut segs[0];
        for (i, (exec, _id, w)) in work.iter().enumerate() {
            budget.check(entries_base + seg.len(), base + i + 1)?;
            seg.push((exec.clone(), w.clone()));
        }
        return Ok(0);
    }
    let step = work[0].0.len();
    let mut extra = 0usize;
    // Replay scratch: `stack[k]` holds the depth-`k` node currently on
    // the DFS path (slot 0 is re-seeded per frontier node; deeper slots
    // are always written before they are read). Allocated once per
    // grain.
    let mut stack: Vec<(Execution, W)> = vec![(work[0].0.clone(), W::one()); remaining];
    for (i, (exec, id, weight)) in work.iter().enumerate() {
        budget.check(
            entries_base + segs.iter().map(Vec::len).sum::<usize>(),
            base + i + 1,
        )?;
        match lane_tail(
            lane,
            shared,
            scope,
            sched,
            auto,
            step,
            exec.lstate(),
            *id,
            remaining,
            lift,
        )? {
            Some(tpl) => {
                replay_tail(&tpl, exec, weight, &mut stack, segs);
                extra += tpl.steps.len();
            }
            // No template: the subtree is history-dependent somewhere,
            // or this is the key's first sighting (two-touch
            // compilation). Expand this node's cone recursively.
            None => {
                extra +=
                    expand_node_tail(auto, sched, shared, scope, lift, exec, *id, weight, 0, segs)?;
            }
        }
    }
    Ok(extra)
}

/// Replay a compiled [`TailTemplate`] against one concrete frontier
/// node: straight-line `extend`/multiply/push per edge, emitting each
/// subtree node's terminals into its depth segment. `stack` must have
/// one slot per non-horizon depth (`segs.len() - 1`).
pub(crate) fn replay_tail<W: Weight>(
    tpl: &TailTemplate<W>,
    exec: &Execution,
    weight: &W,
    stack: &mut [(Execution, W)],
    segs: &mut [Vec<(Execution, W)>],
) {
    match &tpl.root_halt {
        TailHalt::Full => {
            segs[0].push((exec.clone(), weight.clone()));
            return;
        }
        TailHalt::Partial(h) => segs[0].push((exec.clone(), weight.mul(h))),
        TailHalt::Continue => {}
    }
    let horizon_depth = segs.len() - 1;
    stack[0] = (exec.clone(), weight.clone());
    for s in &tpl.steps {
        let k = s.depth as usize;
        let (pe, pw) = &stack[k - 1];
        let w = pw.mul(&s.p).mul(&s.r);
        let e = pe.extend(s.action, s.value.clone());
        if k == horizon_depth {
            segs[k].push((e, w));
            continue;
        }
        match &s.halt {
            TailHalt::Full => {
                segs[k].push((e, w));
                continue;
            }
            TailHalt::Partial(h) => segs[k].push((e.clone(), w.mul(h))),
            TailHalt::Continue => {}
        }
        stack[k] = (e, w);
    }
}

/// Per-node tail expansion for subtrees without a template — some
/// reachable `(step, state)` is history-dependent, or the key was seen
/// for the first time (two-touch compilation): depth-first recursion,
/// one scheduler/cache probe per node, emitting into the same
/// per-depth segments as [`replay_tail`] in the same DFS pre-order.
///
/// Deliberately probes the **shared** cache rather than the lane L1:
/// first-touch keys may never repeat (state-exploding workloads such
/// as a composed coin bank visit every tail key exactly once), and
/// decoding them into lane entries would allocate memos that are never
/// read back. The per-node lifts here compute exactly the weights the
/// decoded paths pre-store, so either path is bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn expand_node_tail<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    shared: &EngineCache,
    scope: ChoiceScope,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy,
    exec: &Execution,
    id: IValue,
    weight: &W,
    offset: usize,
    segs: &mut [Vec<(Execution, W)>],
) -> Result<usize, EngineError> {
    if offset + 1 == segs.len() {
        // At the horizon: unconditional terminal copy.
        segs[offset].push((exec.clone(), weight.clone()));
        return Ok(0);
    }
    let mut extra = 0usize;
    let cached = shared.memoryless_choice(scope, sched, auto, exec.len(), exec.lstate(), id);
    let fresh;
    let choice: &SubDisc<Action> = match &cached {
        Some(c) => c,
        // History-dependent at this (step, state): ask per execution.
        None => {
            fresh = sched.schedule(auto, exec);
            &fresh
        }
    };
    if choice.is_halt() {
        segs[offset].push((exec.clone(), weight.clone()));
        return Ok(0);
    }
    let halt = lift(choice.halt_prob().to_f64())?;
    if !halt.is_zero() {
        segs[offset].push((exec.clone(), weight.mul(&halt)));
    }
    for (&a, p) in choice.iter() {
        let p = lift(p.to_f64())?;
        let Some(entry) = shared.successors(auto, exec.lstate(), id, a) else {
            return Err(disabled_action(sched, a, exec.lstate()));
        };
        for ((q2, r), id2) in entry.eta.iter().zip(entry.ids.iter()) {
            let r = lift(r.to_f64())?;
            let w2 = weight.mul(&p).mul(&r);
            let exec2 = exec.extend(a, q2.clone());
            extra += 1 + expand_node_tail(
                auto,
                sched,
                shared,
                scope,
                lift,
                &exec2,
                *id2,
                &w2,
                offset + 1,
                segs,
            )?;
        }
    }
    Ok(extra)
}

/// Breadth-first expansion of `ε_σ` on a caller-provided
/// [`WorkerPool`], memoizing through `cache` — the engine behind the
/// general-exact tier. Depths below [`ParallelPolicy::seq_cutover`]
/// expand inline; at or above it the frontier is submitted to the pool
/// as splittable spans placed by **chunk affinity** — the range of the
/// next frontier produced by lane *i* at depth *d* is enqueued on lane
/// *i*'s deque at depth *d+1*, so each lane re-expands the successors
/// it just created (hot interner, memo and allocator state), with a
/// lane-local [`LaneMemo`] L1 in front of the shared cache. Idle lanes
/// steal from seeded-RNG-chosen victims and oversized spans split on
/// steal ([`ParallelPolicy::split_unit`]).
///
/// **Determinism:** every grain records its frontier start index;
/// grains are disjoint and cover the frontier, so sorting the grain
/// contributions by start index and concatenating reproduces exactly
/// the sequential processing order — independent of which lane ran
/// what, of steal/split timing, and of the steal seed. Because model
/// weights are dyadic, each entry's weight is an order-exact per-node
/// `f64` product, so the merged measure is bit-identical to the
/// sequential engines'.
///
/// Budget granularity: each grain reserves its expansion ordinals with
/// one atomic add (instead of one per node), so the expansion cap is
/// still exact up to grain granularity; the `entries` count a grain
/// checks against is the depth-start count plus its own local
/// terminals, so the entry cap can overshoot by at most one depth's
/// worth of parallel discoveries. After the first budget (or engine)
/// error, remaining grains of that depth drain without expanding.
///
/// A worker panic (only possible through user code in the automaton,
/// scheduler or lift function) is resumed on the calling thread after
/// the depth's surviving grains are drained.
///
/// This is the compatibility wrapper over
/// [`try_execution_measure_ckpt_with`]: a tripped budget surfaces as
/// the bare [`EngineError::BudgetExhausted`] and the checkpoint is
/// dropped.
#[allow(clippy::too_many_arguments)]
pub fn try_execution_measure_pooled_with<'env, W, L>(
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &'env EngineCache,
    pool: &WorkerPool<'_, 'env>,
    lift: L,
) -> Result<(ExecutionMeasure<W>, ExactStats), EngineError>
where
    W: Weight,
    L: Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync + 'env,
{
    let (outcome, stats) = try_execution_measure_ckpt_with(
        auto, sched, horizon, budget, policy, cache, pool, lift, None,
    )?;
    outcome.into_measure().map(|m| (m, stats))
}

/// The checkpointed pooled engine: [`try_execution_measure_pooled_with`]
/// that, instead of discarding a budget-tripped expansion, returns it
/// as an [`ExpansionOutcome::Partial`] checkpoint — and that can
/// *resume* a previous checkpoint under a new budget.
///
/// **Depth-granularity rollback.** The budget is still enforced at
/// node/grain granularity, but a trip rolls the engine back to the
/// start of the tripping depth: terminals appended during the depth are
/// truncated, partial grain contributions are discarded, and the
/// depth's full frontier (still intact in both the inline and pooled
/// paths) becomes the checkpoint frontier. That makes the conservation
/// invariant exact — resolved mass + frontier mass = 1 with no
/// tolerance — at the cost of re-expanding at most one depth on resume.
///
/// **Resume bit-identity.** `resume: Some(ckpt)` seeds the engine with
/// the checkpoint's resolved entries and frontier. Because rollback is
/// depth-aligned and the merge is deterministic (see above), resuming
/// under a sufficient budget appends exactly the terminals the
/// unbudgeted run would have appended next: the final measure is
/// bit-identical. Budget counters restart from zero on resume — that is
/// the "enlarged budget" the caller grants.
///
/// **Cancellation.** A [`crate::error::Budget::cancel`] token is
/// observed at every per-node budget check, at the start of every
/// pooled grain, and by the pool itself (queued and freshly-stolen
/// spans are skipped once the token flips), so cancellation lands
/// within one in-flight grain per lane and still yields a usable
/// checkpoint with `cancelled: true` in its reason.
#[allow(clippy::too_many_arguments)]
pub fn try_execution_measure_ckpt_with<'env, W, L>(
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &'env EngineCache,
    pool: &WorkerPool<'_, 'env>,
    lift: L,
    resume: Option<ConeCheckpoint<W>>,
) -> Result<(ExpansionOutcome<W>, ExactStats), EngineError>
where
    W: Weight,
    L: Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync + 'env,
{
    try_execution_measure_strata_with(
        auto, sched, horizon, budget, policy, cache, pool, lift, resume, None,
    )
}

/// [`try_execution_measure_ckpt_with`] that additionally offers a
/// conserving frontier snapshot to `deposit` at every stride depth
/// (see [`StratumSink`]) — the stratum-cache deposit hook. The sink is
/// called on the calling thread between depths, with the exact
/// `(entries, frontier)` state a budget trip at that depth would have
/// rolled back to, so each offered stratum is a valid resume seed.
/// With `deposit: None` this *is* the checkpointed engine, bit for
/// bit.
#[allow(clippy::too_many_arguments)]
pub fn try_execution_measure_strata_with<'env, W, L>(
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &'env EngineCache,
    pool: &WorkerPool<'_, 'env>,
    lift: L,
    resume: Option<ConeCheckpoint<W>>,
    mut deposit: Option<StratumSink<'_, ConeCheckpoint<W>>>,
) -> Result<(ExpansionOutcome<W>, ExactStats), EngineError>
where
    W: Weight,
    L: Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync + 'env,
{
    let lanes = pool.workers().min(policy.threads.max(1));
    // One scope resolution per expansion (describe() may allocate);
    // the Copy token rides into every grain closure.
    let scope = cache.choice_scope(sched);
    let cache_base = cache.stats();
    let pool_base = pool.stats();
    // Shared by value with pooled grains (which must outlive `'env`),
    // so the counter lives behind an `Arc` and the budget is cloned.
    let expansions = Arc::new(AtomicUsize::new(0));
    let budget = budget.clone();
    let mut pooled_depths = 0usize;
    let mut sequential_depths = 0usize;
    // One decoded L1 memo per pool lane, indexed by the executing lane.
    // Each lane is one thread, so the mutexes are uncontended; they
    // exist to make the scratch table `Sync` without unsafe code.
    let scratch: Arc<Vec<Mutex<LaneMemo<W>>>> = Arc::new(
        (0..pool.workers().max(1))
            .map(|_| Mutex::new(LaneMemo::new()))
            .collect(),
    );

    let (mut entries, mut frontier): (Vec<(Execution, W)>, Vec<Node<W>>) = match resume {
        Some(ckpt) => (
            ckpt.resolved,
            ckpt.frontier
                .into_iter()
                .map(|(e, w)| {
                    let id = IValue::of(e.lstate());
                    (e, id, w)
                })
                .collect(),
        ),
        None => {
            let start = Execution::start_of(auto);
            let root_id = IValue::of(start.lstate());
            (Vec::new(), vec![(start, root_id, W::one())])
        }
    };
    // Set when a depth trips the budget: the rolled-back frontier plus
    // the budget error, turned into a checkpoint after stats close.
    let mut tripped: Option<(Vec<Node<W>>, EngineError)> = None;
    // Affinity placement for the *current* frontier: contiguous
    // `(lane, start, len)` spans recording which lane produced which
    // range at the previous pooled depth. `None` after an inline depth
    // (fall back to even spans).
    let mut placement: Option<Vec<(usize, usize, usize)>> = None;
    while !frontier.is_empty() {
        // Stratum deposit hook: the loop-top `(entries, frontier)`
        // pair at depth d is exactly the state a budget trip during
        // depth d would roll back to — a conserving checkpoint.
        if let Some(sink) = deposit.as_mut() {
            let depth = frontier[0].0.len();
            if sink.wants(depth, horizon) {
                let snapshot = ConeCheckpoint {
                    resolved: entries.clone(),
                    frontier: frontier
                        .iter()
                        .map(|(e, _, w)| (e.clone(), w.clone()))
                        .collect(),
                    horizon: depth,
                    reason: stratum_reason(),
                };
                (sink.sink)(depth, snapshot);
            }
        }
        let entries_base = entries.len();
        let mut next: Vec<Node<W>> = Vec::new();
        if lanes <= 1 || frontier.len() < policy.seq_cutover {
            sequential_depths += 1;
            placement = None;
            let mut depth_error: Option<EngineError> = None;
            for node in &frontier {
                let ordinal = expansions.fetch_add(1, Ordering::Relaxed) + 1;
                if let Err(e) = expand_node(
                    auto,
                    sched,
                    cache,
                    scope,
                    &budget,
                    horizon,
                    ordinal,
                    lift,
                    node,
                    entries_base,
                    &mut entries,
                    &mut next,
                ) {
                    depth_error = Some(e);
                    break;
                }
            }
            if let Some(e) = depth_error {
                if !matches!(e, EngineError::BudgetExhausted { .. }) {
                    return Err(e);
                }
                // Roll the depth back: drop its partial terminals, keep
                // its full (still intact) frontier for the checkpoint.
                entries.truncate(entries_base);
                tripped = Some((frontier, e));
                break;
            }
            frontier = next;
        } else {
            pooled_depths += 1;
            let spans = placement
                .take()
                .unwrap_or_else(|| even_spans(frontier.len(), lanes));
            let work: Arc<Vec<Node<W>>> = Arc::new(std::mem::take(&mut frontier));
            let results: Arc<Mutex<Vec<Contribution<W>>>> = Arc::new(Mutex::new(Vec::new()));
            let first_error: Arc<Mutex<Option<EngineError>>> = Arc::new(Mutex::new(None));
            let total = work.len();
            let panics = {
                let work = Arc::clone(&work);
                let results = Arc::clone(&results);
                let first_error = Arc::clone(&first_error);
                let expansions = Arc::clone(&expansions);
                let scratch = Arc::clone(&scratch);
                let budget = budget.clone();
                pool.run_splittable_cancellable(
                    total,
                    spans,
                    policy.split_unit.max(1),
                    budget.cancel.clone(),
                    move |lane, start, len| {
                        // Fast-drain once a grain has failed: the
                        // pool still needs every grain accounted for,
                        // but no further expansion work is useful.
                        if first_error
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .is_some()
                        {
                            return;
                        }
                        // Grain-granularity budget check: the deadline
                        // and the cancel token are observed here even
                        // when every per-node check inside the grain
                        // would be reached much later (tail grains
                        // expand whole subtrees).
                        let base = expansions.load(Ordering::Relaxed);
                        if let Err(e) = budget.check(entries_base, base) {
                            let mut slot = first_error
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            return;
                        }
                        let mut memo = scratch[lane % scratch.len()]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        let base = expansions.fetch_add(len, Ordering::Relaxed);
                        // Frontier depth is uniform, so the whole grain
                        // is either in the tail window or not.
                        let step = work[start].0.len();
                        let remaining = horizon.saturating_sub(step);
                        let tail = remaining <= TAIL_DEPTHS;
                        // Pre-size the output vecs for a fanout-two
                        // grain (the dominant shape) — wider workloads
                        // fall back to doubling from there. Without
                        // this every grain re-runs the whole doubling
                        // ladder from empty.
                        // In the tail window the horizon segment is
                        // the big one (len·2^remaining for fanout-two);
                        // intermediate halt segments stay small and
                        // grow from empty.
                        let mut segs: Vec<Vec<(Execution, W)>> = if tail {
                            (0..=remaining)
                                .map(|k| {
                                    let cap = if k == remaining {
                                        (len << remaining.min(16)).min(1 << 16)
                                    } else {
                                        0
                                    };
                                    Vec::with_capacity(cap)
                                })
                                .collect()
                        } else {
                            vec![Vec::new()]
                        };
                        let mut local_next = Vec::with_capacity(if tail { 0 } else { 2 * len });
                        let mut extra = 0usize;
                        if tail {
                            match expand_tail_grain(
                                auto,
                                sched,
                                cache,
                                scope,
                                &mut memo,
                                &budget,
                                lift,
                                &work[start..start + len],
                                entries_base,
                                base,
                                &mut segs,
                            ) {
                                Ok(children) => extra += children,
                                Err(e) => {
                                    let mut slot = first_error
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    if slot.is_none() {
                                        *slot = Some(e);
                                    }
                                    return;
                                }
                            }
                        } else {
                            for i in 0..len {
                                if let Err(e) = expand_node_lane(
                                    auto,
                                    sched,
                                    cache,
                                    scope,
                                    &mut memo,
                                    &budget,
                                    base + i + 1,
                                    lift,
                                    &work[start + i],
                                    entries_base,
                                    &mut segs[0],
                                    &mut local_next,
                                ) {
                                    let mut slot = first_error
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    if slot.is_none() {
                                        *slot = Some(e);
                                    }
                                    return;
                                }
                            }
                        }
                        // Tail descendants still count as expansions
                        // (the sequential engine visits each of them
                        // as a frontier node of a later depth).
                        if extra > 0 {
                            expansions.fetch_add(extra, Ordering::Relaxed);
                        }
                        results
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(Contribution {
                                start,
                                lane,
                                segs,
                                next: local_next,
                            });
                    },
                )
            };
            if let Some(payload) = panics.into_iter().next() {
                std::panic::resume_unwind(payload);
            }
            // A pool-level cancel skip leaves no recorded error (skipped
            // grains never run the closure), so when the error slot is
            // empty re-check the token directly.
            let depth_error = first_error
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .or_else(|| {
                    if budget.is_cancelled() {
                        budget
                            .check(entries.len(), expansions.load(Ordering::Relaxed))
                            .err()
                    } else {
                        None
                    }
                });
            if let Some(e) = depth_error {
                if !matches!(e, EngineError::BudgetExhausted { .. }) {
                    return Err(e);
                }
                // Roll the depth back: discard every grain contribution
                // (entries were not touched yet on the pooled path) and
                // reclaim the depth's frontier for the checkpoint. The
                // closure and the pool's span state are gone, so the
                // `Arc` is ours again.
                let work = Arc::try_unwrap(work).unwrap_or_else(|shared| shared.as_ref().clone());
                tripped = Some((work, e));
                break;
            }
            // Deterministic merge: grain order == frontier order.
            // Segment `k` across all grains (in start order) is
            // exactly depth `step + k`'s terminal list in its
            // sequential processing order, so appending segment-major
            // reproduces the per-depth order the skipped frontiers
            // would have produced.
            let mut contributions = std::mem::take(
                &mut *results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            contributions.sort_unstable_by_key(|c| c.start);
            entries.reserve(
                contributions
                    .iter()
                    .map(|c| c.segs.iter().map(Vec::len).sum::<usize>())
                    .sum(),
            );
            next.reserve(contributions.iter().map(|c| c.next.len()).sum());
            let mut runs: Vec<(usize, usize, usize)> = Vec::new();
            let depth_segs = contributions
                .iter()
                .map(|c| c.segs.len())
                .max()
                .unwrap_or(0);
            for k in 0..depth_segs {
                for c in &mut contributions {
                    if let Some(seg) = c.segs.get_mut(k) {
                        entries.append(seg);
                    }
                    if k == 0 && !c.next.is_empty() {
                        match runs.last_mut() {
                            // Merge adjacent ranges produced by one lane.
                            Some((lane, _, len)) if *lane == c.lane => *len += c.next.len(),
                            _ => runs.push((c.lane, next.len(), c.next.len())),
                        }
                        next.append(&mut c.next);
                    }
                }
            }
            placement = Some(runs);
            frontier = next;
        }
    }
    let stats = ExactStats {
        threads: if pooled_depths > 0 { lanes } else { 1 },
        pooled_depths,
        sequential_depths,
        pool: pool.stats().since(&pool_base),
        cache: cache.stats().since(cache_base),
    };
    // Horizon stratum: the completed terminal list is per-depth
    // ordered (sequential appends per depth; the pooled merge is
    // segment-major by design), so splitting it at the horizon
    // reconstructs the loop-top state of the final absorption depth
    // exactly — halts below `horizon` resolved, the depth-`horizon`
    // cone as the frontier. A repeat query at this horizon resumes
    // from it and only pays the final absorption pass.
    if tripped.is_none() {
        if let Some(sink) = deposit.as_mut() {
            if sink.wants_horizon(horizon) {
                let split = entries
                    .iter()
                    .position(|(e, _)| e.len() >= horizon)
                    .unwrap_or(entries.len());
                let snapshot = ConeCheckpoint {
                    resolved: entries[..split].to_vec(),
                    frontier: entries[split..].to_vec(),
                    horizon,
                    reason: stratum_reason(),
                };
                (sink.sink)(horizon, snapshot);
            }
        }
    }
    let outcome = match tripped {
        None => ExpansionOutcome::Complete(ExecutionMeasure { entries, horizon }),
        Some((nodes, reason)) => ExpansionOutcome::Partial(ConeCheckpoint {
            resolved: entries,
            frontier: nodes.into_iter().map(|(e, _, w)| (e, w)).collect(),
            horizon,
            reason,
        }),
    };
    Ok((outcome, stats))
}

/// [`try_execution_measure_ckpt_with`] on a self-provisioned pool.
#[allow(clippy::too_many_arguments)] // the full budget/policy/cache/lift/resume surface is the point
pub fn try_execution_measure_ckpt_in<W, L>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &EngineCache,
    lift: L,
    resume: Option<ConeCheckpoint<W>>,
) -> Result<(ExpansionOutcome<W>, ExactStats), EngineError>
where
    W: Weight,
    L: Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync,
{
    if policy.threads == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "cannot expand with zero worker threads".into(),
        });
    }
    with_pool_seeded(policy.threads, policy.steal_seed, |pool| {
        try_execution_measure_ckpt_with(
            auto, sched, horizon, budget, policy, cache, pool, lift, resume,
        )
    })
}

/// The `f64` checkpointed pooled expansion under a [`Budget`].
pub fn try_execution_measure_ckpt(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &EngineCache,
) -> Result<(ExpansionOutcome<f64>, ExactStats), EngineError> {
    try_execution_measure_ckpt_in(auto, sched, horizon, budget, policy, cache, Ok, None)
}

/// Resume a [`ConeCheckpoint`] under a (presumably enlarged) budget:
/// the exact tier picks up where the tripped run rolled back. With a
/// sufficient budget the completed measure is bit-identical to an
/// unbudgeted run (the checkpointing proptests assert this); with an
/// insufficient one the result is another, further-along checkpoint.
pub fn try_execution_measure_resume<W, L>(
    ckpt: ConeCheckpoint<W>,
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &EngineCache,
    lift: L,
) -> Result<(ExpansionOutcome<W>, ExactStats), EngineError>
where
    W: Weight,
    L: Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync,
{
    let horizon = ckpt.horizon;
    try_execution_measure_ckpt_in(
        auto,
        sched,
        horizon,
        budget,
        policy,
        cache,
        lift,
        Some(ckpt),
    )
}

/// [`try_execution_measure_pooled_with`] on a self-provisioned pool:
/// workers spawn lazily on the first pooled depth, so a query whose
/// frontiers stay below the cutover never pays thread overhead.
pub fn try_execution_measure_pooled_in<W, L>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &EngineCache,
    lift: L,
) -> Result<(ExecutionMeasure<W>, ExactStats), EngineError>
where
    W: Weight,
    L: Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync,
{
    if policy.threads == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "cannot expand with zero worker threads".into(),
        });
    }
    with_pool_seeded(policy.threads, policy.steal_seed, |pool| {
        try_execution_measure_pooled_with(auto, sched, horizon, budget, policy, cache, pool, lift)
    })
}

/// The `f64` pooled + memoized execution measure under a [`Budget`].
pub fn try_execution_measure_pooled(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    policy: ParallelPolicy,
    cache: &EngineCache,
) -> Result<(ExecutionMeasure<f64>, ExactStats), EngineError> {
    try_execution_measure_pooled_in(auto, sched, horizon, budget, policy, cache, Ok)
}

/// Parallel expansion with a fresh per-call cache — kept as the
/// compatibility entry point; now a thin wrapper over the pooled engine
/// (persistent lazily-spawned workers instead of a `thread::scope` per
/// depth).
pub fn try_execution_measure_parallel_in<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    threads: usize,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy + Send + Sync,
) -> Result<ExecutionMeasure<W>, EngineError> {
    if threads == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "cannot expand with zero worker threads".into(),
        });
    }
    let cache = EngineCache::new();
    let policy = ParallelPolicy::new(threads, SEQ_CUTOVER_PER_LANE * threads.max(1));
    try_execution_measure_pooled_in(auto, sched, horizon, budget, policy, &cache, lift)
        .map(|(measure, _)| measure)
}

/// The `f64` parallel execution measure under a [`Budget`].
pub fn try_execution_measure_parallel(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    threads: usize,
) -> Result<ExecutionMeasure<f64>, EngineError> {
    try_execution_measure_parallel_in(auto, sched, horizon, budget, threads, Ok)
}

/// One-call helper: the distribution of `f(execution)` under `ε_σ`.
pub fn observation_dist(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    f: impl FnMut(&Execution) -> Value,
) -> Disc<Value> {
    execution_measure(auto, sched, horizon).observe(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FirstEnabled, HaltingMix, ScriptedScheduler};
    use dpioa_core::{Action, ExplicitAutomaton, Signature, Value};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    /// flip: 0 →(1/2) heads(1) / tails(2); then report from either.
    fn coin() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("m-coin", Value::int(0))
            .state(0, Signature::new([], [], [act("m-flip")]))
            .state(1, Signature::new([], [act("m-report")], []))
            .state(2, Signature::new([], [act("m-report")], []))
            .transition(
                0,
                act("m-flip"),
                Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 1),
            )
            .step(1, act("m-report"), 1)
            .step(2, act("m-report"), 2)
            .build()
    }

    #[test]
    fn measure_is_normalized() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 3);
        assert!((m.total() - 1.0).abs() < 1e-12);
        assert_eq!(m.horizon(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn coin_splits_mass_evenly() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 1);
        // Two terminal executions, each 1/2.
        assert_eq!(m.len(), 2);
        for (_, w) in m.iter() {
            assert_eq!(*w, 0.5);
        }
    }

    #[test]
    fn observation_distribution() {
        let auto = coin();
        let d = observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        assert_eq!(d.prob(&Value::int(1)), 0.5);
        assert_eq!(d.prob(&Value::int(2)), 0.5);
    }

    #[test]
    fn halting_scheduler_leaves_mass_on_short_executions() {
        let auto = coin();
        // Follow with prob 1/2, halt with prob 1/2 at every step.
        let s = HaltingMix::new(FirstEnabled, 1, 1);
        let m = execution_measure(&auto, &s, 1);
        assert!((m.total() - 1.0).abs() < 1e-12);
        // Empty execution keeps mass 1/2.
        let empty = Execution::start_of(&auto);
        let w = m
            .iter()
            .find(|(e, _)| **e == empty)
            .map(|(_, w)| *w)
            .unwrap();
        assert_eq!(w, 0.5);
    }

    #[test]
    fn cone_probabilities() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 2);
        let root = Execution::start_of(&auto);
        assert!((m.cone_prob(&root) - 1.0).abs() < 1e-12);
        let heads = root.extend(act("m-flip"), Value::int(1));
        assert_eq!(m.cone_prob(&heads), 0.5);
    }

    #[test]
    fn scripted_schedule_produces_single_path_per_branch() {
        let auto = coin();
        let s = ScriptedScheduler::new(vec![act("m-flip"), act("m-report")]);
        let m = execution_measure(&auto, &s, 10);
        // flip then report on both branches: 2 executions of length 2.
        assert_eq!(m.len(), 2);
        for (e, w) in m.iter() {
            assert_eq!(e.len(), 2);
            assert_eq!(*w, 0.5);
        }
    }

    #[test]
    fn exact_measure_matches_f64_on_dyadics() {
        let auto = coin();
        let mf = execution_measure(&auto, &FirstEnabled, 2);
        let mr = execution_measure_exact(&auto, &FirstEnabled, 2);
        assert_eq!(mr.total(), Ratio::ONE);
        assert_eq!(mf.len(), mr.len());
        for (e, w) in mf.iter() {
            let exact: Vec<_> = mr.iter().filter(|(e2, _)| *e2 == e).collect();
            assert_eq!(exact.len(), 1);
            assert_eq!(Ratio::from_f64_exact(*w).unwrap(), *exact[0].1);
        }
    }

    #[test]
    fn horizon_zero_is_the_start_execution() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 0);
        assert_eq!(m.len(), 1);
        let (e, w) = m.iter().next().unwrap();
        assert_eq!(e.len(), 0);
        assert_eq!(*w, 1.0);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        let auto = coin();
        let free = execution_measure(&auto, &FirstEnabled, 3);
        let budgeted = try_execution_measure(
            &auto,
            &FirstEnabled,
            3,
            &Budget::unlimited()
                .with_max_entries(1_000)
                .with_max_expansions(1_000),
        )
        .unwrap();
        assert_eq!(free.len(), budgeted.len());
        assert!((budgeted.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_expansion_budget_exhausts_with_progress() {
        let auto = coin();
        let err = try_execution_measure(
            &auto,
            &FirstEnabled,
            5,
            &Budget::unlimited().with_max_expansions(2),
        )
        .unwrap_err();
        match err {
            EngineError::BudgetExhausted {
                expansions,
                deadline_hit,
                ..
            } => {
                assert_eq!(expansions, 3);
                assert!(!deadline_hit);
            }
            other => panic!("expected budget exhaustion, got {other}"),
        }
    }

    #[test]
    fn exact_budget_variant_exhausts_too() {
        let auto = coin();
        let err = try_execution_measure_exact(
            &auto,
            &FirstEnabled,
            5,
            &Budget::unlimited().with_max_entries(0),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExhausted { .. }));
    }

    #[test]
    fn cone_index_matches_naive_oracle() {
        let auto = coin();
        let s = HaltingMix::new(FirstEnabled, 3, 2);
        let m = execution_measure(&auto, &s, 3);
        let idx = m.cone_index();
        assert!(!idx.is_empty());
        assert_eq!(idx.horizon(), 3);
        // Every indexed prefix agrees with the naive scan; plus a probe
        // of executions outside the tree.
        for (e, _) in m.iter() {
            for p in e.prefixes() {
                assert_eq!(idx.cone_prob(&p), m.cone_prob(&p));
            }
        }
        let ghost = Execution::from_state(Value::int(77));
        assert_eq!(idx.cone_prob(&ghost), 0.0);
        assert_eq!(m.cone_prob(&ghost), 0.0);
    }

    #[test]
    fn parallel_frontier_matches_sequential_bitwise() {
        let auto = coin();
        for threads in [1, 2, 4] {
            let seq = execution_measure(&auto, &FirstEnabled, 3);
            let par = try_execution_measure_parallel(
                &auto,
                &FirstEnabled,
                3,
                &Budget::unlimited(),
                threads,
            )
            .unwrap();
            assert_eq!(par.len(), seq.len());
            assert_eq!(par.total(), seq.total());
            // Same set of (execution, weight) pairs, bit-identical.
            for (e, w) in seq.iter() {
                let found: Vec<_> = par.iter().filter(|(e2, _)| *e2 == e).collect();
                assert_eq!(found.len(), 1);
                assert_eq!(*found[0].1, *w);
            }
        }
    }

    #[test]
    fn parallel_frontier_respects_budget_and_thread_validation() {
        let auto = coin();
        let err = try_execution_measure_parallel(
            &auto,
            &FirstEnabled,
            5,
            &Budget::unlimited().with_max_expansions(2),
            2,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExhausted { .. }));
        let err = try_execution_measure_parallel(&auto, &FirstEnabled, 2, &Budget::unlimited(), 0)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidSampling { .. }));
    }

    /// A scheduler that deliberately violates Def. 3.1 by choosing an
    /// action that is never enabled.
    struct Rogue;
    impl crate::scheduler::Scheduler for Rogue {
        fn schedule(
            &self,
            _auto: &dyn Automaton,
            _exec: &Execution,
        ) -> dpioa_prob::SubDisc<Action> {
            dpioa_prob::SubDisc::dirac(act("m-rogue"))
        }
        fn describe(&self) -> String {
            "rogue".into()
        }
    }

    #[test]
    fn disabled_action_is_an_error_not_a_panic() {
        let auto = coin();
        let err = try_execution_measure(&auto, &Rogue, 3, &Budget::unlimited()).unwrap_err();
        match err {
            EngineError::DisabledAction {
                scheduler, action, ..
            } => {
                assert_eq!(scheduler, "rogue");
                assert_eq!(action, act("m-rogue"));
            }
            other => panic!("expected disabled-action error, got {other}"),
        }
    }
}
