//! The execution measure `ε_σ` (paper §3), computed exactly.
//!
//! A scheduler `σ` induces a probability measure on the σ-field generated
//! by cones of execution fragments. Over a finite horizon the measure is
//! fully described by the weights of *terminal* executions — executions
//! where `σ` halted (possibly with partial probability), where nothing is
//! enabled, or that reached the horizon. [`execution_measure`] expands the
//! cone tree and returns exactly that description; image measures under
//! insight functions (`f-dist`, Def. 3.5) follow by [`Disc::map`].
//!
//! The engine is generic over the weight domain: [`execution_measure`] is
//! the `f64` fast path, [`execution_measure_exact`] lifts every dyadic
//! weight into exact rationals for certification runs.
//!
//! Expansion is exponential in the horizon, so the fallible entry points
//! ([`try_execution_measure`], [`try_execution_measure_in`]) thread a
//! [`Budget`] through the loop and return
//! [`EngineError::BudgetExhausted`] instead of running away — the
//! degradation path that [`crate::robust::robust_observation_dist`]
//! turns into a Monte-Carlo fallback. The panicking wrappers are kept
//! for call sites that treat these failures as model bugs.

use crate::error::{disabled_action, Budget, EngineError};
use crate::scheduler::Scheduler;
use dpioa_core::{Automaton, Execution, Value};
use dpioa_prob::{Disc, Ratio, Weight};

/// The finite-horizon description of `ε_σ`: terminal executions with
/// their probabilities, summing to one.
#[derive(Clone, Debug)]
pub struct ExecutionMeasure<W = f64> {
    entries: Vec<(Execution, W)>,
    horizon: usize,
}

impl<W: Weight> ExecutionMeasure<W> {
    /// Iterate `(execution, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Execution, &W)> {
        self.entries.iter().map(|(e, w)| (e, w))
    }

    /// Number of terminal executions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the measure has no entries (cannot happen for a valid
    /// automaton: the start execution itself is terminal when σ halts).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The expansion horizon used.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Total mass (should be 1; exposed for tests).
    pub fn total(&self) -> W {
        let mut t = W::zero();
        for (_, w) in &self.entries {
            t = t.add(w);
        }
        t
    }

    /// The image measure under an observation function — the basis of
    /// `f-dist` (Def. 3.5). Fallible form of [`ExecutionMeasure::observe`].
    pub fn try_observe(
        &self,
        mut f: impl FnMut(&Execution) -> Value,
    ) -> Result<Disc<Value, W>, EngineError> {
        Disc::from_entries(
            self.entries
                .iter()
                .map(|(e, w)| (f(e), w.clone()))
                .collect(),
        )
        .map_err(|e| EngineError::InvalidMeasure {
            detail: format!("execution measure weights do not sum to one: {e:?}"),
        })
    }

    /// The image measure under an observation function; panics if the
    /// collected weights do not normalize.
    pub fn observe(&self, f: impl FnMut(&Execution) -> Value) -> Disc<Value, W> {
        self.try_observe(f)
            .expect("execution measure weights sum to one")
    }

    /// The probability of the cone `C_α` (executions extending `α`),
    /// i.e. `ε_σ(C_α)` restricted to the horizon.
    pub fn cone_prob(&self, alpha: &Execution) -> W {
        let mut t = W::zero();
        for (e, w) in &self.entries {
            if alpha.is_prefix_of(e) {
                t = t.add(w);
            }
        }
        t
    }
}

/// Expand `ε_σ` over `horizon` steps under a [`Budget`], with a fallible
/// weight-lifting function (applied to every scheduler and transition
/// weight). This is the engine core; every other expansion entry point
/// delegates here.
pub fn try_execution_measure_in<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
    lift: impl Fn(f64) -> Result<W, EngineError> + Copy,
) -> Result<ExecutionMeasure<W>, EngineError> {
    let mut entries: Vec<(Execution, W)> = Vec::new();
    let mut stack: Vec<(Execution, W)> = vec![(Execution::start_of(auto), W::one())];
    let mut expansions: usize = 0;

    while let Some((exec, weight)) = stack.pop() {
        expansions += 1;
        budget.check(entries.len(), expansions)?;
        if exec.len() >= horizon {
            entries.push((exec, weight));
            continue;
        }
        let choice = sched.schedule(auto, &exec);
        let halt = lift(choice.halt_prob().to_f64())?;
        if choice.is_halt() {
            entries.push((exec, weight));
            continue;
        }
        if !halt.is_zero() {
            entries.push((exec.clone(), weight.mul(&halt)));
        }
        for (&a, p) in choice.iter() {
            let p = lift(p.to_f64())?;
            let Some(eta) = auto.transition(exec.lstate(), a) else {
                return Err(disabled_action(sched, a, exec.lstate()));
            };
            for (q2, r) in eta.iter() {
                let r = lift(r.to_f64())?;
                stack.push((exec.extend(a, q2.clone()), weight.mul(&p).mul(&r)));
            }
        }
    }

    Ok(ExecutionMeasure { entries, horizon })
}

/// Expand `ε_σ` exactly over `horizon` steps with an infallible
/// weight-lifting function and no budget. Panics on scheduler contract
/// violations; prefer [`try_execution_measure_in`] in library code.
pub fn execution_measure_in<W: Weight>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    lift: impl Fn(f64) -> W + Copy,
) -> ExecutionMeasure<W> {
    match try_execution_measure_in(auto, sched, horizon, &Budget::unlimited(), |w| Ok(lift(w))) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// The `f64` execution measure under a [`Budget`].
pub fn try_execution_measure(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
) -> Result<ExecutionMeasure<f64>, EngineError> {
    try_execution_measure_in(auto, sched, horizon, budget, Ok)
}

/// The `f64` execution measure.
pub fn execution_measure(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
) -> ExecutionMeasure<f64> {
    execution_measure_in(auto, sched, horizon, |w| w)
}

/// The exact-rational execution measure under a [`Budget`]. Returns
/// [`EngineError::NonDyadicWeight`] if any weight in the model is not
/// exactly representable (i.e. not a ratio within `i128` range) —
/// certification runs must fail loudly rather than silently round.
pub fn try_execution_measure_exact(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    budget: &Budget,
) -> Result<ExecutionMeasure<Ratio>, EngineError> {
    try_execution_measure_in(auto, sched, horizon, budget, |w| {
        Ratio::from_f64_exact(w).ok_or(EngineError::NonDyadicWeight { weight: w })
    })
}

/// The exact-rational execution measure. Panics if any weight in the
/// model is not exactly representable (i.e. not dyadic within `i128`
/// range) — certification runs must fail loudly.
pub fn execution_measure_exact(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
) -> ExecutionMeasure<Ratio> {
    match try_execution_measure_exact(auto, sched, horizon, &Budget::unlimited()) {
        Ok(m) => m,
        Err(e) => panic!("{e}"),
    }
}

/// One-call helper: the distribution of `f(execution)` under `ε_σ`.
pub fn observation_dist(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    f: impl FnMut(&Execution) -> Value,
) -> Disc<Value> {
    execution_measure(auto, sched, horizon).observe(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FirstEnabled, HaltingMix, ScriptedScheduler};
    use dpioa_core::{Action, ExplicitAutomaton, Signature, Value};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    /// flip: 0 →(1/2) heads(1) / tails(2); then report from either.
    fn coin() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("m-coin", Value::int(0))
            .state(0, Signature::new([], [], [act("m-flip")]))
            .state(1, Signature::new([], [act("m-report")], []))
            .state(2, Signature::new([], [act("m-report")], []))
            .transition(
                0,
                act("m-flip"),
                Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 1),
            )
            .step(1, act("m-report"), 1)
            .step(2, act("m-report"), 2)
            .build()
    }

    #[test]
    fn measure_is_normalized() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 3);
        assert!((m.total() - 1.0).abs() < 1e-12);
        assert_eq!(m.horizon(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn coin_splits_mass_evenly() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 1);
        // Two terminal executions, each 1/2.
        assert_eq!(m.len(), 2);
        for (_, w) in m.iter() {
            assert_eq!(*w, 0.5);
        }
    }

    #[test]
    fn observation_distribution() {
        let auto = coin();
        let d = observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        assert_eq!(d.prob(&Value::int(1)), 0.5);
        assert_eq!(d.prob(&Value::int(2)), 0.5);
    }

    #[test]
    fn halting_scheduler_leaves_mass_on_short_executions() {
        let auto = coin();
        // Follow with prob 1/2, halt with prob 1/2 at every step.
        let s = HaltingMix::new(FirstEnabled, 1, 1);
        let m = execution_measure(&auto, &s, 1);
        assert!((m.total() - 1.0).abs() < 1e-12);
        // Empty execution keeps mass 1/2.
        let empty = Execution::start_of(&auto);
        let w = m
            .iter()
            .find(|(e, _)| **e == empty)
            .map(|(_, w)| *w)
            .unwrap();
        assert_eq!(w, 0.5);
    }

    #[test]
    fn cone_probabilities() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 2);
        let root = Execution::start_of(&auto);
        assert!((m.cone_prob(&root) - 1.0).abs() < 1e-12);
        let heads = root.extend(act("m-flip"), Value::int(1));
        assert_eq!(m.cone_prob(&heads), 0.5);
    }

    #[test]
    fn scripted_schedule_produces_single_path_per_branch() {
        let auto = coin();
        let s = ScriptedScheduler::new(vec![act("m-flip"), act("m-report")]);
        let m = execution_measure(&auto, &s, 10);
        // flip then report on both branches: 2 executions of length 2.
        assert_eq!(m.len(), 2);
        for (e, w) in m.iter() {
            assert_eq!(e.len(), 2);
            assert_eq!(*w, 0.5);
        }
    }

    #[test]
    fn exact_measure_matches_f64_on_dyadics() {
        let auto = coin();
        let mf = execution_measure(&auto, &FirstEnabled, 2);
        let mr = execution_measure_exact(&auto, &FirstEnabled, 2);
        assert_eq!(mr.total(), Ratio::ONE);
        assert_eq!(mf.len(), mr.len());
        for (e, w) in mf.iter() {
            let exact: Vec<_> = mr.iter().filter(|(e2, _)| *e2 == e).collect();
            assert_eq!(exact.len(), 1);
            assert_eq!(Ratio::from_f64_exact(*w).unwrap(), *exact[0].1);
        }
    }

    #[test]
    fn horizon_zero_is_the_start_execution() {
        let auto = coin();
        let m = execution_measure(&auto, &FirstEnabled, 0);
        assert_eq!(m.len(), 1);
        let (e, w) = m.iter().next().unwrap();
        assert_eq!(e.len(), 0);
        assert_eq!(*w, 1.0);
    }

    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        let auto = coin();
        let free = execution_measure(&auto, &FirstEnabled, 3);
        let budgeted = try_execution_measure(
            &auto,
            &FirstEnabled,
            3,
            &Budget::unlimited()
                .with_max_entries(1_000)
                .with_max_expansions(1_000),
        )
        .unwrap();
        assert_eq!(free.len(), budgeted.len());
        assert!((budgeted.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_expansion_budget_exhausts_with_progress() {
        let auto = coin();
        let err = try_execution_measure(
            &auto,
            &FirstEnabled,
            5,
            &Budget::unlimited().with_max_expansions(2),
        )
        .unwrap_err();
        match err {
            EngineError::BudgetExhausted {
                expansions,
                deadline_hit,
                ..
            } => {
                assert_eq!(expansions, 3);
                assert!(!deadline_hit);
            }
            other => panic!("expected budget exhaustion, got {other}"),
        }
    }

    #[test]
    fn exact_budget_variant_exhausts_too() {
        let auto = coin();
        let err = try_execution_measure_exact(
            &auto,
            &FirstEnabled,
            5,
            &Budget::unlimited().with_max_entries(0),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::BudgetExhausted { .. }));
    }

    /// A scheduler that deliberately violates Def. 3.1 by choosing an
    /// action that is never enabled.
    struct Rogue;
    impl crate::scheduler::Scheduler for Rogue {
        fn schedule(
            &self,
            _auto: &dyn Automaton,
            _exec: &Execution,
        ) -> dpioa_prob::SubDisc<Action> {
            dpioa_prob::SubDisc::dirac(act("m-rogue"))
        }
        fn describe(&self) -> String {
            "rogue".into()
        }
    }

    #[test]
    fn disabled_action_is_an_error_not_a_panic() {
        let auto = coin();
        let err = try_execution_measure(&auto, &Rogue, 3, &Budget::unlimited()).unwrap_err();
        match err {
            EngineError::DisabledAction {
                scheduler, action, ..
            } => {
                assert_eq!(scheduler, "rogue");
                assert_eq!(action, act("m-rogue"));
            }
            other => panic!("expected disabled-action error, got {other}"),
        }
    }
}
