//! Graceful degradation: lumped → general-exact → Monte-Carlo, with
//! provenance.
//!
//! [`robust_observation_dist`] is the production entry point for
//! observation distributions. It tries the engines from cheapest-exact
//! to approximate:
//!
//! 1. **state-lumped exact** ([`crate::lumped`]): polynomial forward
//!    pass, eligible when the scheduler is memoryless and the
//!    observation factors through trace or last state;
//! 2. **general exact** ([`crate::measure`]): full cone expansion
//!    (parallel over the frontier when
//!    [`RobustConfig::exact_threads`] > 1), for history-dependent
//!    schedulers;
//! 3. **Monte-Carlo** ([`crate::sample`]): when the exact [`Budget`] is
//!    exhausted.
//!
//! The returned [`Provenance`] names the tier that answered and a
//! statistical error bound, so downstream emulation distances can widen
//! their ε accordingly instead of silently treating an estimate as
//! exact. A lumped-tier budget exhaustion skips straight to Monte-Carlo:
//! the lumped class space is a quotient of the general execution space,
//! so a budget too small for the quotient is certainly too small for the
//! cover.

use crate::cache::EngineCache;
use crate::error::{Budget, EngineError};
use crate::lumped::{try_lumped_observation_dist_cached, Observation};
use crate::measure::{try_execution_measure_pooled_with, ExactStats, ParallelPolicy};
use crate::sample::try_sample_observations_pooled_with;
use crate::scheduler::Scheduler;
use dpioa_core::memo::CacheStats;
use dpioa_core::pool::{with_pool_seeded, PoolStats, WorkerPool, DEFAULT_STEAL_SEED};
use dpioa_core::{Automaton, Execution, Value};
use dpioa_prob::Disc;
use std::sync::Arc;

/// Which engine produced an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// State-lumped exact expansion: exact, polynomial in the reachable
    /// lump classes.
    Lumped,
    /// General exact cone expansion: the distribution is exact (up to
    /// `f64` weight arithmetic).
    Exact,
    /// Parallel Monte-Carlo sampling: the distribution is an estimate.
    MonteCarlo,
}

/// How a [`robust_observation_dist`] answer was produced.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// The engine that answered.
    pub engine: EngineKind,
    /// Why the preceding exact tier(s) were abandoned (`None` when the
    /// lumped tier answered; the lumped ineligibility reason when the
    /// general tier answered; the budget exhaustion when Monte-Carlo
    /// answered).
    pub fallback_reason: Option<EngineError>,
    /// Samples drawn (Monte-Carlo only).
    pub samples: Option<usize>,
    /// Worker lanes used by the answering tier (`Some(1)` when it ran
    /// single-threaded — every tier reports this uniformly).
    pub threads: Option<usize>,
    /// Memo-cache lookups answered from the cache while this query's
    /// answering tier ran (transitions + memoryless choices).
    pub cache_hits: Option<u64>,
    /// Memo-cache lookups that had to compute their answer.
    pub cache_misses: Option<u64>,
    /// Frontier depths the exact tier fanned out over the pool
    /// (exact tier only; `Some(0)` means every depth stayed below the
    /// adaptive cutover and ran inline).
    pub pooled_depths: Option<usize>,
    /// Worker-pool activity of the answering tier (pool-capable tiers:
    /// general exact and Monte-Carlo).
    pub pool: Option<PoolStats>,
    /// A bound `b` such that every event probability in the returned
    /// distribution is within `b` of its true value with probability at
    /// least `1 − confidence_delta` (DKW inequality). `0.0` for exact
    /// answers.
    pub error_bound: f64,
    /// The `δ` used for [`Provenance::error_bound`].
    pub confidence_delta: f64,
}

impl Provenance {
    fn lumped(cache: CacheStats) -> Provenance {
        Provenance {
            engine: EngineKind::Lumped,
            fallback_reason: None,
            samples: None,
            threads: Some(1),
            cache_hits: Some(cache.hits),
            cache_misses: Some(cache.misses),
            pooled_depths: None,
            // The lumped tier never pools; report an idle single lane
            // so every tier's provenance carries pool counters.
            pool: Some(PoolStats::single_lane()),
            error_bound: 0.0,
            confidence_delta: 0.0,
        }
    }

    fn exact(reason: EngineError, stats: ExactStats) -> Provenance {
        Provenance {
            engine: EngineKind::Exact,
            fallback_reason: Some(reason),
            samples: None,
            threads: Some(stats.threads),
            cache_hits: Some(stats.cache.hits),
            cache_misses: Some(stats.cache.misses),
            pooled_depths: Some(stats.pooled_depths),
            pool: Some(stats.pool),
            error_bound: 0.0,
            confidence_delta: 0.0,
        }
    }
}

/// Configuration for [`robust_observation_dist`].
#[derive(Clone, Debug)]
pub struct RobustConfig {
    /// Budget for the exact attempts (lumped and general).
    pub budget: Budget,
    /// Worker lanes for the general exact frontier expansion; `1` keeps
    /// the expansion on the calling thread. Lanes are taken as asked —
    /// the work-stealing pool rebalances an overcommitted lane — and
    /// the adaptive cutover keeps small queries inline.
    pub exact_threads: usize,
    /// Explicit frontier-size cutover below which a depth expands
    /// inline even when `exact_threads > 1`; `None` picks the
    /// calibrated adaptive policy ([`ParallelPolicy::auto`]), which is
    /// what keeps small-horizon queries from ever paying spawn
    /// overhead.
    pub par_cutover: Option<usize>,
    /// A transition/choice memo cache shared across queries; `None`
    /// provisions a fresh per-call cache. Share a handle
    /// ([`EngineCache::shared`]) when issuing many queries against the
    /// same automaton — later queries then reuse every successor
    /// distribution the earlier ones computed.
    pub cache: Option<Arc<EngineCache>>,
    /// Monte-Carlo samples on fallback.
    pub mc_samples: usize,
    /// Monte-Carlo worker threads.
    pub mc_threads: usize,
    /// Monte-Carlo base seed.
    pub mc_seed: u64,
    /// Confidence parameter `δ` for the reported DKW error bound.
    pub confidence_delta: f64,
}

impl Default for RobustConfig {
    fn default() -> RobustConfig {
        RobustConfig {
            budget: Budget::unlimited().with_max_entries(1 << 16),
            exact_threads: 1,
            par_cutover: None,
            cache: None,
            mc_samples: 100_000,
            mc_threads: 4,
            mc_seed: 0xD10A,
            confidence_delta: 1e-3,
        }
    }
}

/// The DKW sampling-error bound `sqrt(ln(2/δ) / 2n)`.
fn dkw_bound(n: usize, delta: f64) -> f64 {
    ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// The Monte-Carlo fallback tier on a caller-provided pool, sampling
/// through the shared memo cache.
#[allow(clippy::too_many_arguments)]
fn monte_carlo_pooled<'env, O>(
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    horizon: usize,
    config: &RobustConfig,
    cache: &'env EngineCache,
    pool: &WorkerPool<'_, 'env>,
    obs_fn: &'env O,
    reason: EngineError,
) -> Result<(Disc<Value>, Provenance), EngineError>
where
    O: Fn(&Execution) -> Value + Sync + ?Sized,
{
    let cache_base = cache.stats();
    let pool_base = pool.stats();
    let dist = try_sample_observations_pooled_with(
        auto,
        sched,
        horizon,
        config.mc_samples,
        config.mc_seed,
        config.mc_threads,
        Some(cache),
        pool,
        obs_fn,
    )?;
    let cache_stats = cache.stats().since(cache_base);
    Ok((
        dist,
        Provenance {
            engine: EngineKind::MonteCarlo,
            fallback_reason: Some(reason),
            samples: Some(config.mc_samples),
            threads: Some(config.mc_threads),
            cache_hits: Some(cache_stats.hits),
            cache_misses: Some(cache_stats.misses),
            pooled_depths: None,
            pool: Some(pool.stats().since(&pool_base)),
            error_bound: dkw_bound(config.mc_samples, config.confidence_delta),
            confidence_delta: config.confidence_delta,
        },
    ))
}

/// The distribution of `observe(α)` under `ε_σ`, computed by the
/// cheapest eligible tier: lumped exact, then general exact, then
/// Monte-Carlo (see the module docs for the cascade).
///
/// Every tier draws transitions and memoryless scheduler choices
/// through one [`EngineCache`] — [`RobustConfig::cache`] when set
/// (shared across calls), else a fresh per-call cache — and the general
/// and Monte-Carlo tiers share one lazily-spawned [`WorkerPool`], so a
/// query that stays sequential (small frontiers under the adaptive
/// cutover, or a 1-lane config) never spawns a thread.
///
/// Errors other than lumped ineligibility and budget exhaustion
/// (scheduler contract violations, invalid sampling parameters, a
/// sampler shard that keeps panicking) are returned as-is: they are
/// deterministic and a different engine would not fix them.
pub fn robust_observation_dist(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    observe: &Observation,
    config: &RobustConfig,
) -> Result<(Disc<Value>, Provenance), EngineError> {
    let local_cache;
    let cache: &EngineCache = match &config.cache {
        Some(shared) => shared.as_ref(),
        None => {
            local_cache = EngineCache::new();
            &local_cache
        }
    };
    let obs_fn = |e: &Execution| observe.apply(auto, e);

    let cache_base = cache.stats();
    let not_lumpable = match try_lumped_observation_dist_cached(
        auto,
        sched,
        horizon,
        observe,
        &config.budget,
        cache,
    ) {
        Ok(dist) => {
            return Ok((dist, Provenance::lumped(cache.stats().since(cache_base))));
        }
        Err(reason @ EngineError::NotLumpable { .. }) => reason,
        Err(reason @ EngineError::BudgetExhausted { .. }) => {
            // The lumped class space is a quotient of the execution
            // space, so the general tier cannot fit either — go
            // straight to sampling on an MC-sized pool.
            return with_pool_seeded(config.mc_threads.max(1), DEFAULT_STEAL_SEED, |pool| {
                monte_carlo_pooled(auto, sched, horizon, config, cache, pool, &obs_fn, reason)
            });
        }
        Err(other) => return Err(other),
    };

    let policy = match config.par_cutover {
        Some(cutover) => ParallelPolicy::new(config.exact_threads, cutover),
        None => ParallelPolicy::auto(config.exact_threads),
    };
    // One pool serves both remaining tiers; workers spawn lazily, so
    // provisioning for the wider of the two costs nothing if the exact
    // tier answers below its cutover.
    let lanes = policy.threads.max(config.mc_threads.max(1));
    with_pool_seeded(lanes, policy.steal_seed, |pool| {
        let general = try_execution_measure_pooled_with(
            auto,
            sched,
            horizon,
            &config.budget,
            policy,
            cache,
            pool,
            Ok,
        );
        match general {
            Ok((measure, stats)) => {
                let dist = measure.try_observe(|e| observe.apply(auto, e))?;
                Ok((dist, Provenance::exact(not_lumpable, stats)))
            }
            Err(reason @ EngineError::BudgetExhausted { .. }) => {
                monte_carlo_pooled(auto, sched, horizon, config, cache, pool, &obs_fn, reason)
            }
            Err(other) => Err(other),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{DeterministicScheduler, FirstEnabled};
    use dpioa_core::{Action, Execution, ExplicitAutomaton, Signature};
    use dpioa_prob::tv_distance;

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn coin() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("r-coin", Value::int(0))
            .state(0, Signature::new([], [], [act("r-flip")]))
            .state(1, Signature::new([], [], []))
            .state(2, Signature::new([], [], []))
            .transition(
                0,
                act("r-flip"),
                Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 1),
            )
            .build()
    }

    #[test]
    fn memoryless_query_answers_at_the_lumped_tier() {
        let auto = coin();
        let (dist, prov) = robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &RobustConfig::default(),
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::Lumped);
        assert!(prov.fallback_reason.is_none());
        assert_eq!(prov.error_bound, 0.0);
        assert_eq!(dist.prob(&Value::int(1)), 0.5);
    }

    #[test]
    fn history_dependent_scheduler_falls_to_general_exact() {
        let auto = coin();
        // Memoryful: halts after one step by inspecting the execution.
        let sched = DeterministicScheduler::new("one-step", |exec, enabled| {
            if exec.is_empty() {
                enabled.first().copied()
            } else {
                None
            }
        });
        let (dist, prov) = robust_observation_dist(
            &auto,
            &sched,
            3,
            &Observation::final_state(),
            &RobustConfig::default(),
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::Exact);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::NotLumpable { .. })
        ));
        assert_eq!(prov.error_bound, 0.0);
        assert_eq!(dist.prob(&Value::int(1)), 0.5);
        // The parallel general tier gives the same distribution.
        let (par, prov2) = robust_observation_dist(
            &auto,
            &sched,
            3,
            &Observation::final_state(),
            &RobustConfig {
                exact_threads: 3,
                ..RobustConfig::default()
            },
        )
        .unwrap();
        assert_eq!(prov2.engine, EngineKind::Exact);
        assert_eq!(dist, par);
    }

    #[test]
    fn exhausted_budget_falls_back_to_monte_carlo_with_provenance() {
        let auto = coin();
        // History-dependent (ineligible for lumping) so the general
        // exact tier runs — and exhausts its one-expansion budget.
        let sched =
            DeterministicScheduler::new("memoryful-first", |_, enabled| enabled.first().copied());
        let config = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(1),
            mc_samples: 40_000,
            mc_threads: 2,
            ..RobustConfig::default()
        };
        let (dist, prov) =
            robust_observation_dist(&auto, &sched, 1, &Observation::final_state(), &config)
                .unwrap();
        assert_eq!(prov.engine, EngineKind::MonteCarlo);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::BudgetExhausted { .. })
        ));
        assert_eq!(prov.samples, Some(40_000));
        assert!(prov.error_bound > 0.0 && prov.error_bound < 0.05);
        // The estimate still tracks the exact answer.
        let exact =
            crate::measure::observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        assert!(tv_distance(&exact, &dist) < 0.02);
    }

    #[test]
    fn lumped_budget_exhaustion_skips_straight_to_monte_carlo() {
        let auto = coin();
        let config = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(0),
            mc_samples: 20_000,
            mc_threads: 2,
            ..RobustConfig::default()
        };
        let (_, prov) = robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &config,
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::MonteCarlo);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn non_budget_errors_are_not_masked() {
        struct Rogue;
        impl Scheduler for Rogue {
            fn schedule(
                &self,
                _auto: &dyn Automaton,
                _exec: &Execution,
            ) -> dpioa_prob::SubDisc<Action> {
                dpioa_prob::SubDisc::dirac(act("r-rogue"))
            }
            fn describe(&self) -> String {
                "rogue".into()
            }
        }
        let auto = coin();
        let err = robust_observation_dist(
            &auto,
            &Rogue,
            1,
            &Observation::final_state(),
            &RobustConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::DisabledAction { .. }));
    }

    #[test]
    fn dkw_bound_shrinks_with_samples() {
        assert!(dkw_bound(100, 1e-3) > dkw_bound(10_000, 1e-3));
        assert!((dkw_bound(50_000, 1e-3) - ((2000.0f64).ln() / 100_000.0).sqrt()).abs() < 1e-12);
    }
}
