//! Graceful degradation: exact expansion under budget, Monte-Carlo
//! fallback with provenance.
//!
//! [`robust_observation_dist`] is the production entry point for
//! observation distributions: it first attempts the exact cone expansion
//! under a caller-supplied [`Budget`]; if (and only if) the budget is
//! exhausted it degrades to the parallel Monte-Carlo sampler and reports
//! that it did so — the returned [`Provenance`] names the engine that
//! answered and a statistical error bound, so downstream emulation
//! distances can widen their ε accordingly instead of silently treating
//! an estimate as exact.

use crate::error::{Budget, EngineError};
use crate::measure::try_execution_measure;
use crate::sample::try_sample_observations_parallel;
use crate::scheduler::Scheduler;
use dpioa_core::{Automaton, Execution, Value};
use dpioa_prob::Disc;

/// Which engine produced an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Exact cone expansion: the distribution is exact (up to `f64`
    /// weight arithmetic).
    Exact,
    /// Parallel Monte-Carlo sampling: the distribution is an estimate.
    MonteCarlo,
}

/// How a [`robust_observation_dist`] answer was produced.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// The engine that answered.
    pub engine: EngineKind,
    /// Why the exact engine was abandoned (`None` when it answered).
    pub fallback_reason: Option<EngineError>,
    /// Samples drawn (Monte-Carlo only).
    pub samples: Option<usize>,
    /// Worker threads used (Monte-Carlo only).
    pub threads: Option<usize>,
    /// A bound `b` such that every event probability in the returned
    /// distribution is within `b` of its true value with probability at
    /// least `1 − confidence_delta` (DKW inequality). `0.0` for exact
    /// answers.
    pub error_bound: f64,
    /// The `δ` used for [`Provenance::error_bound`].
    pub confidence_delta: f64,
}

impl Provenance {
    fn exact() -> Provenance {
        Provenance {
            engine: EngineKind::Exact,
            fallback_reason: None,
            samples: None,
            threads: None,
            error_bound: 0.0,
            confidence_delta: 0.0,
        }
    }
}

/// Configuration for [`robust_observation_dist`].
#[derive(Clone, Debug)]
pub struct RobustConfig {
    /// Budget for the exact attempt.
    pub budget: Budget,
    /// Monte-Carlo samples on fallback.
    pub mc_samples: usize,
    /// Monte-Carlo worker threads.
    pub mc_threads: usize,
    /// Monte-Carlo base seed.
    pub mc_seed: u64,
    /// Confidence parameter `δ` for the reported DKW error bound.
    pub confidence_delta: f64,
}

impl Default for RobustConfig {
    fn default() -> RobustConfig {
        RobustConfig {
            budget: Budget::unlimited().with_max_entries(1 << 16),
            mc_samples: 100_000,
            mc_threads: 4,
            mc_seed: 0xD10A,
            confidence_delta: 1e-3,
        }
    }
}

/// The DKW sampling-error bound `sqrt(ln(2/δ) / 2n)`.
fn dkw_bound(n: usize, delta: f64) -> f64 {
    ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// The distribution of `observe(execution)` under `ε_σ`, computed
/// exactly when the budget allows and estimated by Monte-Carlo when it
/// does not.
///
/// Errors other than budget exhaustion (scheduler contract violations,
/// invalid sampling parameters, a sampler shard that keeps panicking)
/// are returned as-is: they are deterministic and a different engine
/// would not fix them.
pub fn robust_observation_dist(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    observe: impl Fn(&Execution) -> Value + Sync,
    config: &RobustConfig,
) -> Result<(Disc<Value>, Provenance), EngineError> {
    match try_execution_measure(auto, sched, horizon, &config.budget) {
        Ok(measure) => {
            let dist = measure.try_observe(&observe)?;
            Ok((dist, Provenance::exact()))
        }
        Err(reason @ EngineError::BudgetExhausted { .. }) => {
            let dist = try_sample_observations_parallel(
                auto,
                sched,
                horizon,
                config.mc_samples,
                config.mc_seed,
                config.mc_threads,
                &observe,
            )?;
            Ok((
                dist,
                Provenance {
                    engine: EngineKind::MonteCarlo,
                    fallback_reason: Some(reason),
                    samples: Some(config.mc_samples),
                    threads: Some(config.mc_threads),
                    error_bound: dkw_bound(config.mc_samples, config.confidence_delta),
                    confidence_delta: config.confidence_delta,
                },
            ))
        }
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FirstEnabled;
    use dpioa_core::{Action, ExplicitAutomaton, Signature};
    use dpioa_prob::tv_distance;

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn coin() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("r-coin", Value::int(0))
            .state(0, Signature::new([], [], [act("r-flip")]))
            .state(1, Signature::new([], [], []))
            .state(2, Signature::new([], [], []))
            .transition(
                0,
                act("r-flip"),
                Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 1),
            )
            .build()
    }

    #[test]
    fn exact_engine_answers_under_generous_budget() {
        let auto = coin();
        let (dist, prov) =
            robust_observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone(), &{
                RobustConfig::default()
            })
            .unwrap();
        assert_eq!(prov.engine, EngineKind::Exact);
        assert!(prov.fallback_reason.is_none());
        assert_eq!(prov.error_bound, 0.0);
        assert_eq!(dist.prob(&Value::int(1)), 0.5);
    }

    #[test]
    fn exhausted_budget_falls_back_to_monte_carlo_with_provenance() {
        let auto = coin();
        let config = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(1),
            mc_samples: 40_000,
            mc_threads: 2,
            ..RobustConfig::default()
        };
        let (dist, prov) =
            robust_observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone(), &config)
                .unwrap();
        assert_eq!(prov.engine, EngineKind::MonteCarlo);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::BudgetExhausted { .. })
        ));
        assert_eq!(prov.samples, Some(40_000));
        assert!(prov.error_bound > 0.0 && prov.error_bound < 0.05);
        // The estimate still tracks the exact answer.
        let exact =
            crate::measure::observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        assert!(tv_distance(&exact, &dist) < 0.02);
    }

    #[test]
    fn non_budget_errors_are_not_masked() {
        struct Rogue;
        impl Scheduler for Rogue {
            fn schedule(
                &self,
                _auto: &dyn Automaton,
                _exec: &Execution,
            ) -> dpioa_prob::SubDisc<Action> {
                dpioa_prob::SubDisc::dirac(act("r-rogue"))
            }
            fn describe(&self) -> String {
                "rogue".into()
            }
        }
        let auto = coin();
        let err = robust_observation_dist(
            &auto,
            &Rogue,
            1,
            |e| e.lstate().clone(),
            &RobustConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::DisabledAction { .. }));
    }

    #[test]
    fn dkw_bound_shrinks_with_samples() {
        assert!(dkw_bound(100, 1e-3) > dkw_bound(10_000, 1e-3));
        assert!((dkw_bound(50_000, 1e-3) - ((2000.0f64).ln() / 100_000.0).sqrt()).abs() < 1e-12);
    }
}
