//! Graceful degradation: lumped → general-exact → Monte-Carlo, with
//! checkpoint salvage, circuit breaking, and provenance.
//!
//! [`robust_observation_dist`] is the production entry point for
//! observation distributions. It tries the engines from cheapest-exact
//! to approximate:
//!
//! 1. **state-lumped exact** ([`crate::lumped`]): polynomial forward
//!    pass, eligible when the scheduler is memoryless and the
//!    observation factors through trace or last state;
//! 2. **general exact** ([`crate::measure`]): full cone expansion
//!    (parallel over the frontier when
//!    [`RobustConfig::exact_threads`] > 1), for history-dependent
//!    schedulers;
//! 3. **Monte-Carlo** ([`crate::sample`]): when the exact [`Budget`] is
//!    exhausted.
//!
//! Since PR 5 the fall from an exact tier is *checkpointed*: a budget
//! trip hands back everything the tier already resolved (exact masses)
//! plus the unresolved frontier (exact prefix masses), and the
//! Monte-Carlo tier **salvages** it — sampling only the frontier
//! remainder and combining with the resolved part into one hybrid
//! estimate whose DKW error bound scales by the frontier mass `F < 1`
//! ([`EngineKind::Hybrid`]). Cancellation (a [`dpioa_core::CancelToken`]
//! in the budget) aborts any tier mid-flight; the caller still receives
//! the checkpoint built so far through [`RobustError`]. A lumped-tier
//! budget exhaustion stays in class space for salvage — the lumped
//! class space is a quotient of the general execution space, so a
//! budget too small for the quotient is certainly too small for the
//! cover, and class suffixes are cheaper to sample than execution
//! suffixes.
//!
//! A shared [`CircuitBreaker`] (keyed by automaton name) records
//! consecutive exact-tier budget failures; once the per-automaton count
//! reaches the threshold, later queries skip the doomed exact tiers and
//! go straight to Monte-Carlo — recorded in
//! [`Provenance::breaker_open`]. Any exact-tier success closes the
//! breaker for that automaton.
//!
//! The returned [`Provenance`] names the tier that answered, the mass
//! resolved exactly, and a statistical error bound, so downstream
//! emulation distances can widen their ε accordingly instead of
//! silently treating an estimate as exact.

use crate::cache::EngineCache;
use crate::checkpoint::{
    Checkpoint, ConeCheckpoint, ExpansionOutcome, LumpedCheckpoint, StratumSink,
};
use crate::error::{Budget, EngineError};
use crate::lumped::{try_lumped_observation_dist_strata, LumpedOutcome, Observation};
use crate::measure::{try_execution_measure_strata_with, ExactStats, ParallelPolicy};
use crate::sample::{
    try_salvage_lumped_pooled_with, try_salvage_observations_pooled_with,
    try_sample_observations_cancellable_pooled_with, SalvageOutcome,
};
use crate::scheduler::Scheduler;
use dpioa_core::fxhash::FxHashMap;
use dpioa_core::memo::CacheStats;
use dpioa_core::pool::{with_pool_seeded, PoolStats, WorkerPool, DEFAULT_STEAL_SEED};
use dpioa_core::{Automaton, Execution, Value};
use dpioa_prob::Disc;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which engine produced an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// State-lumped exact expansion: exact, polynomial in the reachable
    /// lump classes.
    Lumped,
    /// General exact cone expansion: the distribution is exact (up to
    /// `f64` weight arithmetic).
    Exact,
    /// Parallel Monte-Carlo sampling: the distribution is an estimate.
    MonteCarlo,
    /// Checkpoint salvage: the mass an exact tier resolved before its
    /// budget tripped is exact; only the frontier remainder is a
    /// Monte-Carlo estimate. [`Provenance::resolved_mass`] says how
    /// much is exact, and the error bound scales by the frontier mass.
    Hybrid,
}

/// How a [`robust_observation_dist`] answer was produced.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// The engine that answered.
    pub engine: EngineKind,
    /// Why the preceding exact tier(s) were abandoned (`None` when the
    /// lumped tier answered or the circuit breaker skipped the exact
    /// tiers; the lumped ineligibility reason when the general tier
    /// answered; the budget exhaustion when Monte-Carlo or the hybrid
    /// salvage answered).
    pub fallback_reason: Option<EngineError>,
    /// Samples drawn (Monte-Carlo and hybrid only).
    pub samples: Option<usize>,
    /// Worker lanes used by the answering tier (`Some(1)` when it ran
    /// single-threaded — every tier reports this uniformly).
    pub threads: Option<usize>,
    /// Memo-cache lookups answered from the cache while this query's
    /// answering tier ran (transitions + memoryless choices).
    pub cache_hits: Option<u64>,
    /// Memo-cache lookups that had to compute their answer.
    pub cache_misses: Option<u64>,
    /// Frontier depths the exact tier fanned out over the pool
    /// (exact tier only; `Some(0)` means every depth stayed below the
    /// adaptive cutover and ran inline).
    pub pooled_depths: Option<usize>,
    /// Worker-pool activity of the answering tier (pool-capable tiers:
    /// general exact, Monte-Carlo, hybrid).
    pub pool: Option<PoolStats>,
    /// Probability mass resolved *exactly* by the tripped exact tier
    /// and carried into the hybrid answer verbatim (hybrid only).
    pub resolved_mass: Option<f64>,
    /// Frontier entries (cone nodes or lump classes) the salvage
    /// sampler drew suffixes from (hybrid only).
    pub frontier_nodes: Option<usize>,
    /// True iff the circuit breaker was open for this automaton and the
    /// exact tiers were skipped without being tried.
    pub breaker_open: bool,
    /// Depth of the cached stratum the answering exact tier resumed
    /// from — depths `0..d` were never re-expanded (`None` when the
    /// query ran cold, was resumed from an explicit checkpoint, or
    /// was answered by Monte-Carlo).
    pub stratum_depth: Option<usize>,
    /// A bound `b` such that every event probability in the returned
    /// distribution is within `b` of its true value with probability at
    /// least `1 − confidence_delta` (DKW inequality; scaled by the
    /// frontier mass for hybrid answers). `0.0` for exact answers.
    pub error_bound: f64,
    /// The `δ` used for [`Provenance::error_bound`].
    pub confidence_delta: f64,
}

impl Provenance {
    fn lumped(cache: CacheStats) -> Provenance {
        Provenance {
            engine: EngineKind::Lumped,
            fallback_reason: None,
            samples: None,
            threads: Some(1),
            cache_hits: Some(cache.hits),
            cache_misses: Some(cache.misses),
            pooled_depths: None,
            // The lumped tier never pools; report an idle single lane
            // so every tier's provenance carries pool counters.
            pool: Some(PoolStats::single_lane()),
            resolved_mass: None,
            frontier_nodes: None,
            breaker_open: false,
            stratum_depth: None,
            error_bound: 0.0,
            confidence_delta: 0.0,
        }
    }

    fn exact(reason: EngineError, stats: ExactStats) -> Provenance {
        Provenance {
            engine: EngineKind::Exact,
            fallback_reason: Some(reason),
            samples: None,
            threads: Some(stats.threads),
            cache_hits: Some(stats.cache.hits),
            cache_misses: Some(stats.cache.misses),
            pooled_depths: Some(stats.pooled_depths),
            pool: Some(stats.pool),
            resolved_mass: None,
            frontier_nodes: None,
            breaker_open: false,
            stratum_depth: None,
            error_bound: 0.0,
            confidence_delta: 0.0,
        }
    }
}

/// A failed robust query, possibly carrying the checkpoint the tripped
/// tier built before the failure — most usefully on cancellation: the
/// caller that cancelled mid-flight still receives everything the
/// engine resolved up to the cancel, and can salvage or resume it
/// later.
#[derive(Clone, Debug)]
pub struct RobustError {
    /// What went wrong.
    pub error: EngineError,
    /// The partial work at the moment of failure, when any tier had
    /// salvageable work in hand (budget/cancellation trips); `None` for
    /// failures with nothing to salvage (contract violations, invalid
    /// parameters).
    pub checkpoint: Option<Checkpoint>,
}

impl fmt::Display for RobustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.checkpoint {
            Some(c) => write!(
                f,
                "{} (checkpoint: {:.3} resolved, {} frontier entries)",
                self.error,
                c.resolved_mass(),
                c.frontier_len()
            ),
            None => write!(f, "{}", self.error),
        }
    }
}

impl std::error::Error for RobustError {}

impl From<EngineError> for RobustError {
    fn from(error: EngineError) -> RobustError {
        RobustError {
            error,
            checkpoint: None,
        }
    }
}

/// A per-automaton circuit breaker over exact-tier budget failures.
///
/// Keyed by [`Automaton::name`]. Every exact-tier budget exhaustion
/// [`CircuitBreaker::record_failure`]s the automaton; once an automaton
/// accumulates `threshold` *consecutive* failures the breaker is open
/// for it and [`robust_observation_dist`] skips the doomed exact tiers
/// entirely, going straight to Monte-Carlo (recorded in
/// [`Provenance::breaker_open`]). Any exact-tier success closes the
/// breaker for that automaton. Share one breaker
/// (`Arc<CircuitBreaker>`) across the queries of a workload via
/// [`RobustConfig::breaker`].
///
/// With a **cooldown** ([`CircuitBreaker::with_cooldown`]) an open key
/// goes *half-open* once the cooldown has elapsed since the trip:
/// [`CircuitBreaker::is_open`] answers `false` so the next query probes
/// the exact tiers again. A probe that succeeds closes the breaker; one
/// that fails re-arms the cooldown (counted as a reopen). Without a
/// cooldown an open breaker stays open until some caller bypasses it
/// and records a success.
///
/// State transitions are counted ([`CircuitBreaker::stats`]) so a
/// metrics endpoint can report trips/reopens/closes/probes in exact
/// agreement with what queries observed through
/// [`Provenance::breaker_open`].
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Option<Duration>,
    state: Mutex<FxHashMap<String, BreakerEntry>>,
    trips: AtomicU64,
    reopens: AtomicU64,
    closes: AtomicU64,
    half_open_probes: AtomicU64,
}

/// Per-key breaker state.
#[derive(Debug, Default)]
struct BreakerEntry {
    /// Consecutive exact-tier failures since the last success.
    consecutive: u32,
    /// When the key last tripped (or re-armed) — `Some` iff it has
    /// tripped since the last success.
    opened_at: Option<Instant>,
}

/// Snapshot of a [`CircuitBreaker`]'s transition counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed → open transitions (a key crossing the threshold).
    pub trips: u64,
    /// Failed half-open probes that re-armed an open key's cooldown.
    pub reopens: u64,
    /// Open → closed transitions (an exact-tier success on an open key).
    pub closes: u64,
    /// Queries admitted through an open key because its cooldown had
    /// elapsed (half-open probes).
    pub half_open_probes: u64,
    /// Keys currently at or over the threshold (open or half-open).
    pub open_keys: usize,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures per
    /// automaton and (without a cooldown) stays open until a success is
    /// recorded. `threshold` is clamped to at least 1 (a threshold of
    /// 0 would mean "never try the exact tiers at all", which is a
    /// budget decision, not a breaker one).
    pub fn new(threshold: u32) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown: None,
            state: Mutex::new(FxHashMap::default()),
            trips: AtomicU64::new(0),
            reopens: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            half_open_probes: AtomicU64::new(0),
        }
    }

    /// Let open keys go half-open `cooldown` after their trip, so the
    /// exact tiers are re-probed instead of being skipped forever.
    pub fn with_cooldown(mut self, cooldown: Duration) -> CircuitBreaker {
        self.cooldown = Some(cooldown);
        self
    }

    /// True iff `key` is open *and* (when a cooldown is configured) the
    /// cooldown has not yet elapsed. An open key past its cooldown
    /// answers `false` — a half-open probe, counted in
    /// [`BreakerStats::half_open_probes`] — admitting the caller's
    /// query to the exact tiers; its success or failure then closes or
    /// re-arms the key. This is the per-query decision point; use
    /// [`CircuitBreaker::stats`] for side-effect-free observation.
    pub fn is_open(&self, key: &str) -> bool {
        let mut map = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(e) = map.get_mut(key) else {
            return false;
        };
        if e.consecutive < self.threshold {
            return false;
        }
        match (self.cooldown, e.opened_at) {
            (Some(cd), Some(at)) if at.elapsed() >= cd => {
                self.half_open_probes.fetch_add(1, Ordering::Relaxed);
                false
            }
            _ => true,
        }
    }

    /// Record an exact-tier budget failure for `key`. Crossing the
    /// threshold trips the key; failing while already open (a failed
    /// half-open probe) re-arms its cooldown and counts a reopen.
    pub fn record_failure(&self, key: &str) {
        let mut map = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let e = map.entry(key.to_string()).or_default();
        let was_open = e.consecutive >= self.threshold;
        e.consecutive += 1;
        if e.consecutive < self.threshold {
            return;
        }
        e.opened_at = Some(Instant::now());
        if was_open {
            self.reopens.fetch_add(1, Ordering::Relaxed);
        } else {
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record an exact-tier success for `key`, closing its breaker.
    pub fn record_success(&self, key: &str) {
        let mut map = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = map.remove(key) {
            if e.consecutive >= self.threshold {
                self.closes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Consecutive failures currently recorded for `key`.
    pub fn failures(&self, key: &str) -> u32 {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .map_or(0, |e| e.consecutive)
    }

    /// Snapshot of the transition counters (no side effects).
    pub fn stats(&self) -> BreakerStats {
        let map = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        BreakerStats {
            trips: self.trips.load(Ordering::Relaxed),
            reopens: self.reopens.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            half_open_probes: self.half_open_probes.load(Ordering::Relaxed),
            open_keys: map
                .values()
                .filter(|e| e.consecutive >= self.threshold)
                .count(),
        }
    }

    /// The automata currently open (or half-open), sorted by name.
    pub fn open_keys(&self) -> Vec<String> {
        let map = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut keys: Vec<String> = map
            .iter()
            .filter(|(_, e)| e.consecutive >= self.threshold)
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }
}

/// Stratum-cache wiring for the robust cascade (the tentpole of the
/// incremental-expansion work): with [`RobustConfig::strata`] set, the
/// exact tiers **deposit** conserving frontier snapshots ("strata")
/// into the shared [`EngineCache`] every `stride` depths of a
/// successful expansion — plus the horizon stratum on completion —
/// and fresh queries **resume** from the deepest compatible stratum
/// `d ≤ horizon` instead of re-expanding depths `0..d`. Strata are
/// keyed by `(fingerprint, scheduler identity, observation, depth)`;
/// resuming one is bit-identical to the cold run (the stratum *is*
/// the rollback state a budget trip at `d` would have produced).
#[derive(Clone, Debug)]
pub struct StrataConfig {
    /// Identity of the automaton family the strata are keyed under —
    /// opaque to the engine (callers typically pass
    /// `dpioa_store::automaton_fingerprint`). Queries only ever resume
    /// strata deposited under the same fingerprint, the same scheduler
    /// identity ([`crate::cache::ChoiceScope`]), and a compatible
    /// observation (lumped strata carry the observation kind; cone
    /// strata are observation-independent).
    pub fingerprint: u64,
    /// Depth stride between deposited strata. `0` disables deposits
    /// while leaving lookups active, so a query can ride strata other
    /// queries paid for without cloning any itself.
    pub stride: usize,
}

/// Configuration for [`robust_observation_dist`].
#[derive(Clone, Debug)]
pub struct RobustConfig {
    /// Budget for the exact attempts (lumped and general) — including
    /// an optional [`dpioa_core::CancelToken`], which the Monte-Carlo
    /// tier observes too.
    pub budget: Budget,
    /// Worker lanes for the general exact frontier expansion; `1` keeps
    /// the expansion on the calling thread. Lanes are taken as asked —
    /// the work-stealing pool rebalances an overcommitted lane — and
    /// the adaptive cutover keeps small queries inline.
    pub exact_threads: usize,
    /// Explicit frontier-size cutover below which a depth expands
    /// inline even when `exact_threads > 1`; `None` picks the
    /// calibrated adaptive policy ([`ParallelPolicy::auto`]), which is
    /// what keeps small-horizon queries from ever paying spawn
    /// overhead.
    pub par_cutover: Option<usize>,
    /// A transition/choice memo cache shared across queries; `None`
    /// provisions a fresh per-call cache. Share a handle
    /// ([`EngineCache::shared`]) when issuing many queries against the
    /// same automaton — later queries then reuse every successor
    /// distribution the earlier ones computed.
    pub cache: Option<Arc<EngineCache>>,
    /// Monte-Carlo samples on fallback (pure or salvage).
    pub mc_samples: usize,
    /// Monte-Carlo worker threads.
    pub mc_threads: usize,
    /// Monte-Carlo base seed.
    pub mc_seed: u64,
    /// Confidence parameter `δ` for the reported DKW error bound.
    pub confidence_delta: f64,
    /// A circuit breaker shared across queries; `None` disables
    /// breaking (every query tries the exact tiers).
    pub breaker: Option<Arc<CircuitBreaker>>,
    /// Stratum-cache wiring; `None` (the default) neither deposits nor
    /// consults strata. Only useful combined with a shared
    /// [`RobustConfig::cache`] — strata live in the [`EngineCache`],
    /// so a per-call cache discards them with the call.
    pub strata: Option<StrataConfig>,
}

impl Default for RobustConfig {
    fn default() -> RobustConfig {
        RobustConfig {
            budget: Budget::unlimited().with_max_entries(1 << 16),
            exact_threads: 1,
            par_cutover: None,
            cache: None,
            mc_samples: 100_000,
            mc_threads: 4,
            mc_seed: 0xD10A,
            confidence_delta: 1e-3,
            breaker: None,
            strata: None,
        }
    }
}

/// The DKW sampling-error bound `sqrt(ln(2/δ) / 2n)`.
fn dkw_bound(n: usize, delta: f64) -> f64 {
    ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// True iff `e` is a budget exhaustion caused by the cancel token.
fn is_cancellation(e: &EngineError) -> bool {
    matches!(
        e,
        EngineError::BudgetExhausted {
            cancelled: true,
            ..
        }
    )
}

/// The Monte-Carlo fallback tier on a caller-provided pool, sampling
/// through the shared memo cache (and observing the budget's cancel
/// token, one check per sample).
#[allow(clippy::too_many_arguments)]
fn monte_carlo_pooled<'env, O>(
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    horizon: usize,
    config: &RobustConfig,
    cache: &'env EngineCache,
    pool: &WorkerPool<'_, 'env>,
    obs_fn: &'env O,
    reason: Option<EngineError>,
    breaker_open: bool,
) -> Result<(Disc<Value>, Provenance), EngineError>
where
    O: Fn(&Execution) -> Value + Sync + ?Sized,
{
    let cache_base = cache.stats();
    let pool_base = pool.stats();
    let dist = try_sample_observations_cancellable_pooled_with(
        auto,
        sched,
        horizon,
        config.mc_samples,
        config.mc_seed,
        config.mc_threads,
        Some(cache),
        config.budget.cancel.clone(),
        pool,
        obs_fn,
    )?;
    let cache_stats = cache.stats().since(cache_base);
    Ok((
        dist,
        Provenance {
            engine: EngineKind::MonteCarlo,
            fallback_reason: reason,
            samples: Some(config.mc_samples),
            threads: Some(config.mc_threads),
            cache_hits: Some(cache_stats.hits),
            cache_misses: Some(cache_stats.misses),
            pooled_depths: None,
            pool: Some(pool.stats().since(&pool_base)),
            resolved_mass: None,
            frontier_nodes: None,
            breaker_open,
            stratum_depth: None,
            error_bound: dkw_bound(config.mc_samples, config.confidence_delta),
            confidence_delta: config.confidence_delta,
        },
    ))
}

/// Build the provenance of a hybrid (checkpoint-salvage) answer: only
/// the frontier mass was estimated, so the DKW bound scales by it.
fn hybrid_provenance(
    config: &RobustConfig,
    salvage: &SalvageOutcome,
    reason: EngineError,
    cache: CacheStats,
    pool: PoolStats,
    pooled_depths: Option<usize>,
) -> Provenance {
    Provenance {
        engine: EngineKind::Hybrid,
        fallback_reason: Some(reason),
        samples: Some(salvage.samples),
        threads: Some(config.mc_threads),
        cache_hits: Some(cache.hits),
        cache_misses: Some(cache.misses),
        pooled_depths,
        pool: Some(pool),
        resolved_mass: Some(salvage.resolved_mass),
        frontier_nodes: Some(salvage.frontier_nodes),
        breaker_open: false,
        stratum_depth: None,
        error_bound: salvage.frontier_mass * dkw_bound(salvage.samples, config.confidence_delta),
        confidence_delta: config.confidence_delta,
    }
}

/// The distribution of `observe(α)` under `ε_σ`, computed by the
/// cheapest eligible tier — the compatibility entry point. Identical to
/// [`robust_observation_dist_ckpt`] but drops the checkpoint from a
/// failed query, returning the bare [`EngineError`].
pub fn robust_observation_dist(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    observe: &Observation,
    config: &RobustConfig,
) -> Result<(Disc<Value>, Provenance), EngineError> {
    robust_observation_dist_ckpt(auto, sched, horizon, observe, config).map_err(|e| e.error)
}

/// The distribution of `observe(α)` under `ε_σ`, computed by the
/// cheapest eligible tier: lumped exact, then general exact, then
/// Monte-Carlo (see the module docs for the cascade).
///
/// Every tier draws transitions and memoryless scheduler choices
/// through one [`EngineCache`] — [`RobustConfig::cache`] when set
/// (shared across calls), else a fresh per-call cache — and the general
/// and Monte-Carlo tiers share one lazily-spawned [`WorkerPool`], so a
/// query that stays sequential (small frontiers under the adaptive
/// cutover, or a 1-lane config) never spawns a thread.
///
/// Degradation semantics:
///
/// * An exact tier that trips a cap or deadline hands its checkpoint to
///   the salvage sampler; the answer is [`EngineKind::Hybrid`] with the
///   resolved mass reported in provenance.
/// * A cancelled query ([`dpioa_core::CancelToken`] in the budget)
///   fails with [`RobustError`] carrying the checkpoint built so far —
///   cancellation means "stop now", so no salvage sampling is
///   attempted (it would be cancelled too).
/// * An open [`CircuitBreaker`] skips the exact tiers entirely.
///
/// Errors other than lumped ineligibility and budget exhaustion
/// (scheduler contract violations, invalid sampling parameters, a
/// sampler shard that keeps panicking) are returned as-is: they are
/// deterministic and a different engine would not fix them.
#[allow(clippy::result_large_err)] // the Err variant carries the cancelled query's checkpoint by design
pub fn robust_observation_dist_ckpt(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    observe: &Observation,
    config: &RobustConfig,
) -> Result<(Disc<Value>, Provenance), RobustError> {
    robust_observation_dist_resumable(auto, sched, horizon, observe, config, None)
        .map(|(dist, prov, _ckpt)| (dist, prov))
}

/// The resumable cascade: [`robust_observation_dist_ckpt`] extended
/// with *incremental-deadline* support in both directions.
///
/// * **Out**: when an exact tier trips its budget or deadline and the
///   answer degrades to [`EngineKind::Hybrid`], the tier's checkpoint
///   is returned alongside the answer instead of being discarded after
///   salvage. Persist it (e.g. with `dpioa-store`) and the partial
///   exact work survives the process.
/// * **In**: `resume: Some(ckpt)` seeds the matching exact tier with a
///   previous checkpoint — a [`Checkpoint::Cone`] re-enters the
///   general pooled engine, a [`Checkpoint::Lumped`] re-enters the
///   class-space engine — under this call's (presumably enlarged)
///   budget. A completing resume is **bit-identical** to an
///   uninterrupted run of the same query (the engines' depth-aligned
///   rollback guarantees it); a resume that trips again returns a new
///   checkpoint, so a query can make progress across any number of
///   deadline slices.
///
/// A resumed query bypasses the [`CircuitBreaker`] entirely — the
/// checkpoint is already-paid-for exact work, so the breaker neither
/// gates it nor learns from its outcome. `Ok` answers carry `None`
/// for the checkpoint exactly when they are complete (lumped or
/// exact); Monte-Carlo answers carry `None` too, since there is no
/// exact state worth resuming.
#[allow(clippy::result_large_err)] // the Err variant carries the cancelled query's checkpoint by design
pub fn robust_observation_dist_resumable(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    observe: &Observation,
    config: &RobustConfig,
    resume: Option<Checkpoint>,
) -> Result<(Disc<Value>, Provenance, Option<Checkpoint>), RobustError> {
    let local_cache;
    let cache: &EngineCache = match &config.cache {
        Some(shared) => shared.as_ref(),
        None => {
            local_cache = EngineCache::new();
            &local_cache
        }
    };
    let obs_fn = |e: &Execution| observe.apply(auto, e);
    let resuming = resume.is_some();
    let breaker = if resuming {
        None
    } else {
        config.breaker.as_deref()
    };
    let breaker_key = auto.name();

    // Open breaker: the exact tiers have tripped their budget on this
    // automaton `threshold` consecutive times — skip them.
    if breaker.is_some_and(|b| b.is_open(&breaker_key)) {
        return with_pool_seeded(config.mc_threads.max(1), DEFAULT_STEAL_SEED, |pool| {
            monte_carlo_pooled(
                auto, sched, horizon, config, cache, pool, &obs_fn, None, true,
            )
        })
        .map(|(dist, prov)| (dist, prov, None))
        .map_err(RobustError::from);
    }

    // Stratum support: one family key per query. Lookups serve fresh
    // queries only — an explicit `resume` checkpoint is already
    // deeper, paid-for work — while deposits ride every exact
    // expansion (the sinks run on this thread, between depths).
    let strata = config.strata.as_ref();
    let strata_scope = strata.map(|_| cache.choice_scope(sched));
    let mut stratum_depth: Option<usize> = None;

    // Lumped tier: eligibility probe on a fresh query (resuming the
    // deepest compatible lumped stratum when one is cached), a direct
    // class-space re-entry on a lumped checkpoint; a cone checkpoint
    // skips straight back to the general tier it came from.
    let mut cone_resume: Option<ConeCheckpoint<f64>> = None;
    let mut lumped_resume: Option<LumpedCheckpoint> = None;
    let mut lumped_horizon = horizon;
    match resume {
        None => {
            if let (Some(sc), Some(scope)) = (strata, strata_scope) {
                if let Some((depth, hit)) =
                    cache.lookup_stratum(sc.fingerprint, scope, observe.describe(), horizon)
                {
                    if let Checkpoint::Lumped(ckpt) = hit.as_ref() {
                        stratum_depth = Some(depth);
                        lumped_resume = Some(ckpt.clone());
                    }
                }
            }
        }
        Some(Checkpoint::Lumped(ckpt)) => {
            // A user checkpoint records the horizon it was cut from;
            // the resume must finish *that* expansion. (A stratum, by
            // contrast, resumes toward this query's own horizon.)
            lumped_horizon = ckpt.horizon;
            lumped_resume = Some(ckpt);
        }
        Some(Checkpoint::Cone(ckpt)) => cone_resume = Some(ckpt),
    }
    let cache_base = cache.stats();
    let lumped = if cone_resume.is_some() {
        None
    } else {
        let mut lumped_sink;
        let deposit = match (strata, strata_scope) {
            (Some(sc), Some(scope)) if sc.stride > 0 => {
                let fingerprint = sc.fingerprint;
                let obs_name = observe.describe();
                lumped_sink = move |depth: usize, ckpt: LumpedCheckpoint| {
                    cache.deposit_stratum(
                        fingerprint,
                        scope,
                        obs_name,
                        depth,
                        Checkpoint::Lumped(ckpt),
                    );
                };
                Some(StratumSink {
                    stride: sc.stride,
                    min_depth: lumped_resume.as_ref().map_or(0, |c| c.step),
                    sink: &mut lumped_sink,
                })
            }
            _ => None,
        };
        Some(try_lumped_observation_dist_strata(
            auto,
            sched,
            lumped_horizon,
            observe,
            &config.budget,
            cache,
            lumped_resume,
            deposit,
        ))
    };
    let not_lumpable = match lumped {
        // Resuming a cone checkpoint: the original query already
        // proved lumped ineligibility; carry that fact as provenance.
        None => EngineError::NotLumpable {
            reason: "resumed general-tier checkpoint".into(),
        },
        Some(Ok(LumpedOutcome::Complete(dist))) => {
            if let Some(b) = breaker {
                b.record_success(&breaker_key);
            }
            let mut prov = Provenance::lumped(cache.stats().since(cache_base));
            prov.stratum_depth = stratum_depth;
            return Ok((dist, prov, None));
        }
        Some(Ok(LumpedOutcome::Partial(ckpt))) => {
            if let Some(b) = breaker {
                b.record_failure(&breaker_key);
            }
            if is_cancellation(&ckpt.reason) {
                return Err(RobustError {
                    error: ckpt.reason.clone(),
                    checkpoint: Some(Checkpoint::Lumped(ckpt)),
                });
            }
            // The lumped class space is a quotient of the execution
            // space, so the general tier cannot fit either — salvage
            // the class-space checkpoint on an MC-sized pool.
            return with_pool_seeded(config.mc_threads.max(1), DEFAULT_STEAL_SEED, |pool| {
                let cache_base = cache.stats();
                let pool_base = pool.stats();
                match try_salvage_lumped_pooled_with(
                    &ckpt,
                    auto,
                    sched,
                    observe,
                    config.mc_samples,
                    config.mc_seed,
                    config.mc_threads,
                    Some(cache),
                    config.budget.cancel.clone(),
                    pool,
                ) {
                    Ok(salvage) => {
                        let mut prov = hybrid_provenance(
                            config,
                            &salvage,
                            ckpt.reason.clone(),
                            cache.stats().since(cache_base),
                            pool.stats().since(&pool_base),
                            None,
                        );
                        prov.stratum_depth = stratum_depth;
                        Ok((salvage.dist, prov, Some(Checkpoint::Lumped(ckpt))))
                    }
                    // The scheduler stopped being memoryless below the
                    // frontier (it may inspect the step index): class
                    // suffixes are unsamplable, restart MC from scratch.
                    Err(EngineError::NotLumpable { .. }) => monte_carlo_pooled(
                        auto,
                        sched,
                        horizon,
                        config,
                        cache,
                        pool,
                        &obs_fn,
                        Some(ckpt.reason.clone()),
                        false,
                    )
                    .map(|(dist, prov)| (dist, prov, None))
                    .map_err(RobustError::from),
                    Err(e) if is_cancellation(&e) => Err(RobustError {
                        error: e,
                        checkpoint: Some(Checkpoint::Lumped(ckpt.clone())),
                    }),
                    Err(other) => Err(RobustError::from(other)),
                }
            });
        }
        Some(Err(reason @ EngineError::NotLumpable { .. })) => reason,
        Some(Err(other)) => return Err(RobustError::from(other)),
    };

    // General tier: once lumpedness is ruled out, a fresh query
    // consults the observation-independent cone strata (deposited
    // under the empty observation key). Any lumped stratum depth is
    // moot by now — the lumped tier did not answer.
    stratum_depth = None;
    if cone_resume.is_none() && !resuming {
        if let (Some(sc), Some(scope)) = (strata, strata_scope) {
            if let Some((depth, hit)) = cache.lookup_stratum(sc.fingerprint, scope, "", horizon) {
                if let Checkpoint::Cone(ckpt) = hit.as_ref() {
                    let mut ckpt = ckpt.clone();
                    // A stratum records its deposit depth as `horizon`;
                    // this query resumes it toward its own horizon.
                    ckpt.horizon = horizon;
                    stratum_depth = Some(depth);
                    cone_resume = Some(ckpt);
                }
            }
        }
    }
    let policy = match config.par_cutover {
        Some(cutover) => ParallelPolicy::new(config.exact_threads, cutover),
        None => ParallelPolicy::auto(config.exact_threads),
    };
    // One pool serves both remaining tiers; workers spawn lazily, so
    // provisioning for the wider of the two costs nothing if the exact
    // tier answers below its cutover.
    let lanes = policy.threads.max(config.mc_threads.max(1));
    // A cone checkpoint records the horizon it was cut from; the resume
    // must finish *that* expansion, whatever this call says.
    let horizon = match &cone_resume {
        Some(ckpt) => ckpt.horizon,
        None => horizon,
    };
    with_pool_seeded(lanes, policy.steal_seed, |pool| {
        let cone_min = cone_resume.as_ref().map_or(0, |c| {
            c.frontier.first().map_or(c.horizon, |(e, _)| e.len())
        });
        let mut cone_sink;
        let deposit = match (strata, strata_scope) {
            (Some(sc), Some(scope)) if sc.stride > 0 => {
                let fingerprint = sc.fingerprint;
                cone_sink = move |depth: usize, ckpt: ConeCheckpoint<f64>| {
                    cache.deposit_stratum(fingerprint, scope, "", depth, Checkpoint::Cone(ckpt));
                };
                Some(StratumSink {
                    stride: sc.stride,
                    min_depth: cone_min,
                    sink: &mut cone_sink,
                })
            }
            _ => None,
        };
        let general = try_execution_measure_strata_with(
            auto,
            sched,
            horizon,
            &config.budget,
            policy,
            cache,
            pool,
            Ok,
            cone_resume,
            deposit,
        )
        .map_err(RobustError::from)?;
        match general {
            (ExpansionOutcome::Complete(measure), stats) => {
                if let Some(b) = breaker {
                    b.record_success(&breaker_key);
                }
                let dist = measure
                    .try_observe(|e| observe.apply(auto, e))
                    .map_err(RobustError::from)?;
                let mut prov = Provenance::exact(not_lumpable, stats);
                prov.stratum_depth = stratum_depth;
                Ok((dist, prov, None))
            }
            (ExpansionOutcome::Partial(ckpt), stats) => {
                if let Some(b) = breaker {
                    b.record_failure(&breaker_key);
                }
                if is_cancellation(&ckpt.reason) {
                    return Err(RobustError {
                        error: ckpt.reason.clone(),
                        checkpoint: Some(Checkpoint::Cone(ckpt)),
                    });
                }
                let cache_base = cache.stats();
                let pool_base = pool.stats();
                match try_salvage_observations_pooled_with(
                    &ckpt,
                    auto,
                    sched,
                    config.mc_samples,
                    config.mc_seed,
                    config.mc_threads,
                    Some(cache),
                    config.budget.cancel.clone(),
                    pool,
                    &obs_fn,
                ) {
                    Ok(salvage) => {
                        let mut prov = hybrid_provenance(
                            config,
                            &salvage,
                            ckpt.reason.clone(),
                            cache.stats().since(cache_base),
                            pool.stats().since(&pool_base),
                            Some(stats.pooled_depths),
                        );
                        prov.stratum_depth = stratum_depth;
                        Ok((salvage.dist, prov, Some(Checkpoint::Cone(ckpt))))
                    }
                    Err(e) if is_cancellation(&e) => Err(RobustError {
                        error: e,
                        checkpoint: Some(Checkpoint::Cone(ckpt.clone())),
                    }),
                    Err(other) => Err(RobustError::from(other)),
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{DeterministicScheduler, FirstEnabled};
    use dpioa_core::{Action, CancelToken, Execution, ExplicitAutomaton, Signature};
    use dpioa_prob::tv_distance;

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn coin() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("r-coin", Value::int(0))
            .state(0, Signature::new([], [], [act("r-flip")]))
            .state(1, Signature::new([], [], []))
            .state(2, Signature::new([], [], []))
            .transition(
                0,
                act("r-flip"),
                Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 1),
            )
            .build()
    }

    #[test]
    fn memoryless_query_answers_at_the_lumped_tier() {
        let auto = coin();
        let (dist, prov) = robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &RobustConfig::default(),
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::Lumped);
        assert!(prov.fallback_reason.is_none());
        assert!(!prov.breaker_open);
        assert_eq!(prov.error_bound, 0.0);
        assert_eq!(dist.prob(&Value::int(1)), 0.5);
    }

    #[test]
    fn history_dependent_scheduler_falls_to_general_exact() {
        let auto = coin();
        // Memoryful: halts after one step by inspecting the execution.
        let sched = DeterministicScheduler::new("one-step", |exec, enabled| {
            if exec.is_empty() {
                enabled.first().copied()
            } else {
                None
            }
        });
        let (dist, prov) = robust_observation_dist(
            &auto,
            &sched,
            3,
            &Observation::final_state(),
            &RobustConfig::default(),
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::Exact);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::NotLumpable { .. })
        ));
        assert_eq!(prov.error_bound, 0.0);
        assert_eq!(dist.prob(&Value::int(1)), 0.5);
        // The parallel general tier gives the same distribution.
        let (par, prov2) = robust_observation_dist(
            &auto,
            &sched,
            3,
            &Observation::final_state(),
            &RobustConfig {
                exact_threads: 3,
                ..RobustConfig::default()
            },
        )
        .unwrap();
        assert_eq!(prov2.engine, EngineKind::Exact);
        assert_eq!(dist, par);
    }

    #[test]
    fn exhausted_budget_salvages_into_a_hybrid_estimate() {
        let auto = coin();
        // History-dependent (ineligible for lumping) so the general
        // exact tier runs — and exhausts its one-expansion budget.
        let sched =
            DeterministicScheduler::new("memoryful-first", |_, enabled| enabled.first().copied());
        let config = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(1),
            mc_samples: 40_000,
            mc_threads: 2,
            ..RobustConfig::default()
        };
        let (dist, prov) =
            robust_observation_dist(&auto, &sched, 2, &Observation::final_state(), &config)
                .unwrap();
        assert_eq!(prov.engine, EngineKind::Hybrid);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::BudgetExhausted {
                cancelled: false,
                ..
            })
        ));
        assert_eq!(prov.samples, Some(40_000));
        // Conservation: the checkpoint partitions the unit mass.
        let resolved = prov.resolved_mass.unwrap();
        assert!((0.0..=1.0).contains(&resolved));
        assert!(prov.frontier_nodes.unwrap() > 0);
        // The bound is the DKW bound scaled by the frontier mass.
        let full = dkw_bound(40_000, config.confidence_delta);
        assert!(prov.error_bound <= full + 1e-15);
        assert!(prov.error_bound > 0.0);
        // The hybrid estimate still tracks the exact answer.
        let exact =
            crate::measure::observation_dist(&auto, &FirstEnabled, 2, |e| e.lstate().clone());
        assert!(tv_distance(&exact, &dist) < 0.02);
    }

    #[test]
    fn lumped_budget_exhaustion_salvages_in_class_space() {
        let auto = coin();
        let config = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(0),
            mc_samples: 20_000,
            mc_threads: 2,
            ..RobustConfig::default()
        };
        let (dist, prov) = robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &config,
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::Hybrid);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::BudgetExhausted { .. })
        ));
        // Tripped before anything resolved: everything was estimated.
        assert_eq!(prov.resolved_mass, Some(0.0));
        assert_eq!(prov.frontier_nodes, Some(1));
        let exact =
            crate::measure::observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        assert!(tv_distance(&exact, &dist) < 0.02);
    }

    #[test]
    fn cancelled_query_fails_with_the_checkpoint_in_hand() {
        let auto = coin();
        let token = CancelToken::new();
        token.cancel();
        let config = RobustConfig {
            budget: Budget::unlimited().with_cancel(token),
            ..RobustConfig::default()
        };
        let err = robust_observation_dist_ckpt(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &config,
        )
        .unwrap_err();
        assert!(matches!(
            err.error,
            EngineError::BudgetExhausted {
                cancelled: true,
                ..
            }
        ));
        let ckpt = err
            .checkpoint
            .expect("cancellation must carry a checkpoint");
        // Pre-cancelled: nothing resolved, the full unit on the frontier.
        assert_eq!(ckpt.resolved_mass(), 0.0);
        assert_eq!(ckpt.frontier_mass(), 1.0);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_skips_exact_tiers() {
        let auto = coin();
        let breaker = Arc::new(CircuitBreaker::new(2));
        let config = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(0),
            mc_samples: 5_000,
            mc_threads: 2,
            breaker: Some(Arc::clone(&breaker)),
            ..RobustConfig::default()
        };
        // Two failing queries open the breaker…
        for _ in 0..2 {
            let (_, prov) = robust_observation_dist(
                &auto,
                &FirstEnabled,
                1,
                &Observation::final_state(),
                &config,
            )
            .unwrap();
            assert_eq!(prov.engine, EngineKind::Hybrid);
            assert!(!prov.breaker_open);
        }
        assert!(breaker.is_open(&auto.name()));
        // …so the third skips the exact tiers entirely.
        let (_, prov) = robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &config,
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::MonteCarlo);
        assert!(prov.breaker_open);
        assert!(prov.fallback_reason.is_none());
        // A success under a real budget closes it again.
        let healthy = RobustConfig {
            breaker: Some(Arc::clone(&breaker)),
            ..RobustConfig::default()
        };
        breaker.record_success(&auto.name());
        let (_, prov) = robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &healthy,
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::Lumped);
        assert_eq!(breaker.failures(&auto.name()), 0);
    }

    #[test]
    fn breaker_counters_track_every_transition() {
        let b = CircuitBreaker::new(2);
        assert_eq!(b.stats(), BreakerStats::default());
        // Below threshold: no trip yet.
        b.record_failure("x");
        assert!(!b.is_open("x"));
        assert_eq!(b.stats().trips, 0);
        // Crossing the threshold trips exactly once.
        b.record_failure("x");
        assert!(b.is_open("x"));
        let s = b.stats();
        assert_eq!((s.trips, s.reopens, s.closes, s.open_keys), (1, 0, 0, 1));
        assert_eq!(b.open_keys(), vec!["x".to_string()]);
        // Further failures while open are not new trips.
        b.record_failure("x");
        assert_eq!(b.stats().trips, 1);
        assert_eq!(b.stats().reopens, 1, "failure while open re-arms");
        // A second key trips independently.
        b.record_failure("y");
        b.record_failure("y");
        assert_eq!(b.stats().trips, 2);
        assert_eq!(b.stats().open_keys, 2);
        // Success on an open key counts a close and resets it fully.
        b.record_success("x");
        let s = b.stats();
        assert_eq!((s.closes, s.open_keys), (1, 1));
        assert_eq!(b.failures("x"), 0);
        // Success on a never-open key is not a close.
        b.record_failure("z");
        b.record_success("z");
        assert_eq!(b.stats().closes, 1);
        // Without a cooldown, open stays open.
        assert!(b.is_open("y"));
        assert_eq!(b.stats().half_open_probes, 0);
    }

    #[test]
    fn cooldown_goes_half_open_and_probe_outcome_closes_or_rearms() {
        let b = CircuitBreaker::new(1).with_cooldown(Duration::ZERO);
        b.record_failure("p");
        // Cooldown (zero) already elapsed: half-open, the query probes.
        assert!(!b.is_open("p"));
        assert_eq!(b.stats().half_open_probes, 1);
        assert_eq!(b.stats().open_keys, 1, "half-open is still accounted open");
        // Failed probe: re-armed (reopen), still open logically.
        b.record_failure("p");
        assert_eq!(b.stats().reopens, 1);
        // Successful probe closes.
        assert!(!b.is_open("p"));
        b.record_success("p");
        let s = b.stats();
        assert_eq!((s.trips, s.reopens, s.closes, s.open_keys), (1, 1, 1, 0));
        // A long cooldown keeps the key hard-open.
        let slow = CircuitBreaker::new(1).with_cooldown(Duration::from_secs(3600));
        slow.record_failure("q");
        assert!(slow.is_open("q"));
        assert_eq!(slow.stats().half_open_probes, 0);
    }

    #[test]
    fn half_open_probe_reaches_the_exact_tiers_again() {
        let auto = coin();
        let breaker = Arc::new(CircuitBreaker::new(1).with_cooldown(Duration::ZERO));
        let failing = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(0),
            mc_samples: 5_000,
            mc_threads: 2,
            breaker: Some(Arc::clone(&breaker)),
            ..RobustConfig::default()
        };
        // Trip it.
        robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &failing,
        )
        .unwrap();
        assert_eq!(breaker.stats().trips, 1);
        // Cooldown elapsed: the next healthy query probes the exact
        // tiers (is not shunted to Monte-Carlo) and closes the breaker.
        let healthy = RobustConfig {
            breaker: Some(Arc::clone(&breaker)),
            ..RobustConfig::default()
        };
        let (_, prov) = robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &healthy,
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::Lumped);
        assert!(!prov.breaker_open);
        let s = breaker.stats();
        assert!(s.half_open_probes >= 1);
        assert_eq!((s.closes, s.open_keys), (1, 0));
    }

    #[test]
    fn non_budget_errors_are_not_masked() {
        struct Rogue;
        impl Scheduler for Rogue {
            fn schedule(
                &self,
                _auto: &dyn Automaton,
                _exec: &Execution,
            ) -> dpioa_prob::SubDisc<Action> {
                dpioa_prob::SubDisc::dirac(act("r-rogue"))
            }
            fn describe(&self) -> String {
                "rogue".into()
            }
        }
        let auto = coin();
        let err = robust_observation_dist(
            &auto,
            &Rogue,
            1,
            &Observation::final_state(),
            &RobustConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::DisabledAction { .. }));
    }

    #[test]
    fn dkw_bound_shrinks_with_samples() {
        assert!(dkw_bound(100, 1e-3) > dkw_bound(10_000, 1e-3));
        assert!((dkw_bound(50_000, 1e-3) - ((2000.0f64).ln() / 100_000.0).sqrt()).abs() < 1e-12);
    }

    /// A branching walk deep enough for multi-slice deadline tests:
    /// state `k` steps to `k + 1` or back to `0` with equal weight.
    fn walk(n: i64) -> ExplicitAutomaton {
        let step = act("r-walk");
        let mut b = ExplicitAutomaton::builder("r-walk", Value::int(0));
        for k in 0..n {
            b = b.state(k, Signature::new([], [], [step])).transition(
                k,
                step,
                Disc::bernoulli_dyadic(Value::int(k + 1), Value::int(0), 1, 1),
            );
        }
        b.state(n, Signature::new([], [], [])).build()
    }

    fn dist_bits(d: &Disc<Value>) -> Vec<(Value, u64)> {
        d.iter().map(|(v, &w)| (v.clone(), w.to_bits())).collect()
    }

    #[test]
    fn deadline_sliced_general_query_resumes_bit_identically() {
        let auto = walk(10);
        // History-dependent, so the general tier answers.
        let sched =
            DeterministicScheduler::new("slice-first", |_, enabled| enabled.first().copied());
        let obs = Observation::final_state();
        let (want, prov) =
            robust_observation_dist(&auto, &sched, 4, &obs, &RobustConfig::default()).unwrap();
        assert_eq!(prov.engine, EngineKind::Exact);

        // Each slice affords 16 expansions — enough for any single
        // depth at this horizon (the widest is 2^4 = 16 nodes; rollback
        // is depth-aligned, so a depth wider than the slice would never
        // make progress), too little for the whole query, so the first
        // slice degrades to Hybrid and hands back its cone checkpoint.
        let slice = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(16),
            mc_samples: 400,
            mc_threads: 1,
            ..RobustConfig::default()
        };
        let (_, first, ckpt) =
            robust_observation_dist_resumable(&auto, &sched, 4, &obs, &slice, None).unwrap();
        assert_eq!(first.engine, EngineKind::Hybrid);
        let mut resume = ckpt;
        assert!(matches!(resume, Some(Checkpoint::Cone(_))));

        let mut answer = None;
        for _ in 0..32 {
            let (dist, prov, ckpt) =
                robust_observation_dist_resumable(&auto, &sched, 4, &obs, &slice, resume.take())
                    .unwrap();
            match ckpt {
                None => {
                    assert_eq!(prov.engine, EngineKind::Exact);
                    answer = Some(dist);
                    break;
                }
                some => {
                    assert_eq!(prov.engine, EngineKind::Hybrid);
                    resume = some;
                }
            }
        }
        let got = answer.expect("deadline slices must converge");
        assert_eq!(
            dist_bits(&got),
            dist_bits(&want),
            "sliced resume must be bit-identical to the uninterrupted run"
        );
    }

    #[test]
    fn lumped_checkpoint_resumes_to_a_complete_lumped_answer() {
        let auto = walk(10);
        let obs = Observation::final_state();
        let (want, prov) =
            robust_observation_dist(&auto, &FirstEnabled, 5, &obs, &RobustConfig::default())
                .unwrap();
        assert_eq!(prov.engine, EngineKind::Lumped);

        let slice = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(2),
            mc_samples: 400,
            mc_threads: 1,
            ..RobustConfig::default()
        };
        let (_, first, ckpt) =
            robust_observation_dist_resumable(&auto, &FirstEnabled, 5, &obs, &slice, None).unwrap();
        assert_eq!(first.engine, EngineKind::Hybrid);
        let ckpt = ckpt.expect("tripped slice hands back its checkpoint");
        assert!(matches!(ckpt, Checkpoint::Lumped(_)));

        // One resume under a real budget completes in class space, with
        // the same bits as the uninterrupted lumped run.
        let (got, second, left) = robust_observation_dist_resumable(
            &auto,
            &FirstEnabled,
            5,
            &obs,
            &RobustConfig::default(),
            Some(ckpt),
        )
        .unwrap();
        assert_eq!(second.engine, EngineKind::Lumped);
        assert!(left.is_none());
        assert_eq!(dist_bits(&got), dist_bits(&want));
    }

    fn strata_config(cache: &Arc<EngineCache>, stride: usize) -> RobustConfig {
        RobustConfig {
            cache: Some(Arc::clone(cache)),
            strata: Some(StrataConfig {
                fingerprint: 0xF00D,
                stride,
            }),
            ..RobustConfig::default()
        }
    }

    #[test]
    fn lumped_queries_deposit_strata_and_repeats_resume_bit_identically() {
        let auto = walk(10);
        let obs = Observation::final_state();
        let cache = Arc::new(EngineCache::new());
        let config = strata_config(&cache, 2);

        // Cold run: answers lumped, deposits strata at the stride
        // depths and the horizon, claims no resume itself.
        let (want, prov) = robust_observation_dist(&auto, &FirstEnabled, 6, &obs, &config).unwrap();
        assert_eq!(prov.engine, EngineKind::Lumped);
        assert_eq!(prov.stratum_depth, None);
        let stats = cache.strata_stats();
        assert!(
            stats.deposits >= 3,
            "stride 2 over horizon 6 must deposit depths 2, 4, and 6: {stats:?}"
        );

        // Same query again: resumes past the whole expansion from the
        // horizon stratum, bit-identically.
        let (got, prov) = robust_observation_dist(&auto, &FirstEnabled, 6, &obs, &config).unwrap();
        assert_eq!(prov.engine, EngineKind::Lumped);
        assert_eq!(prov.stratum_depth, Some(6));
        assert_eq!(dist_bits(&got), dist_bits(&want));
        assert!(cache.strata_stats().hits >= 1);

        // A deeper horizon resumes mid-cone from the deepest
        // compatible stratum and still matches a cold run exactly.
        let (deep, prov) = robust_observation_dist(&auto, &FirstEnabled, 9, &obs, &config).unwrap();
        assert_eq!(prov.stratum_depth, Some(6));
        let (deep_want, _) =
            robust_observation_dist(&auto, &FirstEnabled, 9, &obs, &RobustConfig::default())
                .unwrap();
        assert_eq!(dist_bits(&deep), dist_bits(&deep_want));

        // A shallower horizon resumes from the stride stratum at its
        // own depth (range lookup, never a too-deep stratum).
        let (shallow, prov) =
            robust_observation_dist(&auto, &FirstEnabled, 4, &obs, &config).unwrap();
        assert_eq!(prov.stratum_depth, Some(4));
        let (shallow_want, _) =
            robust_observation_dist(&auto, &FirstEnabled, 4, &obs, &RobustConfig::default())
                .unwrap();
        assert_eq!(dist_bits(&shallow), dist_bits(&shallow_want));
    }

    #[test]
    fn cone_strata_resume_bit_identically_across_observations() {
        let auto = walk(8);
        // History-dependent: the general exact tier answers, so the
        // deposits are cone strata keyed observation-independently.
        let sched =
            DeterministicScheduler::new("strata-first", |_, enabled| enabled.first().copied());
        let cache = Arc::new(EngineCache::new());
        let config = strata_config(&cache, 2);

        let obs = Observation::final_state();
        let (want, prov) = robust_observation_dist(&auto, &sched, 6, &obs, &config).unwrap();
        assert_eq!(prov.engine, EngineKind::Exact);
        assert_eq!(prov.stratum_depth, None);
        assert!(cache.strata_stats().deposits >= 1);

        let (got, prov) = robust_observation_dist(&auto, &sched, 6, &obs, &config).unwrap();
        assert_eq!(prov.engine, EngineKind::Exact);
        assert_eq!(prov.stratum_depth, Some(6));
        assert_eq!(dist_bits(&got), dist_bits(&want));

        // A different observation over the same cone reuses the same
        // strata: the snapshot stores executions, not observations.
        let trace_obs = Observation::trace();
        let (traced, prov) =
            robust_observation_dist(&auto, &sched, 6, &trace_obs, &config).unwrap();
        assert_eq!(prov.stratum_depth, Some(6));
        let (traced_want, _) =
            robust_observation_dist(&auto, &sched, 6, &trace_obs, &RobustConfig::default())
                .unwrap();
        assert_eq!(dist_bits(&traced), dist_bits(&traced_want));

        // Shallower horizon: resume from the depth-4 stride stratum is
        // bit-identical to the cold depth-4 expansion.
        let (shallow, prov) = robust_observation_dist(&auto, &sched, 4, &obs, &config).unwrap();
        assert_eq!(prov.stratum_depth, Some(4));
        let (shallow_want, _) =
            robust_observation_dist(&auto, &sched, 4, &obs, &RobustConfig::default()).unwrap();
        assert_eq!(dist_bits(&shallow), dist_bits(&shallow_want));
    }

    #[test]
    fn stride_zero_consults_strata_without_depositing() {
        let auto = walk(10);
        let obs = Observation::final_state();
        let cache = Arc::new(EngineCache::new());

        // Prime the table with a writing config…
        let (want, _) =
            robust_observation_dist(&auto, &FirstEnabled, 5, &obs, &strata_config(&cache, 1))
                .unwrap();
        let primed = cache.strata_stats().deposits;
        assert!(primed > 0);

        // …then a stride-0 config still resumes from it but adds
        // nothing of its own.
        let lookup_only = strata_config(&cache, 0);
        let (got, prov) =
            robust_observation_dist(&auto, &FirstEnabled, 5, &obs, &lookup_only).unwrap();
        assert_eq!(prov.stratum_depth, Some(5));
        assert_eq!(dist_bits(&got), dist_bits(&want));
        assert_eq!(cache.strata_stats().deposits, primed);
    }

    #[test]
    fn user_checkpoint_resume_bypasses_stratum_lookup() {
        let auto = walk(10);
        let obs = Observation::final_state();
        let cache = Arc::new(EngineCache::new());
        let config = strata_config(&cache, 2);

        // Prime deep strata for the family.
        robust_observation_dist(&auto, &FirstEnabled, 6, &obs, &config).unwrap();

        // A budget-tripped slice (run without strata, so the primed
        // table cannot rescue it) hands back a genuine checkpoint…
        let slice = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(2),
            mc_samples: 400,
            mc_threads: 1,
            ..RobustConfig::default()
        };
        let (_, first, ckpt) =
            robust_observation_dist_resumable(&auto, &FirstEnabled, 6, &obs, &slice, None).unwrap();
        assert_eq!(first.engine, EngineKind::Hybrid);
        let ckpt = ckpt.expect("tripped slice hands back its checkpoint");

        // …and resuming it must honour *that* checkpoint, not swap in
        // a deeper stratum behind the caller's back.
        let (got, prov, left) =
            robust_observation_dist_resumable(&auto, &FirstEnabled, 6, &obs, &config, Some(ckpt))
                .unwrap();
        assert_eq!(prov.engine, EngineKind::Lumped);
        assert_eq!(prov.stratum_depth, None);
        assert!(left.is_none());
        let (want, _) =
            robust_observation_dist(&auto, &FirstEnabled, 6, &obs, &RobustConfig::default())
                .unwrap();
        assert_eq!(dist_bits(&got), dist_bits(&want));
    }
}
