//! Graceful degradation: lumped → general-exact → Monte-Carlo, with
//! provenance.
//!
//! [`robust_observation_dist`] is the production entry point for
//! observation distributions. It tries the engines from cheapest-exact
//! to approximate:
//!
//! 1. **state-lumped exact** ([`crate::lumped`]): polynomial forward
//!    pass, eligible when the scheduler is memoryless and the
//!    observation factors through trace or last state;
//! 2. **general exact** ([`crate::measure`]): full cone expansion
//!    (parallel over the frontier when
//!    [`RobustConfig::exact_threads`] > 1), for history-dependent
//!    schedulers;
//! 3. **Monte-Carlo** ([`crate::sample`]): when the exact [`Budget`] is
//!    exhausted.
//!
//! The returned [`Provenance`] names the tier that answered and a
//! statistical error bound, so downstream emulation distances can widen
//! their ε accordingly instead of silently treating an estimate as
//! exact. A lumped-tier budget exhaustion skips straight to Monte-Carlo:
//! the lumped class space is a quotient of the general execution space,
//! so a budget too small for the quotient is certainly too small for the
//! cover.

use crate::error::{Budget, EngineError};
use crate::lumped::{try_lumped_observation_dist, Observation};
use crate::measure::{try_execution_measure, try_execution_measure_parallel};
use crate::sample::try_sample_observations_parallel;
use crate::scheduler::Scheduler;
use dpioa_core::{Automaton, Value};
use dpioa_prob::Disc;

/// Which engine produced an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// State-lumped exact expansion: exact, polynomial in the reachable
    /// lump classes.
    Lumped,
    /// General exact cone expansion: the distribution is exact (up to
    /// `f64` weight arithmetic).
    Exact,
    /// Parallel Monte-Carlo sampling: the distribution is an estimate.
    MonteCarlo,
}

/// How a [`robust_observation_dist`] answer was produced.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// The engine that answered.
    pub engine: EngineKind,
    /// Why the preceding exact tier(s) were abandoned (`None` when the
    /// lumped tier answered; the lumped ineligibility reason when the
    /// general tier answered; the budget exhaustion when Monte-Carlo
    /// answered).
    pub fallback_reason: Option<EngineError>,
    /// Samples drawn (Monte-Carlo only).
    pub samples: Option<usize>,
    /// Worker threads used (parallel general-exact and Monte-Carlo).
    pub threads: Option<usize>,
    /// A bound `b` such that every event probability in the returned
    /// distribution is within `b` of its true value with probability at
    /// least `1 − confidence_delta` (DKW inequality). `0.0` for exact
    /// answers.
    pub error_bound: f64,
    /// The `δ` used for [`Provenance::error_bound`].
    pub confidence_delta: f64,
}

impl Provenance {
    fn lumped() -> Provenance {
        Provenance {
            engine: EngineKind::Lumped,
            fallback_reason: None,
            samples: None,
            threads: None,
            error_bound: 0.0,
            confidence_delta: 0.0,
        }
    }

    fn exact(reason: EngineError, threads: usize) -> Provenance {
        Provenance {
            engine: EngineKind::Exact,
            fallback_reason: Some(reason),
            samples: None,
            threads: (threads > 1).then_some(threads),
            error_bound: 0.0,
            confidence_delta: 0.0,
        }
    }
}

/// Configuration for [`robust_observation_dist`].
#[derive(Clone, Debug)]
pub struct RobustConfig {
    /// Budget for the exact attempts (lumped and general).
    pub budget: Budget,
    /// Worker threads for the general exact frontier expansion; `1`
    /// keeps the sequential depth-first engine.
    pub exact_threads: usize,
    /// Monte-Carlo samples on fallback.
    pub mc_samples: usize,
    /// Monte-Carlo worker threads.
    pub mc_threads: usize,
    /// Monte-Carlo base seed.
    pub mc_seed: u64,
    /// Confidence parameter `δ` for the reported DKW error bound.
    pub confidence_delta: f64,
}

impl Default for RobustConfig {
    fn default() -> RobustConfig {
        RobustConfig {
            budget: Budget::unlimited().with_max_entries(1 << 16),
            exact_threads: 1,
            mc_samples: 100_000,
            mc_threads: 4,
            mc_seed: 0xD10A,
            confidence_delta: 1e-3,
        }
    }
}

/// The DKW sampling-error bound `sqrt(ln(2/δ) / 2n)`.
fn dkw_bound(n: usize, delta: f64) -> f64 {
    ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

fn monte_carlo(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    observe: &Observation,
    config: &RobustConfig,
    reason: EngineError,
) -> Result<(Disc<Value>, Provenance), EngineError> {
    let dist = try_sample_observations_parallel(
        auto,
        sched,
        horizon,
        config.mc_samples,
        config.mc_seed,
        config.mc_threads,
        |e: &dpioa_core::Execution| observe.apply(auto, e),
    )?;
    Ok((
        dist,
        Provenance {
            engine: EngineKind::MonteCarlo,
            fallback_reason: Some(reason),
            samples: Some(config.mc_samples),
            threads: Some(config.mc_threads),
            error_bound: dkw_bound(config.mc_samples, config.confidence_delta),
            confidence_delta: config.confidence_delta,
        },
    ))
}

/// The distribution of `observe(α)` under `ε_σ`, computed by the
/// cheapest eligible tier: lumped exact, then general exact, then
/// Monte-Carlo (see the module docs for the cascade).
///
/// Errors other than lumped ineligibility and budget exhaustion
/// (scheduler contract violations, invalid sampling parameters, a
/// sampler shard that keeps panicking) are returned as-is: they are
/// deterministic and a different engine would not fix them.
pub fn robust_observation_dist(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    observe: &Observation,
    config: &RobustConfig,
) -> Result<(Disc<Value>, Provenance), EngineError> {
    let not_lumpable =
        match try_lumped_observation_dist(auto, sched, horizon, observe, &config.budget) {
            Ok(dist) => return Ok((dist, Provenance::lumped())),
            Err(reason @ EngineError::NotLumpable { .. }) => reason,
            Err(reason @ EngineError::BudgetExhausted { .. }) => {
                return monte_carlo(auto, sched, horizon, observe, config, reason);
            }
            Err(other) => return Err(other),
        };

    let general = if config.exact_threads > 1 {
        try_execution_measure_parallel(auto, sched, horizon, &config.budget, config.exact_threads)
    } else {
        try_execution_measure(auto, sched, horizon, &config.budget)
    };
    match general {
        Ok(measure) => {
            let dist = measure.try_observe(|e| observe.apply(auto, e))?;
            Ok((dist, Provenance::exact(not_lumpable, config.exact_threads)))
        }
        Err(reason @ EngineError::BudgetExhausted { .. }) => {
            monte_carlo(auto, sched, horizon, observe, config, reason)
        }
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{DeterministicScheduler, FirstEnabled};
    use dpioa_core::{Action, Execution, ExplicitAutomaton, Signature};
    use dpioa_prob::tv_distance;

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn coin() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("r-coin", Value::int(0))
            .state(0, Signature::new([], [], [act("r-flip")]))
            .state(1, Signature::new([], [], []))
            .state(2, Signature::new([], [], []))
            .transition(
                0,
                act("r-flip"),
                Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 1),
            )
            .build()
    }

    #[test]
    fn memoryless_query_answers_at_the_lumped_tier() {
        let auto = coin();
        let (dist, prov) = robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &RobustConfig::default(),
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::Lumped);
        assert!(prov.fallback_reason.is_none());
        assert_eq!(prov.error_bound, 0.0);
        assert_eq!(dist.prob(&Value::int(1)), 0.5);
    }

    #[test]
    fn history_dependent_scheduler_falls_to_general_exact() {
        let auto = coin();
        // Memoryful: halts after one step by inspecting the execution.
        let sched = DeterministicScheduler::new("one-step", |exec, enabled| {
            if exec.is_empty() {
                enabled.first().copied()
            } else {
                None
            }
        });
        let (dist, prov) = robust_observation_dist(
            &auto,
            &sched,
            3,
            &Observation::final_state(),
            &RobustConfig::default(),
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::Exact);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::NotLumpable { .. })
        ));
        assert_eq!(prov.error_bound, 0.0);
        assert_eq!(dist.prob(&Value::int(1)), 0.5);
        // The parallel general tier gives the same distribution.
        let (par, prov2) = robust_observation_dist(
            &auto,
            &sched,
            3,
            &Observation::final_state(),
            &RobustConfig {
                exact_threads: 3,
                ..RobustConfig::default()
            },
        )
        .unwrap();
        assert_eq!(prov2.engine, EngineKind::Exact);
        assert_eq!(dist, par);
    }

    #[test]
    fn exhausted_budget_falls_back_to_monte_carlo_with_provenance() {
        let auto = coin();
        // History-dependent (ineligible for lumping) so the general
        // exact tier runs — and exhausts its one-expansion budget.
        let sched =
            DeterministicScheduler::new("memoryful-first", |_, enabled| enabled.first().copied());
        let config = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(1),
            mc_samples: 40_000,
            mc_threads: 2,
            ..RobustConfig::default()
        };
        let (dist, prov) =
            robust_observation_dist(&auto, &sched, 1, &Observation::final_state(), &config)
                .unwrap();
        assert_eq!(prov.engine, EngineKind::MonteCarlo);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::BudgetExhausted { .. })
        ));
        assert_eq!(prov.samples, Some(40_000));
        assert!(prov.error_bound > 0.0 && prov.error_bound < 0.05);
        // The estimate still tracks the exact answer.
        let exact =
            crate::measure::observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        assert!(tv_distance(&exact, &dist) < 0.02);
    }

    #[test]
    fn lumped_budget_exhaustion_skips_straight_to_monte_carlo() {
        let auto = coin();
        let config = RobustConfig {
            budget: Budget::unlimited().with_max_expansions(0),
            mc_samples: 20_000,
            mc_threads: 2,
            ..RobustConfig::default()
        };
        let (_, prov) = robust_observation_dist(
            &auto,
            &FirstEnabled,
            1,
            &Observation::final_state(),
            &config,
        )
        .unwrap();
        assert_eq!(prov.engine, EngineKind::MonteCarlo);
        assert!(matches!(
            prov.fallback_reason,
            Some(EngineError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn non_budget_errors_are_not_masked() {
        struct Rogue;
        impl Scheduler for Rogue {
            fn schedule(
                &self,
                _auto: &dyn Automaton,
                _exec: &Execution,
            ) -> dpioa_prob::SubDisc<Action> {
                dpioa_prob::SubDisc::dirac(act("r-rogue"))
            }
            fn describe(&self) -> String {
                "rogue".into()
            }
        }
        let auto = coin();
        let err = robust_observation_dist(
            &auto,
            &Rogue,
            1,
            &Observation::final_state(),
            &RobustConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::DisabledAction { .. }));
    }

    #[test]
    fn dkw_bound_shrinks_with_samples() {
        assert!(dkw_bound(100, 1e-3) > dkw_bound(10_000, 1e-3));
        assert!((dkw_bound(50_000, 1e-3) - ((2000.0f64).ln() / 100_000.0).sqrt()).abs() < 1e-12);
    }
}
