//! Monte-Carlo estimation of `ε_σ` and of observation distributions.
//!
//! The exact cone expansion of [`crate::measure`] is exponential in the
//! horizon; the sampler trades exactness for scalability. The parallel
//! variant fans the sample shards out over a persistent
//! [`WorkerPool`] (one deterministically seeded RNG per shard,
//! per-shard histograms merged in shard order — no shared mutable state
//! inside the hot loop), and can draw transitions and memoryless
//! scheduler choices through an [`EngineCache`] shared with the exact
//! tiers. Cached sampling consumes the **identical RNG stream** as
//! uncached sampling — the cache returns the same `Disc`/`SubDisc`
//! values and [`sample_disc`]/[`sample_subdisc`] are inverse-CDF walks
//! over their canonical entry order — so estimates are bit-for-bit
//! reproducible either way.
//!
//! Robustness: the `try_*` entry points return [`EngineError`] instead
//! of panicking, and the parallel sampler isolates worker panics per
//! shard — a shard that panics (e.g. a user observation closure hitting
//! a transient bug) is re-run with a fresh seed up to
//! [`MAX_SHARD_RETRIES`] times before the whole call gives up with
//! [`EngineError::WorkerPanicked`]. Other shards are unaffected.

use crate::cache::EngineCache;
use crate::checkpoint::{ConeCheckpoint, LumpedCheckpoint};
use crate::error::{disabled_action, EngineError};
use crate::lumped::Observation;
use crate::scheduler::Scheduler;
use dpioa_core::pool::{with_pool, WorkerPool};
use dpioa_core::{Automaton, CancelToken, Execution, IValue, Value};
use dpioa_prob::sample::{sample_disc, sample_subdisc};
use dpioa_prob::Disc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Reseeded re-runs granted to a panicking sampler shard before the
/// parallel sampler reports [`EngineError::WorkerPanicked`].
pub const MAX_SHARD_RETRIES: u32 = 3;

/// Sample one execution of `auto` under `sched`, stopping on halt, on a
/// disabled universe, or at `horizon` steps. Returns
/// [`EngineError::DisabledAction`] if the scheduler chooses an action
/// with no transition (a Def. 3.1 contract violation).
pub fn try_sample_execution<R: Rng + ?Sized>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    rng: &mut R,
) -> Result<Execution, EngineError> {
    try_sample_suffix(auto, sched, horizon, None, Execution::start_of(auto), rng)
}

/// [`try_sample_execution`] drawing transitions and memoryless
/// scheduler choices through `cache`, so repeated samples stop
/// recomputing successor distributions. Consumes the identical RNG
/// stream as the uncached sampler (see the module docs), so for a fixed
/// seed the sampled execution is the same with or without a cache.
pub fn try_sample_execution_cached<R: Rng + ?Sized>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    cache: &EngineCache,
    rng: &mut R,
) -> Result<Execution, EngineError> {
    try_sample_suffix(
        auto,
        sched,
        horizon,
        Some(cache),
        Execution::start_of(auto),
        rng,
    )
}

/// Extend `exec` by sampled steps until halt, a disabled universe, or
/// `horizon` total steps. This is the conditional sampler behind
/// checkpoint salvage: the scheduler sees the *full* execution (prefix
/// included), so the suffix is drawn from exactly the distribution the
/// exact engine would have expanded below that frontier node —
/// history-dependent schedulers stay correct. With `cache: Some`,
/// memoryless choices and transitions are drawn through the shared
/// memo cache; either way the RNG stream is identical (see module docs).
pub fn try_sample_suffix<R: Rng + ?Sized>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    cache: Option<&EngineCache>,
    mut exec: Execution,
    rng: &mut R,
) -> Result<Execution, EngineError> {
    let mut id = IValue::of(exec.lstate());
    // One scope resolution per sampled execution, not per step.
    let scope = cache.map(|c| (c, c.choice_scope(sched)));
    while exec.len() < horizon {
        let cached = scope.and_then(|(c, sc)| {
            c.memoryless_choice(sc, sched, auto, exec.len(), exec.lstate(), id)
        });
        let fresh;
        let choice = match &cached {
            Some(c) => c.as_ref(),
            // Uncached, or history-dependent at this (step, state):
            // ask per execution.
            None => {
                fresh = sched.schedule(auto, &exec);
                &fresh
            }
        };
        let Some(a) = sample_subdisc(choice, rng) else {
            break;
        };
        let q2 = match cache {
            Some(c) => {
                let Some(entry) = c.successors(auto, exec.lstate(), id, a) else {
                    return Err(disabled_action(sched, a, exec.lstate()));
                };
                sample_disc(&entry.eta, rng)
            }
            None => {
                let Some(eta) = auto.transition(exec.lstate(), a) else {
                    return Err(disabled_action(sched, a, exec.lstate()));
                };
                sample_disc(&eta, rng)
            }
        };
        id = IValue::of(&q2);
        exec.push(a, q2);
    }
    Ok(exec)
}

/// Sample one execution; panics on scheduler contract violations.
pub fn sample_execution<R: Rng + ?Sized>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    rng: &mut R,
) -> Execution {
    match try_sample_execution(auto, sched, horizon, rng) {
        Ok(e) => e,
        Err(e) => panic!("{e}"),
    }
}

/// Estimate the observation distribution by `n` sequential samples.
pub fn try_sample_observations(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    n: usize,
    seed: u64,
    mut observe: impl FnMut(&Execution) -> Value,
) -> Result<Disc<Value>, EngineError> {
    if n == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "cannot estimate from zero samples".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hist: HashMap<Value, u64> = HashMap::new();
    for _ in 0..n {
        let e = try_sample_execution(auto, sched, horizon, &mut rng)?;
        *hist.entry(observe(&e)).or_insert(0) += 1;
    }
    hist_to_disc(hist, n)
}

/// Estimate the observation distribution by `n` sequential samples;
/// panics on any engine error.
pub fn sample_observations(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    n: usize,
    seed: u64,
    observe: impl FnMut(&Execution) -> Value,
) -> Disc<Value> {
    match try_sample_observations(auto, sched, horizon, n, seed, observe) {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

/// The seed for one shard's RNG: attempt 0 reproduces the historical
/// `seed + shard` streams; each retry re-mixes so a panic caused by an
/// unlucky sample path is not replayed verbatim.
fn shard_seed(seed: u64, shard: usize, attempt: u32) -> u64 {
    seed.wrapping_add(shard as u64)
        .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Estimate the observation distribution by `n` samples split into
/// `shards` shards fanned out over a caller-provided [`WorkerPool`]
/// (which may be shared with the pooled exact engine). Shard `t` is
/// seeded with `seed + t`, so the result is deterministic for a fixed
/// `(seed, shards, n)` — independently of the pool's lane count — as
/// long as no shard needed a panic retry. With `cache: Some`,
/// transitions and memoryless choices are drawn through the shared
/// memo cache ([`try_sample_execution_cached`]) without changing any
/// sampled value.
///
/// Worker panics are isolated per shard: a panicking shard is re-run
/// with a reseeded RNG up to [`MAX_SHARD_RETRIES`] times; deterministic
/// failures ([`EngineError`] values) are returned immediately.
#[allow(clippy::too_many_arguments)]
pub fn try_sample_observations_pooled_with<'env, O>(
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    horizon: usize,
    n: usize,
    seed: u64,
    shards: usize,
    cache: Option<&'env EngineCache>,
    pool: &WorkerPool<'_, 'env>,
    observe: &'env O,
) -> Result<Disc<Value>, EngineError>
where
    O: Fn(&Execution) -> Value + Sync + ?Sized,
{
    try_sample_observations_cancellable_pooled_with(
        auto, sched, horizon, n, seed, shards, cache, None, pool, observe,
    )
}

/// [`try_sample_observations_pooled_with`] with a cooperative
/// [`CancelToken`]: every shard checks the token once per sample, and a
/// cancelled run returns [`EngineError::BudgetExhausted`] with
/// `cancelled: true` (the dynamic-budget reading — the caller shrank
/// the sampling budget to zero mid-flight). Cancellation therefore
/// lands within one in-flight sample per shard.
#[allow(clippy::too_many_arguments)]
pub fn try_sample_observations_cancellable_pooled_with<'env, O>(
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    horizon: usize,
    n: usize,
    seed: u64,
    shards: usize,
    cache: Option<&'env EngineCache>,
    cancel: Option<CancelToken>,
    pool: &WorkerPool<'_, 'env>,
    observe: &'env O,
) -> Result<Disc<Value>, EngineError>
where
    O: Fn(&Execution) -> Value + Sync + ?Sized,
{
    if n == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "cannot estimate from zero samples".into(),
        });
    }
    if shards == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "need at least one worker".into(),
        });
    }
    let per = n / shards;
    let extra = n % shards;
    let mut done: Vec<Option<HashMap<Value, u64>>> = (0..shards).map(|_| None).collect();

    for attempt in 0..=MAX_SHARD_RETRIES {
        let pending: Vec<usize> = done
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(t, _)| t)
            .collect();
        if pending.is_empty() {
            break;
        }
        let cancel = cancel.clone();
        let outcomes = pool.run_batch(pending.clone(), move |_, t: usize| {
            let count = per + usize::from(t < extra);
            let mut rng = StdRng::seed_from_u64(shard_seed(seed, t, attempt));
            let mut hist: HashMap<Value, u64> = HashMap::new();
            for drawn in 0..count {
                if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                    return Err(EngineError::BudgetExhausted {
                        entries: drawn,
                        expansions: drawn,
                        deadline_hit: false,
                        cancelled: true,
                    });
                }
                let e = match cache {
                    Some(c) => try_sample_execution_cached(auto, sched, horizon, c, &mut rng)?,
                    None => try_sample_execution(auto, sched, horizon, &mut rng)?,
                };
                *hist.entry(observe(&e)).or_insert(0) += 1;
            }
            Ok::<_, EngineError>(hist)
        });
        for (t, outcome) in pending.into_iter().zip(outcomes) {
            match outcome {
                Ok(Ok(hist)) => done[t] = Some(hist),
                // A structured engine error is deterministic — retrying
                // the shard would fail identically. (Cancellation is
                // monotone, so retrying a cancelled shard is pointless
                // too.)
                Ok(Err(e)) => return Err(e),
                // The shard panicked; leave it pending for the next
                // (reseeded) attempt.
                Err(_panic_payload) => {}
            }
        }
    }

    if let Some(shard) = done.iter().position(|s| s.is_none()) {
        return Err(EngineError::WorkerPanicked {
            shard,
            retries: MAX_SHARD_RETRIES,
        });
    }

    let mut merged: HashMap<Value, u64> = HashMap::new();
    for hist in done.into_iter().flatten() {
        for (k, v) in hist {
            *merged.entry(k).or_insert(0) += v;
        }
    }
    hist_to_disc(merged, n)
}

/// The hybrid estimate produced by salvaging a checkpoint: the exact
/// part carried over verbatim, the frontier part estimated by suffix
/// sampling.
///
/// Soundness of the combination: a checkpoint partitions the
/// probability-one cone into resolved sub-cones (exact masses) and
/// frontier sub-cones (exact prefix masses summing to `frontier_mass`
/// = `F`). Sampling a frontier node proportional to its prefix mass
/// and then a suffix through the scheduler draws an execution from the
/// *conditional* distribution given the frontier, so `F · (count/n)`
/// estimates each observation's frontier contribution unbiasedly, and
/// only that `F`-sized remainder carries sampling error — the DKW
/// bound scales by `F < 1`, a strict refinement of restarting
/// Monte-Carlo from the initial state with the same `n`.
#[derive(Clone, Debug)]
pub struct SalvageOutcome {
    /// The hybrid observation distribution (exact resolved mass +
    /// estimated frontier mass, renormalized against float drift).
    pub dist: Disc<Value>,
    /// Mass resolved exactly by the tripped engine and carried over.
    pub resolved_mass: f64,
    /// Mass that had to be estimated by sampling (`1 - resolved_mass`
    /// by conservation).
    pub frontier_mass: f64,
    /// Frontier entries (cone nodes or lump classes) sampled from.
    pub frontier_nodes: usize,
    /// Suffix samples actually drawn.
    pub samples: usize,
}

/// Merge `(value, weight)` contributions in first-seen order — keeps
/// the hybrid distribution deterministic where a `HashMap` fold would
/// not be.
struct OrderedMasses {
    entries: Vec<(Value, f64)>,
    index: HashMap<Value, usize>,
}

impl OrderedMasses {
    fn new() -> OrderedMasses {
        OrderedMasses {
            entries: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn add(&mut self, v: Value, w: f64) {
        match self.index.get(&v) {
            Some(&i) => self.entries[i].1 += w,
            None => {
                self.index.insert(v.clone(), self.entries.len());
                self.entries.push((v, w));
            }
        }
    }

    /// Renormalize by the actual sum (float drift, cf. [`hist_to_disc`])
    /// and finish as a distribution.
    fn into_disc(self) -> Result<Disc<Value>, EngineError> {
        let sum: f64 = self.entries.iter().map(|(_, w)| *w).sum();
        if sum <= 0.0 {
            return Err(EngineError::InvalidMeasure {
                detail: "salvaged masses sum to zero".into(),
            });
        }
        Disc::from_entries(
            self.entries
                .into_iter()
                .filter(|(_, w)| *w > 0.0)
                .map(|(v, w)| (v, w / sum))
                .collect(),
        )
        .map_err(|e| EngineError::InvalidMeasure {
            detail: format!("salvaged masses do not normalize: {e:?}"),
        })
    }
}

/// Draw a frontier index by inverse-CDF over cumulative prefix masses
/// (`cum` is strictly increasing, last entry = total frontier mass).
fn pick_frontier<R: Rng + ?Sized>(cum: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    let target = u * cum[cum.len() - 1];
    cum.partition_point(|&c| c <= target).min(cum.len() - 1)
}

/// Salvage a [`ConeCheckpoint`] into a hybrid observation estimate:
/// resolved terminal executions contribute their exact probabilities;
/// the unresolved frontier mass is estimated by `n` suffix samples,
/// each drawn by picking a frontier node proportional to its prefix
/// mass (inverse-CDF) and continuing it through the scheduler to the
/// horizon ([`try_sample_suffix`]). Shards, seeding, panic isolation
/// and cancellation behave as in
/// [`try_sample_observations_cancellable_pooled_with`].
#[allow(clippy::too_many_arguments)]
pub fn try_salvage_observations_pooled_with<'env, O>(
    ckpt: &ConeCheckpoint<f64>,
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    n: usize,
    seed: u64,
    shards: usize,
    cache: Option<&'env EngineCache>,
    cancel: Option<CancelToken>,
    pool: &WorkerPool<'_, 'env>,
    observe: &'env O,
) -> Result<SalvageOutcome, EngineError>
where
    O: Fn(&Execution) -> Value + Sync + ?Sized,
{
    let resolved_mass = ckpt.resolved_mass();
    let frontier_mass = ckpt.frontier_mass();
    let mut masses = OrderedMasses::new();
    for (e, w) in &ckpt.resolved {
        masses.add(observe(e), *w);
    }

    if ckpt.frontier.is_empty() || frontier_mass <= 0.0 {
        // Nothing left to estimate — the "checkpoint" is already exact.
        return Ok(SalvageOutcome {
            dist: masses.into_disc()?,
            resolved_mass,
            frontier_mass: 0.0,
            frontier_nodes: 0,
            samples: 0,
        });
    }

    // Cumulative prefix masses for the inverse-CDF node pick. Shared
    // read-only across shards.
    let cum: Vec<f64> = ckpt
        .frontier
        .iter()
        .scan(0.0, |acc, (_, w)| {
            *acc += w;
            Some(*acc)
        })
        .collect();

    let horizon = ckpt.horizon;
    // Owned (Arc) copy of the frontier prefixes: the worker closures
    // must outlive the pool's environment, which the checkpoint —
    // often built inside the same pool scope — need not.
    let prefixes: std::sync::Arc<Vec<Execution>> =
        std::sync::Arc::new(ckpt.frontier.iter().map(|(e, _)| e.clone()).collect());
    let hist = sample_shard_histograms(n, seed, shards, cancel, pool, move |rng| {
        let node = pick_frontier(&cum, rng);
        let suffix = try_sample_suffix(auto, sched, horizon, cache, prefixes[node].clone(), rng)?;
        Ok(observe(&suffix))
    })?;

    let mut ordered: Vec<(Value, u64)> = hist.into_iter().collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));
    for (v, c) in ordered {
        masses.add(v, frontier_mass * (c as f64 / n as f64));
    }
    Ok(SalvageOutcome {
        dist: masses.into_disc()?,
        resolved_mass,
        frontier_mass,
        frontier_nodes: ckpt.frontier.len(),
        samples: n,
    })
}

/// Salvage a [`LumpedCheckpoint`]: resolved observation masses carry
/// over exactly; the unresolved lump classes are estimated by
/// memoryless suffix sampling — pick a class proportional to its mass,
/// then walk `(state, trace)` forward from the checkpoint's step
/// through [`Scheduler::schedule_memoryless`] choices. A scheduler
/// that declines memoryless choice mid-suffix fails the whole salvage
/// with [`EngineError::NotLumpable`] (the caller falls back to a pure
/// Monte-Carlo restart); the observation must factor through trace or
/// last state for the same reason.
#[allow(clippy::too_many_arguments)]
pub fn try_salvage_lumped_pooled_with<'env>(
    ckpt: &LumpedCheckpoint<f64>,
    auto: &'env dyn Automaton,
    sched: &'env dyn Scheduler,
    obs: &'env Observation,
    n: usize,
    seed: u64,
    shards: usize,
    cache: Option<&'env EngineCache>,
    cancel: Option<CancelToken>,
    pool: &WorkerPool<'_, 'env>,
) -> Result<SalvageOutcome, EngineError> {
    if matches!(obs, Observation::Full(_)) {
        return Err(EngineError::NotLumpable {
            reason: "observation does not factor through trace or last state".into(),
        });
    }
    let resolved_mass = ckpt.resolved_mass();
    let frontier_mass = ckpt.frontier_mass();
    let mut masses = OrderedMasses::new();
    for (v, w) in &ckpt.resolved {
        masses.add(v.clone(), *w);
    }

    if ckpt.frontier.is_empty() || frontier_mass <= 0.0 {
        return Ok(SalvageOutcome {
            dist: masses.into_disc()?,
            resolved_mass,
            frontier_mass: 0.0,
            frontier_nodes: 0,
            samples: 0,
        });
    }

    let cum: Vec<f64> = ckpt
        .frontier
        .iter()
        .scan(0.0, |acc, c| {
            *acc += c.weight;
            Some(*acc)
        })
        .collect();

    let track_trace = matches!(obs, Observation::Trace);
    let observe_class = move |state: &Value, trace: &[dpioa_core::Action]| -> Value {
        match obs {
            Observation::LastState(g) => g(state),
            Observation::Trace => Value::list(
                trace
                    .iter()
                    .map(|a| Value::str(a.name()))
                    .collect::<Vec<_>>(),
            ),
            Observation::Full(_) => unreachable!("rejected above"),
        }
    };

    let horizon = ckpt.horizon;
    let start_step = ckpt.step;
    // Owned copy for the worker closures, as in the cone salvage.
    let classes: std::sync::Arc<Vec<crate::checkpoint::LumpedClass<f64>>> =
        std::sync::Arc::new(ckpt.frontier.clone());
    // One scope resolution for the whole salvage (describe() may
    // allocate); the Copy pair rides into every shard closure.
    let scope = cache.map(|c| (c, c.choice_scope(sched)));
    let hist = sample_shard_histograms(n, seed, shards, cancel, pool, move |rng| {
        let class = &classes[pick_frontier(&cum, rng)];
        let mut state = class.state.clone();
        let mut id = IValue::of(&state);
        let mut trace = class.trace.clone();
        for step in start_step..horizon {
            let cached =
                scope.and_then(|(c, sc)| c.memoryless_choice(sc, sched, auto, step, &state, id));
            let fresh;
            let choice = match &cached {
                Some(c) => c.as_ref(),
                None => match sched.schedule_memoryless(auto, step, &state) {
                    Some(ch) => {
                        fresh = ch;
                        &fresh
                    }
                    None => {
                        return Err(EngineError::NotLumpable {
                            reason: format!(
                                "scheduler {} is not memoryless at step {step}",
                                sched.describe()
                            ),
                        })
                    }
                },
            };
            let Some(a) = sample_subdisc(choice, rng) else {
                break;
            };
            let external = track_trace && auto.signature(&state).is_external(a);
            let q2 = match cache {
                Some(c) => {
                    let Some(entry) = c.successors(auto, &state, id, a) else {
                        return Err(disabled_action(sched, a, &state));
                    };
                    sample_disc(&entry.eta, rng)
                }
                None => {
                    let Some(eta) = auto.transition(&state, a) else {
                        return Err(disabled_action(sched, a, &state));
                    };
                    sample_disc(&eta, rng)
                }
            };
            if external {
                trace.push(a);
            }
            id = IValue::of(&q2);
            state = q2;
        }
        Ok(observe_class(&state, &trace))
    })?;

    let mut ordered: Vec<(Value, u64)> = hist.into_iter().collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));
    for (v, c) in ordered {
        masses.add(v, frontier_mass * (c as f64 / n as f64));
    }
    Ok(SalvageOutcome {
        dist: masses.into_disc()?,
        resolved_mass,
        frontier_mass,
        frontier_nodes: ckpt.frontier.len(),
        samples: n,
    })
}

/// The shared shard harness behind the salvage samplers: split `n`
/// draws of `draw` into `shards` deterministic shards on `pool`, with
/// per-sample cancellation checks and per-shard panic retries exactly
/// as in [`try_sample_observations_cancellable_pooled_with`], and merge
/// the per-shard histograms in shard order.
fn sample_shard_histograms<'env, F>(
    n: usize,
    seed: u64,
    shards: usize,
    cancel: Option<CancelToken>,
    pool: &WorkerPool<'_, 'env>,
    draw: F,
) -> Result<HashMap<Value, u64>, EngineError>
where
    F: Fn(&mut StdRng) -> Result<Value, EngineError> + Send + Sync + Clone + 'env,
{
    if n == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "cannot estimate from zero samples".into(),
        });
    }
    if shards == 0 {
        return Err(EngineError::InvalidSampling {
            reason: "need at least one worker".into(),
        });
    }
    let per = n / shards;
    let extra = n % shards;
    let mut done: Vec<Option<HashMap<Value, u64>>> = (0..shards).map(|_| None).collect();

    for attempt in 0..=MAX_SHARD_RETRIES {
        let pending: Vec<usize> = done
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(t, _)| t)
            .collect();
        if pending.is_empty() {
            break;
        }
        let cancel = cancel.clone();
        let draw = draw.clone();
        let outcomes = pool.run_batch(pending.clone(), move |_, t: usize| {
            let count = per + usize::from(t < extra);
            let mut rng = StdRng::seed_from_u64(shard_seed(seed, t, attempt));
            let mut hist: HashMap<Value, u64> = HashMap::new();
            for drawn in 0..count {
                if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                    return Err(EngineError::BudgetExhausted {
                        entries: drawn,
                        expansions: drawn,
                        deadline_hit: false,
                        cancelled: true,
                    });
                }
                *hist.entry(draw(&mut rng)?).or_insert(0) += 1;
            }
            Ok::<_, EngineError>(hist)
        });
        for (t, outcome) in pending.into_iter().zip(outcomes) {
            match outcome {
                Ok(Ok(hist)) => done[t] = Some(hist),
                Ok(Err(e)) => return Err(e),
                Err(_panic_payload) => {}
            }
        }
    }

    if let Some(shard) = done.iter().position(|s| s.is_none()) {
        return Err(EngineError::WorkerPanicked {
            shard,
            retries: MAX_SHARD_RETRIES,
        });
    }

    let mut merged: HashMap<Value, u64> = HashMap::new();
    for hist in done.into_iter().flatten() {
        for (k, v) in hist {
            *merged.entry(k).or_insert(0) += v;
        }
    }
    Ok(merged)
}

/// Estimate the observation distribution by `n` samples fanned out over
/// `threads` workers. Worker `i` is seeded with `seed + i`, so the result
/// is deterministic for a fixed `(seed, threads, n)` (as long as no shard
/// needed a panic retry).
///
/// Kept as the compatibility entry point; now a thin wrapper over
/// [`try_sample_observations_pooled_with`] on a self-provisioned pool
/// whose workers spawn lazily on the first shard batch.
pub fn try_sample_observations_parallel(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    n: usize,
    seed: u64,
    threads: usize,
    observe: impl Fn(&Execution) -> Value + Sync,
) -> Result<Disc<Value>, EngineError> {
    with_pool(threads, |pool| {
        try_sample_observations_pooled_with(
            auto, sched, horizon, n, seed, threads, None, pool, &observe,
        )
    })
}

/// Estimate the observation distribution in parallel; panics on any
/// engine error (including a shard that exhausted its panic retries).
pub fn sample_observations_parallel(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    n: usize,
    seed: u64,
    threads: usize,
    observe: impl Fn(&Execution) -> Value + Sync,
) -> Disc<Value> {
    match try_sample_observations_parallel(auto, sched, horizon, n, seed, threads, observe) {
        Ok(d) => d,
        Err(e) => panic!("{e}"),
    }
}

/// Turn a sample histogram into a distribution. The naive frequencies
/// `c / n` need not sum to exactly 1.0 in floating point when `n` is not
/// a power of two, so the frequencies are renormalized by their actual
/// sum instead of leaning on `Disc::from_entries`' tolerance.
fn hist_to_disc(hist: HashMap<Value, u64>, n: usize) -> Result<Disc<Value>, EngineError> {
    let total: u64 = hist.values().sum();
    if total as usize != n {
        return Err(EngineError::InvalidSampling {
            reason: format!("histogram holds {total} samples, expected {n}"),
        });
    }
    let raw: Vec<(Value, f64)> = hist
        .into_iter()
        .map(|(v, c)| (v, c as f64 / total as f64))
        .collect();
    let sum: f64 = raw.iter().map(|(_, w)| *w).sum();
    Disc::from_entries(raw.into_iter().map(|(v, w)| (v, w / sum)).collect()).map_err(|e| {
        EngineError::InvalidMeasure {
            detail: format!("sample histogram does not normalize: {e:?}"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::observation_dist;
    use crate::scheduler::FirstEnabled;
    use dpioa_core::{Action, ExplicitAutomaton, Signature};
    use dpioa_prob::tv_distance;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn coin() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("s-coin", Value::int(0))
            .state(0, Signature::new([], [], [act("s-flip")]))
            .state(1, Signature::new([], [], []))
            .state(2, Signature::new([], [], []))
            .transition(
                0,
                act("s-flip"),
                Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 2),
            )
            .build()
    }

    #[test]
    fn single_sample_respects_horizon() {
        let auto = coin();
        let mut rng = StdRng::seed_from_u64(1);
        let e = sample_execution(&auto, &FirstEnabled, 0, &mut rng);
        assert_eq!(e.len(), 0);
        let e = sample_execution(&auto, &FirstEnabled, 5, &mut rng);
        assert_eq!(e.len(), 1); // sink after one flip
    }

    #[test]
    fn sequential_sampler_converges_to_exact() {
        let auto = coin();
        let exact = observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        let est = sample_observations(&auto, &FirstEnabled, 1, 50_000, 7, |e| e.lstate().clone());
        assert!(tv_distance(&exact, &est) < 0.01);
    }

    #[test]
    fn parallel_sampler_matches_exact() {
        let auto = coin();
        let exact = observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        let est = sample_observations_parallel(&auto, &FirstEnabled, 1, 50_000, 7, 4, |e| {
            e.lstate().clone()
        });
        assert!(tv_distance(&exact, &est) < 0.01);
    }

    #[test]
    fn parallel_sampler_is_deterministic_for_fixed_seed() {
        let auto = coin();
        let a = sample_observations_parallel(&auto, &FirstEnabled, 1, 10_000, 3, 4, |e| {
            e.lstate().clone()
        });
        let b = sample_observations_parallel(&auto, &FirstEnabled, 1, 10_000, 3, 4, |e| {
            e.lstate().clone()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn uneven_split_counts_all_samples() {
        let auto = coin();
        // n not divisible by threads must still produce a full measure.
        let d = sample_observations_parallel(&auto, &FirstEnabled, 1, 10_001, 3, 4, |e| {
            e.lstate().clone()
        });
        let total: f64 = d.iter().map(|(_, w)| *w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_power_of_two_sample_counts_normalize_exactly() {
        let auto = coin();
        // 3 and 7 divide into non-dyadic frequencies; the renormalized
        // histogram must sum to exactly 1.0.
        for n in [3usize, 7, 997, 10_001] {
            let d = sample_observations(&auto, &FirstEnabled, 1, n, 11, |e| e.lstate().clone());
            let total: f64 = d.iter().map(|(_, w)| *w).sum();
            assert_eq!(total, 1.0, "n = {n}");
        }
    }

    #[test]
    fn zero_samples_is_a_structured_error() {
        let auto = coin();
        let err = try_sample_observations(&auto, &FirstEnabled, 1, 0, 1, |e| e.lstate().clone())
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidSampling { .. }));
        let err = try_sample_observations_parallel(&auto, &FirstEnabled, 1, 100, 1, 0, |e| {
            e.lstate().clone()
        })
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidSampling { .. }));
    }

    /// A scheduler that violates Def. 3.1 by choosing a disabled action.
    struct Rogue;
    impl Scheduler for Rogue {
        fn schedule(
            &self,
            _auto: &dyn Automaton,
            _exec: &Execution,
        ) -> dpioa_prob::SubDisc<Action> {
            dpioa_prob::SubDisc::dirac(act("s-rogue"))
        }
        fn describe(&self) -> String {
            "rogue".into()
        }
    }

    #[test]
    fn disabled_action_propagates_from_workers() {
        let auto = coin();
        let err =
            try_sample_observations_parallel(&auto, &Rogue, 3, 1_000, 1, 4, |e| e.lstate().clone())
                .unwrap_err();
        assert!(matches!(err, EngineError::DisabledAction { .. }));
    }

    #[test]
    fn transient_worker_panic_is_retried_and_recovered() {
        let auto = coin();
        let tripped = AtomicBool::new(false);
        // The first observation ever panics; every later one succeeds.
        // The panicking shard must be re-run (reseeded) and the call
        // still deliver a full, normalized estimate.
        let d = try_sample_observations_parallel(&auto, &FirstEnabled, 1, 4_000, 5, 2, |e| {
            if !tripped.swap(true, Ordering::SeqCst) {
                panic!("transient fault injected by test");
            }
            e.lstate().clone()
        })
        .unwrap();
        let total: f64 = d.iter().map(|(_, w)| *w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn persistent_worker_panic_exhausts_retries() {
        let auto = coin();
        let calls = AtomicU32::new(0);
        let err = try_sample_observations_parallel(&auto, &FirstEnabled, 1, 400, 5, 2, |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            panic!("permanent fault injected by test");
        })
        .unwrap_err();
        match err {
            EngineError::WorkerPanicked { retries, .. } => {
                assert_eq!(retries, MAX_SHARD_RETRIES);
            }
            other => panic!("expected worker-panic error, got {other}"),
        }
        // Both shards were attempted on every round.
        assert_eq!(calls.load(Ordering::SeqCst), 2 * (MAX_SHARD_RETRIES + 1));
    }
}
