//! Monte-Carlo estimation of `ε_σ` and of observation distributions.
//!
//! The exact cone expansion of [`crate::measure`] is exponential in the
//! horizon; the sampler trades exactness for scalability. The parallel
//! variant fans out over `crossbeam::scope` with one deterministically
//! seeded RNG per worker and per-thread histograms merged at join — no
//! shared mutable state inside the hot loop.

use crate::scheduler::Scheduler;
use dpioa_core::{Automaton, Execution, Value};
use dpioa_prob::sample::{sample_disc, sample_subdisc};
use dpioa_prob::Disc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Sample one execution of `auto` under `sched`, stopping on halt, on a
/// disabled universe, or at `horizon` steps.
pub fn sample_execution<R: Rng + ?Sized>(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    rng: &mut R,
) -> Execution {
    let mut exec = Execution::start_of(auto);
    while exec.len() < horizon {
        let choice = sched.schedule(auto, &exec);
        let Some(a) = sample_subdisc(&choice, rng) else {
            break;
        };
        let eta = auto.transition(exec.lstate(), a).unwrap_or_else(|| {
            panic!(
                "scheduler {} chose disabled action {a} at {}",
                sched.describe(),
                exec.lstate()
            )
        });
        let q2 = sample_disc(&eta, rng);
        exec.push(a, q2);
    }
    exec
}

/// Estimate the observation distribution by `n` sequential samples.
pub fn sample_observations(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    n: usize,
    seed: u64,
    mut observe: impl FnMut(&Execution) -> Value,
) -> Disc<Value> {
    assert!(n > 0, "cannot estimate from zero samples");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hist: HashMap<Value, u64> = HashMap::new();
    for _ in 0..n {
        let e = sample_execution(auto, sched, horizon, &mut rng);
        *hist.entry(observe(&e)).or_insert(0) += 1;
    }
    hist_to_disc(hist, n)
}

/// Estimate the observation distribution by `n` samples fanned out over
/// `threads` workers. Worker `i` is seeded with `seed + i`, so the result
/// is deterministic for a fixed `(seed, threads, n)`.
pub fn sample_observations_parallel(
    auto: &dyn Automaton,
    sched: &dyn Scheduler,
    horizon: usize,
    n: usize,
    seed: u64,
    threads: usize,
    observe: impl Fn(&Execution) -> Value + Sync,
) -> Disc<Value> {
    assert!(n > 0, "cannot estimate from zero samples");
    assert!(threads > 0, "need at least one worker");
    let per = n / threads;
    let extra = n % threads;
    let mut partials: Vec<HashMap<Value, u64>> = Vec::with_capacity(threads);

    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let count = per + usize::from(t < extra);
            let observe = &observe;
            handles.push(scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
                let mut hist: HashMap<Value, u64> = HashMap::new();
                for _ in 0..count {
                    let e = sample_execution(auto, sched, horizon, &mut rng);
                    *hist.entry(observe(&e)).or_insert(0) += 1;
                }
                hist
            }));
        }
        for h in handles {
            partials.push(h.join().expect("sampler worker panicked"));
        }
    })
    .expect("crossbeam scope failed");

    let mut merged: HashMap<Value, u64> = HashMap::new();
    for p in partials {
        for (k, v) in p {
            *merged.entry(k).or_insert(0) += v;
        }
    }
    hist_to_disc(merged, n)
}

fn hist_to_disc(hist: HashMap<Value, u64>, n: usize) -> Disc<Value> {
    Disc::from_entries(
        hist.into_iter()
            .map(|(v, c)| (v, c as f64 / n as f64))
            .collect(),
    )
    .expect("histogram frequencies sum to one")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::observation_dist;
    use crate::scheduler::FirstEnabled;
    use dpioa_core::{Action, ExplicitAutomaton, Signature};
    use dpioa_prob::tv_distance;

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn coin() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("s-coin", Value::int(0))
            .state(0, Signature::new([], [], [act("s-flip")]))
            .state(1, Signature::new([], [], []))
            .state(2, Signature::new([], [], []))
            .transition(
                0,
                act("s-flip"),
                Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 2),
            )
            .build()
    }

    #[test]
    fn single_sample_respects_horizon() {
        let auto = coin();
        let mut rng = StdRng::seed_from_u64(1);
        let e = sample_execution(&auto, &FirstEnabled, 0, &mut rng);
        assert_eq!(e.len(), 0);
        let e = sample_execution(&auto, &FirstEnabled, 5, &mut rng);
        assert_eq!(e.len(), 1); // sink after one flip
    }

    #[test]
    fn sequential_sampler_converges_to_exact() {
        let auto = coin();
        let exact = observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        let est = sample_observations(&auto, &FirstEnabled, 1, 50_000, 7, |e| e.lstate().clone());
        assert!(tv_distance(&exact, &est) < 0.01);
    }

    #[test]
    fn parallel_sampler_matches_exact() {
        let auto = coin();
        let exact = observation_dist(&auto, &FirstEnabled, 1, |e| e.lstate().clone());
        let est = sample_observations_parallel(&auto, &FirstEnabled, 1, 50_000, 7, 4, |e| {
            e.lstate().clone()
        });
        assert!(tv_distance(&exact, &est) < 0.01);
    }

    #[test]
    fn parallel_sampler_is_deterministic_for_fixed_seed() {
        let auto = coin();
        let a = sample_observations_parallel(&auto, &FirstEnabled, 1, 10_000, 3, 4, |e| {
            e.lstate().clone()
        });
        let b = sample_observations_parallel(&auto, &FirstEnabled, 1, 10_000, 3, 4, |e| {
            e.lstate().clone()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn uneven_split_counts_all_samples() {
        let auto = coin();
        // n not divisible by threads must still produce a full measure.
        let d = sample_observations_parallel(&auto, &FirstEnabled, 1, 10_001, 3, 4, |e| {
            e.lstate().clone()
        });
        let total: f64 = d.iter().map(|(_, w)| *w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
