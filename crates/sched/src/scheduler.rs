//! Schedulers (paper Def. 3.1).
//!
//! A scheduler of a PSIOA `A` is a function `σ : Frags*(A) →
//! SubDisc(dtrans(A))` whose chosen transitions start at `lstate(α)`.
//! Because `η_{(A,q,a)}` is unique per `(q, a)`, a choice of transition is
//! exactly a choice of *action*, so the trait returns `SubDisc<Action>`
//! over the actions enabled at `lstate(α)` — the start-state side
//! condition holds by construction.

use dpioa_core::{Action, Automaton, AutomatonExt, Execution, Value};
use dpioa_prob::{Disc, SubDisc};
use std::sync::Arc;

/// A scheduler for a PSIOA (Def. 3.1). The returned sub-measure must be
/// supported on actions enabled at `lstate(exec)`; the engines
/// double-check this in debug builds.
pub trait Scheduler: Send + Sync {
    /// `σ(α)`: the (sub-)probabilistic choice of the next action.
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action>;

    /// The *memoryless* restriction of `σ`, when one exists.
    ///
    /// Returning `Some(choice)` asserts that for **every** fragment `α`
    /// with `|α| = step` and `lstate(α) = lstate`,
    /// `σ(α) = choice` — i.e. `σ` factors through `(|α|, lstate(α))`.
    /// This is the eligibility condition of the state-lumped exact
    /// engine ([`crate::lumped`]): it licenses folding the exponential
    /// cone tree into a per-step `(state → weight)` forward pass.
    ///
    /// The default is `None` (assume history-dependent). Implementors
    /// must only override when the factoring holds *exactly*; the
    /// property tests in `tests/` cross-check lumped against general
    /// expansion.
    fn schedule_memoryless(
        &self,
        auto: &dyn Automaton,
        step: usize,
        lstate: &Value,
    ) -> Option<SubDisc<Action>> {
        let _ = (auto, step, lstate);
        None
    }

    /// A short display name for reports.
    fn describe(&self) -> String {
        "scheduler".into()
    }
}

impl Scheduler for Arc<dyn Scheduler> {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        (**self).schedule(auto, exec)
    }
    fn schedule_memoryless(
        &self,
        auto: &dyn Automaton,
        step: usize,
        lstate: &Value,
    ) -> Option<SubDisc<Action>> {
        (**self).schedule_memoryless(auto, step, lstate)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// The scheduler that always picks the least *locally controlled*
/// action (by the deterministic action order) and never halts while one
/// is enabled. The simplest "demonic resolution" used in smoke tests.
///
/// Schedulers in this workspace choose among `out ∪ int` actions only —
/// the task-PIOA convention: inputs fire through synchronization with an
/// output, never spontaneously.
#[derive(Clone, Copy, Default)]
pub struct FirstEnabled;

impl FirstEnabled {
    fn at_state(auto: &dyn Automaton, lstate: &Value) -> SubDisc<Action> {
        match auto.locally_controlled(lstate).first() {
            Some(&a) => SubDisc::dirac(a),
            None => SubDisc::halt(),
        }
    }
}

impl Scheduler for FirstEnabled {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        FirstEnabled::at_state(auto, exec.lstate())
    }
    fn schedule_memoryless(
        &self,
        auto: &dyn Automaton,
        _step: usize,
        lstate: &Value,
    ) -> Option<SubDisc<Action>> {
        Some(FirstEnabled::at_state(auto, lstate))
    }
    fn describe(&self) -> String {
        "first-enabled".into()
    }
}

/// A deterministic scheduler defined by a policy closure; returning
/// `None` halts.
pub struct DeterministicScheduler {
    name: String,
    #[allow(clippy::type_complexity)]
    policy: Box<dyn Fn(&Execution, &[Action]) -> Option<Action> + Send + Sync>,
}

impl DeterministicScheduler {
    /// Build from a policy `(α, enabled) ↦ action`.
    pub fn new(
        name: impl Into<String>,
        policy: impl Fn(&Execution, &[Action]) -> Option<Action> + Send + Sync + 'static,
    ) -> DeterministicScheduler {
        DeterministicScheduler {
            name: name.into(),
            policy: Box::new(policy),
        }
    }
}

impl Scheduler for DeterministicScheduler {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        let enabled = auto.locally_controlled(exec.lstate());
        match (self.policy)(exec, &enabled) {
            Some(a) if enabled.contains(&a) => SubDisc::dirac(a),
            _ => SubDisc::halt(),
        }
    }
    fn describe(&self) -> String {
        self.name.clone()
    }
}

/// The uniformly random scheduler: picks among the locally controlled
/// actions with equal probability, halting only when none is enabled.
/// (Weights are
/// `1/n`, not necessarily dyadic — exact-rational certification uses
/// scripted or deterministic schedulers instead.)
#[derive(Clone, Copy, Default)]
pub struct RandomScheduler;

impl RandomScheduler {
    fn at_state(auto: &dyn Automaton, lstate: &Value) -> SubDisc<Action> {
        let enabled = auto.locally_controlled(lstate);
        if enabled.is_empty() {
            return SubDisc::halt();
        }
        let w = 1.0 / enabled.len() as f64;
        SubDisc::from_entries(enabled.into_iter().map(|a| (a, w)).collect())
            .expect("uniform weights are a valid sub-measure")
    }
}

impl Scheduler for RandomScheduler {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        RandomScheduler::at_state(auto, exec.lstate())
    }
    fn schedule_memoryless(
        &self,
        auto: &dyn Automaton,
        _step: usize,
        lstate: &Value,
    ) -> Option<SubDisc<Action>> {
        Some(RandomScheduler::at_state(auto, lstate))
    }
    fn describe(&self) -> String {
        "uniform-random".into()
    }
}

/// An *off-line* (fully oblivious) schedule: a fixed action sequence
/// decided in advance, the dynamic analogue of the task-schedules of
/// Canetti et al. that §4.4 generalizes. At step `i` the scheduler orders
/// `script[i]` if it is locally controlled at the current state and halts
/// otherwise (or when the script is exhausted).
#[derive(Clone)]
pub struct ScriptedScheduler {
    script: Arc<[Action]>,
}

impl ScriptedScheduler {
    /// Build from an action sequence.
    pub fn new(script: impl Into<Vec<Action>>) -> ScriptedScheduler {
        ScriptedScheduler {
            script: Arc::from(script.into().into_boxed_slice()),
        }
    }

    /// The scripted actions.
    pub fn script(&self) -> &[Action] {
        &self.script
    }
}

impl ScriptedScheduler {
    /// The script is a function of the step index and the signature at
    /// the current state only — the canonical memoryless scheduler.
    fn at_step(&self, auto: &dyn Automaton, step: usize, lstate: &Value) -> SubDisc<Action> {
        let sig = auto.signature(lstate);
        match self.script.get(step) {
            Some(&a) if sig.output.contains(&a) || sig.internal.contains(&a) => SubDisc::dirac(a),
            _ => SubDisc::halt(),
        }
    }
}

impl Scheduler for ScriptedScheduler {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        self.at_step(auto, exec.len(), exec.lstate())
    }
    fn schedule_memoryless(
        &self,
        auto: &dyn Automaton,
        step: usize,
        lstate: &Value,
    ) -> Option<SubDisc<Action>> {
        Some(self.at_step(auto, step, lstate))
    }
    fn describe(&self) -> String {
        format!(
            "script[{}]",
            self.script
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join(" ")
        )
    }
}

/// A *trace-oblivious* scheduler: its choice is a function of the actions
/// taken so far and the currently enabled set only — never of the states.
///
/// This realizes the schema the paper needs in §4.4: such a scheduler is
/// *oblivious* (it cannot read internal state) and *creation-oblivious*
/// (its decisions cannot depend on the internal history of dynamically
/// created sub-automata, because it never sees states at all) — the
/// property [7] shows necessary for implementation to be monotonic w.r.t.
/// PSIOA creation.
pub struct TraceOblivious {
    name: String,
    #[allow(clippy::type_complexity)]
    policy: Box<dyn Fn(&[Action], &[Action]) -> SubDisc<Action> + Send + Sync>,
}

impl TraceOblivious {
    /// Build from a policy `(past actions, enabled) ↦ sub-choice`.
    pub fn new(
        name: impl Into<String>,
        policy: impl Fn(&[Action], &[Action]) -> SubDisc<Action> + Send + Sync + 'static,
    ) -> TraceOblivious {
        TraceOblivious {
            name: name.into(),
            policy: Box::new(policy),
        }
    }

    /// The trace-oblivious analogue of [`FirstEnabled`].
    pub fn first_enabled() -> TraceOblivious {
        TraceOblivious::new("oblivious-first", |_, enabled| match enabled.first() {
            Some(&a) => SubDisc::dirac(a),
            None => SubDisc::halt(),
        })
    }
}

impl Scheduler for TraceOblivious {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        let enabled = auto.locally_controlled(exec.lstate());
        let choice = (self.policy)(&exec.actions(), &enabled);
        debug_assert!(
            choice.support().all(|a| enabled.contains(a)),
            "trace-oblivious policy chose a disabled action"
        );
        choice
    }
    fn describe(&self) -> String {
        self.name.clone()
    }
}

/// A deterministic *priority* scheduler: at every step it triggers the
/// enabled locally-controlled action that appears earliest in a fixed
/// total order over action names; when none of the listed actions is
/// enabled it falls back to the least enabled action in the canonical
/// order (so the order list only needs to cover the *contended*
/// actions). State-oblivious (the order is fixed in advance), so it
/// belongs to the oblivious / creation-oblivious schema of §4.4 while
/// still driving protocols through complete runs — the workhorse of the
/// emulation experiments.
#[derive(Clone)]
pub struct PriorityScheduler {
    order: Arc<[Action]>,
}

impl PriorityScheduler {
    /// Build from a priority list (earlier = higher priority). Enabled
    /// actions outside the list rank below every listed action, ordered
    /// canonically among themselves.
    pub fn new(order: impl Into<Vec<Action>>) -> PriorityScheduler {
        PriorityScheduler {
            order: Arc::from(order.into().into_boxed_slice()),
        }
    }

    /// The priority order.
    pub fn order(&self) -> &[Action] {
        &self.order
    }
}

impl PriorityScheduler {
    fn at_state(&self, auto: &dyn Automaton, lstate: &Value) -> SubDisc<Action> {
        let enabled = auto.locally_controlled(lstate);
        match self.order.iter().find(|a| enabled.contains(a)) {
            Some(&a) => SubDisc::dirac(a),
            None => match enabled.first() {
                Some(&a) => SubDisc::dirac(a),
                None => SubDisc::halt(),
            },
        }
    }
}

impl Scheduler for PriorityScheduler {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        self.at_state(auto, exec.lstate())
    }
    fn schedule_memoryless(
        &self,
        auto: &dyn Automaton,
        _step: usize,
        lstate: &Value,
    ) -> Option<SubDisc<Action>> {
        Some(self.at_state(auto, lstate))
    }
    fn describe(&self) -> String {
        format!(
            "priority[{}]",
            self.order
                .iter()
                .take(4)
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join(">")
        )
    }
}

/// A probabilistic mixture of a scheduler's choice with halting: with
/// probability `num/2^log_denom` follow `inner`, otherwise halt. Used by
/// tests to exercise sub-probability semantics.
pub struct HaltingMix<S> {
    inner: S,
    num: u64,
    log_denom: u32,
}

impl<S: Scheduler> HaltingMix<S> {
    /// Follow `inner` with dyadic probability `num/2^log_denom`.
    pub fn new(inner: S, num: u64, log_denom: u32) -> HaltingMix<S> {
        assert!(num <= 1 << log_denom);
        HaltingMix {
            inner,
            num,
            log_denom,
        }
    }
}

impl<S> HaltingMix<S> {
    fn scale(&self, base: SubDisc<Action>) -> SubDisc<Action> {
        let p = f64::from_dyadic(self.num, self.log_denom);
        SubDisc::from_entries(base.iter().map(|(a, w)| (*a, w * p)).collect())
            .expect("scaling a sub-measure by p ≤ 1 keeps mass ≤ 1")
    }
}

impl<S: Scheduler> Scheduler for HaltingMix<S> {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        self.scale(self.inner.schedule(auto, exec))
    }
    fn schedule_memoryless(
        &self,
        auto: &dyn Automaton,
        step: usize,
        lstate: &Value,
    ) -> Option<SubDisc<Action>> {
        self.inner
            .schedule_memoryless(auto, step, lstate)
            .map(|base| self.scale(base))
    }
    fn describe(&self) -> String {
        format!(
            "halting-mix({}, {}/{})",
            self.inner.describe(),
            self.num,
            1u64 << self.log_denom
        )
    }
}

use dpioa_prob::Weight;

/// Convenience: a full probability choice among given actions.
pub fn choose_uniform(actions: &[Action]) -> SubDisc<Action> {
    if actions.is_empty() {
        return SubDisc::halt();
    }
    let w = 1.0 / actions.len() as f64;
    SubDisc::from_entries(actions.iter().map(|&a| (a, w)).collect())
        .expect("uniform weights are a valid sub-measure")
}

/// Convenience: lift a `Disc<Action>` into a scheduler choice.
pub fn choice_from_disc(d: Disc<Action>) -> SubDisc<Action> {
    SubDisc::from_disc(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{ExplicitAutomaton, Signature, Value};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn two_choice() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("two", Value::int(0))
            .state(0, Signature::new([], [act("sch-a"), act("sch-b")], []))
            .state(1, Signature::new([], [], []))
            .step(0, act("sch-a"), 1)
            .step(0, act("sch-b"), 1)
            .build()
    }

    #[test]
    fn first_enabled_picks_least_action() {
        let auto = two_choice();
        let exec = Execution::start_of(&auto);
        let choice = FirstEnabled.schedule(&auto, &exec);
        assert_eq!(choice.mass(), 1.0);
        // The least action in the deterministic order.
        let expected = *auto.enabled(&Value::int(0)).first().unwrap();
        assert_eq!(choice.prob(&expected), 1.0);
    }

    #[test]
    fn first_enabled_halts_in_sink() {
        let auto = two_choice();
        let exec = Execution::from_state(Value::int(1));
        assert!(FirstEnabled.schedule(&auto, &exec).is_halt());
    }

    #[test]
    fn deterministic_scheduler_rejects_disabled_choice() {
        let auto = two_choice();
        let exec = Execution::start_of(&auto);
        let s = DeterministicScheduler::new("pick-ghost", |_, _| Some(Action::named("ghost")));
        assert!(s.schedule(&auto, &exec).is_halt());
    }

    #[test]
    fn random_scheduler_uniform() {
        let auto = two_choice();
        let exec = Execution::start_of(&auto);
        let choice = RandomScheduler.schedule(&auto, &exec);
        assert_eq!(choice.prob(&act("sch-a")), 0.5);
        assert_eq!(choice.prob(&act("sch-b")), 0.5);
    }

    #[test]
    fn scripted_scheduler_follows_script_then_halts() {
        let auto = two_choice();
        let s = ScriptedScheduler::new(vec![act("sch-b")]);
        let e0 = Execution::start_of(&auto);
        assert_eq!(s.schedule(&auto, &e0).prob(&act("sch-b")), 1.0);
        let e1 = e0.extend(act("sch-b"), Value::int(1));
        assert!(s.schedule(&auto, &e1).is_halt());
    }

    #[test]
    fn scripted_scheduler_halts_on_disabled_action() {
        let auto = two_choice();
        let s = ScriptedScheduler::new(vec![act("never-enabled")]);
        assert!(s.schedule(&auto, &Execution::start_of(&auto)).is_halt());
    }

    #[test]
    fn trace_oblivious_sees_only_actions() {
        let auto = two_choice();
        // Alternate based on history length parity.
        let s = TraceOblivious::new("alt", |past, enabled| {
            if enabled.is_empty() {
                SubDisc::halt()
            } else if past.len() % 2 == 0 {
                SubDisc::dirac(enabled[0])
            } else {
                SubDisc::dirac(*enabled.last().unwrap())
            }
        });
        let e0 = Execution::start_of(&auto);
        assert_eq!(s.schedule(&auto, &e0).mass(), 1.0);
    }

    #[test]
    fn halting_mix_scales_mass() {
        let auto = two_choice();
        let s = HaltingMix::new(FirstEnabled, 1, 2); // follow with prob 1/4
        let choice = s.schedule(&auto, &Execution::start_of(&auto));
        assert_eq!(choice.mass(), 0.25);
        assert_eq!(choice.halt_prob(), 0.75);
    }

    #[test]
    fn describe_strings() {
        assert_eq!(FirstEnabled.describe(), "first-enabled");
        assert!(ScriptedScheduler::new(vec![act("sch-a")])
            .describe()
            .contains("sch-a"));
    }
}
