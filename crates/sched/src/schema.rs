//! Scheduler schemas (paper Def. 3.2).
//!
//! A scheduler schema maps any PSIOA or PCA to a subset of its
//! schedulers. The implementation relation (Def. 4.12) quantifies over a
//! schema, so the search engines need schemas that can *enumerate* their
//! members for finite systems: a [`SchedulerSchema`] carries a generator.
//!
//! The workhorse enumerable schema is the scripted ("off-line") schema —
//! all action scripts of bounded length over a finite action universe —
//! which is oblivious and creation-oblivious by construction (§4.4).

use crate::scheduler::{Scheduler, ScriptedScheduler};
use dpioa_core::explore::{reachable, ExploreLimits};
use dpioa_core::{Action, Automaton};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A named scheduler schema with an enumerator for finite search.
pub struct SchedulerSchema {
    name: String,
    #[allow(clippy::type_complexity)]
    generate: Box<dyn Fn(&dyn Automaton) -> Vec<Arc<dyn Scheduler>> + Send + Sync>,
}

impl SchedulerSchema {
    /// Build a schema from a name and a generator.
    pub fn new(
        name: impl Into<String>,
        generate: impl Fn(&dyn Automaton) -> Vec<Arc<dyn Scheduler>> + Send + Sync + 'static,
    ) -> SchedulerSchema {
        SchedulerSchema {
            name: name.into(),
            generate: Box::new(generate),
        }
    }

    /// The schema's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `Sch(W)`: the schedulers this schema assigns to the automaton.
    pub fn members(&self, auto: &dyn Automaton) -> Vec<Arc<dyn Scheduler>> {
        (self.generate)(auto)
    }

    /// The scripted (off-line, oblivious, creation-oblivious) schema: all
    /// scripts up to `max_len` over the actions observed on the reachable
    /// prefix of the automaton. Enumeration size is `|acts|^len` summed
    /// over lengths — keep `max_len` small.
    pub fn scripted(max_len: usize) -> SchedulerSchema {
        SchedulerSchema::new(format!("scripted≤{max_len}"), move |auto| {
            let universe = action_universe(auto);
            enumerate_scripts(&universe, max_len)
                .into_iter()
                .map(|s| Arc::new(s) as Arc<dyn Scheduler>)
                .collect()
        })
    }

    /// The *exhaustive* priority schema over a contended subset: every
    /// permutation of `subset` (≤ 7 actions) is placed at the top of the
    /// priority order, followed by the rest of the universe in canonical
    /// order. If `subset` contains every action that can ever be
    /// co-enabled with a behaviorally distinct alternative, this schema
    /// is *complete* for priority scheduling: each member of one world
    /// has its exactly-matching counterpart in the other world's schema,
    /// which makes measured implementation ε's exact rather than
    /// battery-dependent.
    pub fn priority_exhaustive_over(subset: Vec<Action>) -> SchedulerSchema {
        assert!(
            subset.len() <= 7,
            "exhaustive priority schema capped at 7 contended actions (5040 permutations)"
        );
        SchedulerSchema::new(
            format!("priority-exhaustive×{}!", subset.len()),
            move |_| {
                use crate::scheduler::PriorityScheduler;
                // Actions outside the subset fall back to canonical
                // order inside PriorityScheduler, so no universe
                // computation is needed here.
                permutations(&subset)
                    .into_iter()
                    .map(|head| Arc::new(PriorityScheduler::new(head)) as Arc<dyn Scheduler>)
                    .collect()
            },
        )
    }

    /// A priority schema over a *caller-provided* shared universe:
    /// `count` seeded shuffles of `universe` (plus its canonical order).
    /// Because the orders do not depend on the automaton, the SAME order
    /// list is offered in both worlds of an implementation comparison —
    /// the σ′ matching a given σ is typically the very same order, which
    /// keeps measured ε's tight for composite systems whose contended
    /// sets are too large for the exhaustive schema.
    pub fn shared_priority(count: usize, seed: u64, universe: Vec<Action>) -> SchedulerSchema {
        use crate::scheduler::PriorityScheduler;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        SchedulerSchema::new(format!("shared-priority×{count}"), move |_| {
            let mut out: Vec<Arc<dyn Scheduler>> =
                vec![Arc::new(PriorityScheduler::new(universe.clone()))];
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for _ in 0..count {
                let mut order = universe.clone();
                order.shuffle(&mut rng);
                out.push(Arc::new(PriorityScheduler::new(order)));
            }
            out
        })
    }

    /// The priority schema: `count` deterministically-seeded random total
    /// orders over the action universe (plus the canonical order), each
    /// inducing a [`PriorityScheduler`]. Still oblivious (§4.4) — the
    /// order is fixed in advance — but drives protocols through complete
    /// runs, unlike short scripts.
    pub fn priority(count: usize, seed: u64) -> SchedulerSchema {
        use crate::scheduler::PriorityScheduler;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        SchedulerSchema::new(format!("priority×{count}"), move |auto| {
            let universe = action_universe(auto);
            let mut out: Vec<Arc<dyn Scheduler>> =
                vec![Arc::new(PriorityScheduler::new(universe.clone()))];
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for _ in 0..count {
                let mut order = universe.clone();
                order.shuffle(&mut rng);
                out.push(Arc::new(PriorityScheduler::new(order)));
            }
            out
        })
    }
}

/// The actions appearing in any signature on the (capped) reachable
/// prefix of `auto`, in deterministic order.
pub fn action_universe(auto: &dyn Automaton) -> Vec<Action> {
    let r = reachable(auto, ExploreLimits::default());
    let mut set: BTreeSet<Action> = BTreeSet::new();
    for q in &r.states {
        set.extend(auto.signature(q).all());
    }
    set.into_iter().collect()
}

/// All permutations of a small action list.
pub fn permutations(items: &[Action]) -> Vec<Vec<Action>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest: Vec<Action> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// All scripts of length `0 ≤ ℓ ≤ max_len` over the given actions.
pub fn enumerate_scripts(actions: &[Action], max_len: usize) -> Vec<ScriptedScheduler> {
    let mut out = vec![ScriptedScheduler::new(Vec::new())];
    let mut frontier: Vec<Vec<Action>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::with_capacity(frontier.len() * actions.len());
        for prefix in &frontier {
            for &a in actions {
                let mut s = prefix.clone();
                s.push(a);
                out.push(ScriptedScheduler::new(s.clone()));
                next.push(s);
            }
        }
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{ExplicitAutomaton, Signature, Value};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn toy() -> ExplicitAutomaton {
        ExplicitAutomaton::builder("schema-toy", Value::int(0))
            .state(0, Signature::new([], [act("sa")], [act("sb")]))
            .state(1, Signature::new([], [], []))
            .step(0, act("sa"), 1)
            .step(0, act("sb"), 0)
            .build()
    }

    #[test]
    fn action_universe_is_sorted_and_complete() {
        let u = action_universe(&toy());
        assert_eq!(u.len(), 2);
        assert!(u.contains(&act("sa")) && u.contains(&act("sb")));
    }

    #[test]
    fn script_enumeration_counts() {
        let u = vec![act("sa"), act("sb")];
        // lengths 0..=2 over 2 actions: 1 + 2 + 4 = 7.
        assert_eq!(enumerate_scripts(&u, 2).len(), 7);
        assert_eq!(enumerate_scripts(&u, 0).len(), 1);
        assert_eq!(enumerate_scripts(&[], 3).len(), 1);
    }

    #[test]
    fn scripted_schema_members() {
        let schema = SchedulerSchema::scripted(1);
        assert_eq!(schema.name(), "scripted≤1");
        let members = schema.members(&toy());
        assert_eq!(members.len(), 3); // empty + two singletons
    }
}
