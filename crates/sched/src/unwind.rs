//! Unwind-safety audit for the engine entry points.
//!
//! The server isolates per-request panics with
//! `catch_unwind(AssertUnwindSafe(..))` around the engine calls. That
//! assertion is a claim, not a proof — this module pins down why it is
//! sound, and the compile-time assertions below keep the claim honest
//! as the types evolve.
//!
//! The shared state that survives a caught panic is exactly the state
//! behind the engine's locks: the transition cache
//! ([`dpioa_core::TransitionCache`]), the scheduler-choice cache and
//! stratum table ([`crate::EngineCache`]), and the circuit breaker
//! ([`crate::CircuitBreaker`]). Three facts make a mid-request unwind
//! harmless to them:
//!
//! 1. **User code runs outside the locks.** `Automaton::transition`
//!    and `Scheduler::schedule_*` — the only places arbitrary panics
//!    originate — are always invoked before a shard lock is taken;
//!    lock bodies only move fully-formed rows into maps.
//! 2. **Rows are inserted whole.** Every critical section commits with
//!    a single map insert of an already-constructed value; there is no
//!    multi-step in-place mutation a panic could tear.
//! 3. **Poisoning is recovered, not propagated.** All shared-cache
//!    locks are acquired through poison-recovering accessors
//!    ([`dpioa_core::sync`]), so a panic that does unwind through a
//!    held lock costs at most the row being inserted — a future cache
//!    miss, not corruption and not a permanently dead cache.
//!
//! The assertions require the shared types to be [`RefUnwindSafe`]:
//! if someone later threads a `RefCell` or raw interior mutability
//! through them (which *could* be torn by an unwind), the server's
//! `AssertUnwindSafe` stops being justified and this module stops
//! compiling.

use std::panic::RefUnwindSafe;

const fn assert_ref_unwind_safe<T: RefUnwindSafe + ?Sized>() {}

const _: () = {
    // Cross-request shared caches the server holds across catch_unwind
    // boundaries.
    assert_ref_unwind_safe::<crate::EngineCache>();
    assert_ref_unwind_safe::<crate::CircuitBreaker>();
    assert_ref_unwind_safe::<dpioa_core::TransitionCache>();
    // Per-request inputs that cross the boundary by reference.
    assert_ref_unwind_safe::<crate::error::Budget>();
    assert_ref_unwind_safe::<dpioa_core::CancelToken>();
    assert_ref_unwind_safe::<crate::StrataConfig>();
    assert_ref_unwind_safe::<crate::RobustConfig>();
};

#[cfg(test)]
mod tests {
    #[test]
    fn engine_cache_survives_a_panicking_user_callback() {
        use dpioa_core::{Action, Value};
        use dpioa_prob::SubDisc;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let cache = crate::EngineCache::new();
        let c = SubDisc::from_entries(vec![(Action::named("uw-a"), 1.0)]).unwrap();
        assert!(cache.import_choice("uw-scope", 0, &Value::int(0), Some(c.clone())));

        // A panic unwinding across a reference to the cache must leave
        // previously committed rows readable and the cache writable.
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _rows = cache.export_choices();
            panic!("simulated poisoned request");
        }));
        assert!(err.is_err());
        assert_eq!(cache.export_choices().len(), 1);
        assert!(cache.import_choice("uw-scope", 1, &Value::int(1), Some(c)));
        assert_eq!(cache.export_choices().len(), 2);
    }
}
