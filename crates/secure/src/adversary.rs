//! Adversaries for structured automata (paper Def. 4.24, Lemma 4.25).
//!
//! An adversary `Adv` for a structured automaton `(A, EAct_A)` is an
//! automaton that (i) is partially compatible with `A`, (ii) covers the
//! adversary inputs of `A` with its outputs (`AI_A(q_A) ⊆
//! out(Adv)(q_Adv)` — the adversary drives `A`'s adversary interface),
//! and (iii) never touches environment actions (`EAct_A(q_A) ∩
//! ŝig(Adv)(q_Adv) = ∅`).

use crate::structured::StructuredAutomaton;
use dpioa_core::compose::Composition;
use dpioa_core::explore::{reachable_closed, ExploreLimits};
use dpioa_core::Automaton;
use std::sync::Arc;

/// Check Def. 4.24 over the *closed-system* reachable prefix of `A‖Adv`.
///
/// Substitution note: the paper quantifies the pointwise conditions over
/// `states(A‖Adv)` — with input-enabling, that set includes states only
/// reachable by inputs arriving out of thin air, which no closed
/// execution ever visits. The executable check uses closed-system
/// reachability (inputs fire only via synchronization); to cover states
/// that an *environment* can drive the pair into, use
/// [`is_adversary_in_context`].
pub fn is_adversary(system: &StructuredAutomaton, adv: &Arc<dyn Automaton>) -> bool {
    let comp = Composition::new(vec![
        Arc::new(system.clone()) as Arc<dyn Automaton>,
        adv.clone(),
    ]);
    check_def_4_24(system, adv, &comp, 0)
}

/// Check Def. 4.24 over the closed-system reachable prefix of
/// `E‖A‖Adv` — every combined state a concrete environment can reach.
pub fn is_adversary_in_context(
    env: &Arc<dyn Automaton>,
    system: &StructuredAutomaton,
    adv: &Arc<dyn Automaton>,
) -> bool {
    let comp = Composition::new(vec![
        env.clone(),
        Arc::new(system.clone()) as Arc<dyn Automaton>,
        adv.clone(),
    ]);
    check_def_4_24(system, adv, &comp, 1)
}

/// Shared Def. 4.24 conditions; `sys_index` locates `A` in the
/// composite state (the adversary is always the last component).
fn check_def_4_24(
    system: &StructuredAutomaton,
    adv: &Arc<dyn Automaton>,
    comp: &Composition,
    sys_index: usize,
) -> bool {
    if !comp.compatible_at(&comp.start_state()) {
        return false;
    }
    let r = reachable_closed(comp, ExploreLimits::default());
    let adv_index = sys_index + 1;
    for q in &r.states {
        if !comp.compatible_at(q) {
            return false;
        }
        let (qa, qadv) = (q.proj(sys_index), q.proj(adv_index));
        let adv_sig = adv.signature(qadv);
        // (ii): adversary inputs of A are outputs of Adv.
        for a in system.adv_inputs(qa) {
            if !adv_sig.output.contains(&a) {
                return false;
            }
        }
        // (iii): Adv never shares environment actions.
        for a in system.env_actions(qa) {
            if adv_sig.contains(a) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::compose_structured;
    use dpioa_core::{Action, ExplicitAutomaton, Signature, Value};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    /// A party driven by adversary input `adv-cmd-<tag>`, reporting to the
    /// environment via `env-rep-<tag>` and leaking via adversary output
    /// `adv-leak-<tag>`.
    fn party(tag: &str) -> StructuredAutomaton {
        let cmd = act(&format!("adv-cmd-{tag}"));
        let rep = act(&format!("env-rep-{tag}"));
        let leak = act(&format!("adv-leak-{tag}"));
        let auto = ExplicitAutomaton::builder(format!("pty-{tag}"), Value::int(0))
            .state(0, Signature::new([cmd], [rep, leak], []))
            .step(0, cmd, 0)
            .step(0, rep, 0)
            .step(0, leak, 0)
            .build()
            .shared();
        StructuredAutomaton::with_env_actions(auto, [rep])
    }

    /// A well-formed adversary for `party(tag)`.
    fn good_adv(tag: &str) -> Arc<dyn Automaton> {
        let cmd = act(&format!("adv-cmd-{tag}"));
        let leak = act(&format!("adv-leak-{tag}"));
        ExplicitAutomaton::builder(format!("adv-{tag}"), Value::int(0))
            .state(0, Signature::new([leak], [cmd], []))
            .step(0, leak, 0)
            .step(0, cmd, 0)
            .build()
            .shared()
    }

    #[test]
    fn good_adversary_accepted() {
        let p = party("g");
        assert!(is_adversary(&p, &good_adv("g")));
    }

    #[test]
    fn adversary_missing_required_output_rejected() {
        let p = party("m");
        // This adversary never outputs the adversary input of the party.
        let lazy = ExplicitAutomaton::builder("lazy-adv", Value::int(0))
            .state(0, Signature::new([act("adv-leak-m")], [], []))
            .step(0, act("adv-leak-m"), 0)
            .build()
            .shared();
        assert!(!is_adversary(&p, &lazy));
    }

    #[test]
    fn adversary_touching_env_actions_rejected() {
        let p = party("e");
        let nosy = ExplicitAutomaton::builder("nosy-adv", Value::int(0))
            .state(
                0,
                Signature::new(
                    [act("adv-leak-e"), act("env-rep-e")],
                    [act("adv-cmd-e")],
                    [],
                ),
            )
            .step(0, act("adv-leak-e"), 0)
            .step(0, act("env-rep-e"), 0)
            .step(0, act("adv-cmd-e"), 0)
            .build()
            .shared();
        assert!(!is_adversary(&p, &nosy));
    }

    #[test]
    fn lemma_4_25_restriction() {
        // Adv adversary for A‖B ⇒ Adv adversary for A.
        let a = party("ra");
        let b = party("rb");
        let ab = compose_structured(&a, &b);
        // Adversary covering BOTH parties' adversary interfaces.
        let cmd_a = act("adv-cmd-ra");
        let cmd_b = act("adv-cmd-rb");
        let leak_a = act("adv-leak-ra");
        let leak_b = act("adv-leak-rb");
        let adv: Arc<dyn Automaton> = ExplicitAutomaton::builder("adv-rab", Value::int(0))
            .state(0, Signature::new([leak_a, leak_b], [cmd_a, cmd_b], []))
            .step(0, leak_a, 0)
            .step(0, leak_b, 0)
            .step(0, cmd_a, 0)
            .step(0, cmd_b, 0)
            .build()
            .shared();
        assert!(is_adversary(&ab, &adv));
        // Restriction: the same Adv is an adversary for A alone.
        assert!(is_adversary(&a, &adv));
        assert!(is_adversary(&b, &adv));
    }
}
