//! The dummy adversary (paper Def. 4.27) and the Forward constructions
//! of Appendix D (Lemma 4.29 / D.1).
//!
//! `Dummy(A, g)` is a pure forwarder sitting between a structured
//! automaton `A` and an outer adversary that speaks the `g`-renamed
//! adversary dialect: it receives `A`'s adversary outputs and re-emits
//! them renamed, and receives renamed adversary orders and re-emits them
//! for `A`. Its state is the single `pending` variable of Def. 4.27.
//!
//! Lemma 4.29 states that inserting the dummy is invisible:
//! `g(A)‖Adv ≤ hide(A‖Dummy(A,g), AAct_A)‖Adv` with ε = 0. The proof
//! constructs, for every scheduler σ of the direct world, a scheduler
//! `Forward^s(σ)` of the dummy world that replays σ and forwards
//! immediately — and an execution correspondence `Forward^e` under which
//! the two worlds produce identical perceptions. [`DummyInsertion`]
//! packages both worlds, [`ForwardScheduler`] is `Forward^s`, and
//! [`DummyInsertion::collapse_execution`] is the inverse direction of
//! `Forward^e` (collapsing forward pairs back to single steps).

use crate::structured::StructuredAutomaton;
use dpioa_core::{compose, Action, ActionSet, Automaton, Execution, Signature, Value};
use dpioa_prob::{Disc, SubDisc};
use dpioa_sched::Scheduler;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dummy-adversary state (or pending action) that does not decode.
///
/// These can only arise from states fabricated outside the dummy's own
/// transition function; the `Automaton` impl treats them as *destroyed*
/// (empty signature) instead of panicking, and the fallible decoders
/// surface the reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DummyError {
    /// The state value is neither `⊥` (`Unit`) nor a pending action name.
    MalformedState(String),
    /// The pending action is neither in `AO_A` nor in `g(AI_A)`.
    UnknownPending(Action),
}

impl fmt::Display for DummyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DummyError::MalformedState(s) => write!(f, "malformed dummy state {s}"),
            DummyError::UnknownPending(a) => {
                write!(f, "dummy pending {a} is neither AO nor g(AI)")
            }
        }
    }
}

impl std::error::Error for DummyError {}

/// The dummy adversary `Dummy(A, g)` of Def. 4.27.
pub struct DummyAdversary {
    name: String,
    /// Universal adversary outputs `AO_A` (received, forwarded renamed).
    ao: ActionSet,
    /// `g(AI_A)` (received from the outer adversary, forwarded un-renamed).
    g_ai: ActionSet,
    /// The renaming on `AO_A` (forward direction).
    g: HashMap<Action, Action>,
    /// The inverse renaming on `g(AI_A)`.
    g_inv: HashMap<Action, Action>,
}

impl DummyAdversary {
    /// Build the dummy for a structured automaton and a renaming `g`
    /// (a bijection from `AAct_A` to fresh names).
    pub fn new(system: &StructuredAutomaton, g: &HashMap<Action, Action>) -> DummyAdversary {
        let (ai, ao) = system.universal_adv_io();
        let g_ai: ActionSet = ai.iter().map(|a| g[a]).collect();
        let g_inv: HashMap<Action, Action> = g.iter().map(|(&a, &b)| (b, a)).collect();
        assert_eq!(
            g_inv.len(),
            g.len(),
            "adversary renaming g must be injective"
        );
        DummyAdversary {
            name: format!("Dummy({})", system.name()),
            ao,
            g_ai,
            g: g.clone(),
            g_inv,
        }
    }

    /// Decode the `pending` variable of Def. 4.27 (`None` = `⊥`).
    fn try_pending_of(q: &Value) -> Result<Option<Action>, DummyError> {
        match q {
            Value::Unit => Ok(None),
            Value::Str(s) => Ok(Some(Action::named(s.as_ref()))),
            other => Err(DummyError::MalformedState(other.to_string())),
        }
    }

    /// The action the dummy will emit from a pending state.
    fn try_forward_of(&self, pending: Action) -> Result<Action, DummyError> {
        if let Some(&renamed) = self.g.get(&pending) {
            Ok(renamed) // pending ∈ AO_A: forward renamed to the adversary
        } else if let Some(&orig) = self.g_inv.get(&pending) {
            Ok(orig) // pending ∈ g(AI_A): forward un-renamed to A
        } else {
            Err(DummyError::UnknownPending(pending))
        }
    }

    /// The forward enabled at `q`, if any. Errors on undecodable states.
    pub fn try_forward_at(&self, q: &Value) -> Result<Option<Action>, DummyError> {
        match Self::try_pending_of(q)? {
            None => Ok(None),
            Some(p) => self.try_forward_of(p).map(Some),
        }
    }
}

impl Automaton for DummyAdversary {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn start_state(&self) -> Value {
        Value::Unit // pending = ⊥
    }

    fn signature(&self, q: &Value) -> Signature {
        // An undecodable state is treated as destroyed (empty signature)
        // rather than a panic; `transition` is consistent because it
        // derives enabling from this signature.
        let output = match self.try_forward_at(q) {
            Ok(output) => output,
            Err(_) => return Signature::empty(),
        };
        let inputs: ActionSet = self.ao.union(&self.g_ai).copied().collect();
        Signature::new(inputs, output, [])
    }

    fn transition(&self, q: &Value, a: Action) -> Option<Disc<Value>> {
        let sig = self.signature(q);
        if sig.input.contains(&a) {
            // Receive: record as pending (Def. 4.27: q'.pending = a).
            Some(Disc::dirac(Value::str(a.name())))
        } else if sig.output.contains(&a) {
            // Forward: clear pending.
            Some(Disc::dirac(Value::Unit))
        } else {
            None
        }
    }
}

/// The packaged Lemma 4.29 instance: a structured automaton `A`, a fresh
/// renaming `g`, and the two worlds to compare.
///
/// * world 1 — `E ‖ g(A) ‖ Adv` (the direct world);
/// * world 2 — `hide(E ‖ A ‖ Dummy(A,g) ‖ Adv, AAct_A)` (the dummy
///   world; flat composition with the original adversary channel hidden,
///   which is perception-equivalent to the paper's
///   `hide(A‖Dummy, AAct_A)‖Adv` grouping and keeps state tuples flat
///   for the Forward constructions).
pub struct DummyInsertion {
    system: StructuredAutomaton,
    g: HashMap<Action, Action>,
    g_inv: HashMap<Action, Action>,
    ai: ActionSet,
    ao: ActionSet,
    dummy: Arc<DummyAdversary>,
    renamed: StructuredAutomaton,
}

impl DummyInsertion {
    /// Build an insertion instance with `g = suffix renaming` of the
    /// universal adversary actions of `system`.
    pub fn new(system: StructuredAutomaton, suffix: &str) -> DummyInsertion {
        let (ai, ao) = system.universal_adv_io();
        let mut g = HashMap::new();
        for &a in ai.iter().chain(ao.iter()) {
            g.insert(a, a.suffixed(suffix));
        }
        let g_inv: HashMap<Action, Action> = g.iter().map(|(&a, &b)| (b, a)).collect();
        let dummy = Arc::new(DummyAdversary::new(&system, &g));
        let g_for_rename = g.clone();
        let renamed = system.rename(move |a| g_for_rename.get(&a).copied().unwrap_or(a));
        DummyInsertion {
            system,
            g,
            g_inv,
            ai,
            ao,
            dummy,
            renamed,
        }
    }

    /// The renaming `g` (original adversary action → fresh name).
    pub fn g(&self) -> &HashMap<Action, Action> {
        &self.g
    }

    /// The renamed system `g(A)`.
    pub fn renamed_system(&self) -> &StructuredAutomaton {
        &self.renamed
    }

    /// The dummy adversary automaton.
    pub fn dummy(&self) -> Arc<dyn Automaton> {
        self.dummy.clone()
    }

    /// World 1: `E ‖ g(A) ‖ Adv` (flat 3-component composition).
    pub fn world_direct(
        &self,
        env: &Arc<dyn Automaton>,
        adv: &Arc<dyn Automaton>,
    ) -> Arc<dyn Automaton> {
        compose(vec![
            env.clone(),
            Arc::new(self.renamed.clone()) as Arc<dyn Automaton>,
            adv.clone(),
        ])
    }

    /// World 2: `hide(E ‖ A ‖ Dummy ‖ Adv, AAct_A)` (flat 4-component
    /// composition; component order: env, A, dummy, adv).
    pub fn world_dummy(
        &self,
        env: &Arc<dyn Automaton>,
        adv: &Arc<dyn Automaton>,
    ) -> Arc<dyn Automaton> {
        let composed = compose(vec![
            env.clone(),
            Arc::new(self.system.clone()) as Arc<dyn Automaton>,
            self.dummy(),
            adv.clone(),
        ]);
        let hidden: ActionSet = self.ai.union(&self.ao).copied().collect();
        dpioa_core::hide_static(composed, hidden)
    }

    pub(crate) fn drop_dummy_component(q: &Value) -> Value {
        Value::tuple(vec![
            q.proj(0).clone(),
            q.proj(1).clone(),
            q.proj(3).clone(),
        ])
    }

    /// The inverse of `Forward^e`: collapse a world-2 execution back into
    /// the corresponding world-1 execution by merging each forward pair
    /// `(a, g(a))` (for `a ∈ AO_A`) or `(g(a), a)` (for `a ∈ AI_A`) into
    /// the single world-1 action `g(a)`, and dropping the dummy state
    /// component. Returns `None` when the execution is mid-pair or
    /// interleaves other actions inside a pair (such executions carry
    /// zero probability under `Forward^s(σ)`).
    pub fn collapse_execution(&self, exec2: &Execution) -> Option<Execution> {
        collapse_impl(&self.g, &self.g_inv, &self.ai, &self.ao, exec2)
    }

    /// `Forward^e`: the world-2 pending action at the end of a world-2
    /// execution, if the dummy holds one (i.e. the execution is mid-pair
    /// and the forward must fire next).
    pub fn pending_forward(&self, exec2: &Execution) -> Option<Action> {
        let q_dummy = exec2.lstate().proj(2);
        self.dummy.try_forward_at(q_dummy).ok().flatten()
    }

    /// `Forward^s` (Lemma D.1): lift a world-1 scheduler to the world-2
    /// scheduler that mimics it and forwards immediately.
    pub fn forward_scheduler(
        &self,
        world1: Arc<dyn Automaton>,
        inner: Arc<dyn Scheduler>,
    ) -> ForwardScheduler {
        ForwardScheduler {
            insertion: DummyInsertionRef {
                g: self.g.clone(),
                g_inv: self.g_inv.clone(),
                ai: self.ai.clone(),
                ao: self.ao.clone(),
                dummy: self.dummy.clone(),
            },
            world1,
            inner,
        }
    }
}

/// The collapse algorithm shared by [`DummyInsertion`] and
/// [`ForwardScheduler`]: merge forward pairs into single renamed steps
/// and drop the dummy state component.
fn collapse_impl(
    g: &HashMap<Action, Action>,
    g_inv: &HashMap<Action, Action>,
    ai: &ActionSet,
    ao: &ActionSet,
    exec2: &Execution,
) -> Option<Execution> {
    let drop_dummy = DummyInsertion::drop_dummy_component;
    let mut out = Execution::from_state(drop_dummy(exec2.fstate()));
    let mut expecting: Option<Action> = None;
    for (_, a, q2) in exec2.steps() {
        if let Some(expected) = expecting {
            if a != expected {
                return None; // interleaved action inside a forward pair
            }
            expecting = None;
            // Pair complete: emit the world-1 (renamed) action.
            let world1_action = if ao.contains(&a) || ai.contains(&a) {
                g[&a]
            } else {
                a
            };
            out.push(world1_action, drop_dummy(q2));
            continue;
        }
        if ao.contains(&a) {
            // A emitted an adversary output; the dummy must forward g(a).
            expecting = Some(g[&a]);
        } else if let Some(&orig) = g_inv.get(&a) {
            if ai.contains(&orig) {
                // Adv emitted a renamed order; the dummy must forward orig.
                expecting = Some(orig);
            } else {
                // g(AO): a dummy→Adv forward cannot lead a pair.
                return None;
            }
        } else if ai.contains(&a) {
            return None; // un-renamed adversary order with no first half
        } else {
            out.push(a, drop_dummy(q2));
        }
    }
    expecting.is_none().then_some(out)
}

/// The shareable core of a [`DummyInsertion`] used by the scheduler
/// (cloned maps; the full insertion keeps the automata).
struct DummyInsertionRef {
    g: HashMap<Action, Action>,
    g_inv: HashMap<Action, Action>,
    ai: ActionSet,
    ao: ActionSet,
    dummy: Arc<DummyAdversary>,
}

impl DummyInsertionRef {
    fn collapse(&self, exec2: &Execution) -> Option<Execution> {
        collapse_impl(&self.g, &self.g_inv, &self.ai, &self.ao, exec2)
    }
}

/// The `Forward^s(σ)` scheduler of Lemma D.1: replays a world-1
/// scheduler in the dummy world, inserting the forced forward step after
/// every adversary-channel action. If σ is `q₁`-bounded, `Forward^s(σ)`
/// is `2·q₁`-bounded, matching the proof's `q₂ := 2·q₁`.
pub struct ForwardScheduler {
    insertion: DummyInsertionRef,
    world1: Arc<dyn Automaton>,
    inner: Arc<dyn Scheduler>,
}

impl Scheduler for ForwardScheduler {
    fn schedule(&self, _world2: &dyn Automaton, exec2: &Execution) -> SubDisc<Action> {
        // Mid-pair: the forward fires deterministically. Undecodable
        // dummy states halt (they are unreachable under this scheduler,
        // and halting keeps the sub-measure valid instead of panicking).
        let q_dummy = exec2.lstate().proj(2);
        match self.insertion.dummy.try_forward_at(q_dummy) {
            Ok(Some(forward)) => return SubDisc::dirac(forward),
            Ok(None) => {}
            Err(_) => return SubDisc::halt(),
        }
        // Otherwise mimic σ on the collapsed execution.
        let Some(exec1) = self.insertion.collapse(exec2) else {
            return SubDisc::halt(); // unreachable under this scheduler
        };
        let choice = self.inner.schedule(&*self.world1, &exec1);
        if choice.is_halt() {
            return SubDisc::halt();
        }
        SubDisc::from_entries(
            choice
                .iter()
                .map(|(&c, w)| {
                    let mapped = match self.insertion.g_inv.get(&c) {
                        // σ ordered a renamed adversary-channel action.
                        Some(&orig) if self.insertion.ao.contains(&orig) => orig, // A leads
                        Some(_) => c, // AI pair: the renamed order leads
                        None => c,    // environment-side action: unchanged
                    };
                    (mapped, *w)
                })
                .collect(),
        )
        .expect("weight-preserving relabeling keeps a valid sub-measure")
    }

    fn describe(&self) -> String {
        format!("Forward^s({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{AutomatonExt, ExplicitAutomaton};
    use dpioa_insight::{balanced_epsilon_exact, PrintInsight};
    use dpioa_prob::Ratio;
    use dpioa_sched::{FirstEnabled, ScriptedScheduler};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    /// A structured party: env input `du-go` triggers an adversary leak
    /// `du-leak` (probabilistic content), adversary order `du-cmd` makes
    /// it report `du-rep` to the environment.
    fn party() -> StructuredAutomaton {
        let go = act("du-go");
        let rep = act("du-rep");
        let leak = act("du-leak");
        let cmd = act("du-cmd");
        let auto = ExplicitAutomaton::builder("du-party", Value::int(0))
            .state(0, Signature::new([go], [], []))
            .state(1, Signature::new([], [leak], []))
            .state(2, Signature::new([cmd], [], []))
            .state(3, Signature::new([], [rep], []))
            .state(4, Signature::new([], [], []))
            .step(0, go, 1)
            .step(1, leak, 2)
            .step(2, cmd, 3)
            .step(3, rep, 4)
            .build()
            .shared();
        StructuredAutomaton::with_env_actions(auto, [go, rep])
    }

    /// Environment: outputs `du-go`, then waits for `du-rep`.
    fn env() -> Arc<dyn Automaton> {
        let go = act("du-go");
        let rep = act("du-rep");
        ExplicitAutomaton::builder("du-env", Value::int(0))
            .state(0, Signature::new([], [go], []))
            .state(1, Signature::new([rep], [], []))
            .state(2, Signature::new([], [], []))
            .step(0, go, 1)
            .step(1, rep, 2)
            .build()
            .shared()
    }

    /// Outer adversary speaking the RENAMED dialect: receives
    /// `du-leak@g`, then orders `du-cmd@g`.
    fn adv() -> Arc<dyn Automaton> {
        let leak_g = act("du-leak@g");
        let cmd_g = act("du-cmd@g");
        ExplicitAutomaton::builder("du-adv", Value::int(0))
            .state(0, Signature::new([leak_g], [], []))
            .state(1, Signature::new([], [cmd_g], []))
            .state(2, Signature::new([leak_g], [], []))
            .step(0, leak_g, 1)
            .step(1, cmd_g, 2)
            .step(2, leak_g, 2)
            .build()
            .shared()
    }

    #[test]
    fn dummy_signature_follows_def_4_27() {
        let p = party();
        let ins = DummyInsertion::new(p, "@g");
        let d = ins.dummy();
        let q0 = d.start_state();
        assert_eq!(q0, Value::Unit);
        let sig0 = d.signature(&q0);
        // Inputs: AO ∪ g(AI) — always enabled.
        assert!(sig0.input.contains(&act("du-leak")));
        assert!(sig0.input.contains(&act("du-cmd@g")));
        assert!(sig0.output.is_empty());
        // After receiving the leak, the dummy must forward it renamed.
        let q1 = d
            .transition(&q0, act("du-leak"))
            .unwrap()
            .support()
            .next()
            .unwrap()
            .clone();
        let sig1 = d.signature(&q1);
        assert_eq!(sig1.output, [act("du-leak@g")].into_iter().collect());
        // After forwarding, pending clears.
        let q2 = d
            .transition(&q1, act("du-leak@g"))
            .unwrap()
            .support()
            .next()
            .unwrap()
            .clone();
        assert_eq!(q2, Value::Unit);
        // Receiving a renamed order forwards it un-renamed.
        let q3 = d
            .transition(&q2, act("du-cmd@g"))
            .unwrap()
            .support()
            .next()
            .unwrap()
            .clone();
        assert_eq!(
            d.signature(&q3).output,
            [act("du-cmd")].into_iter().collect()
        );
    }

    #[test]
    fn dummy_input_overwrites_pending() {
        let p = party();
        let ins = DummyInsertion::new(p, "@g");
        let d = ins.dummy();
        let q1 = d
            .transition(&d.start_state(), act("du-leak"))
            .unwrap()
            .support()
            .next()
            .unwrap()
            .clone();
        // A new input while pending overwrites (inputs always enabled).
        let q2 = d
            .transition(&q1, act("du-cmd@g"))
            .unwrap()
            .support()
            .next()
            .unwrap()
            .clone();
        assert_eq!(q2, Value::str("du-cmd@g"));
    }

    #[test]
    fn malformed_dummy_states_degrade_instead_of_panicking() {
        let ins = DummyInsertion::new(party(), "@g");
        let d = ins.dummy();
        // A tuple is not a valid dummy state: destroyed, not a panic.
        let bad = Value::tuple(vec![Value::int(1)]);
        assert!(d.signature(&bad).is_empty());
        assert!(d.transition(&bad, act("du-leak")).is_none());
        // A pending action outside AO ∪ g(AI) likewise.
        let rogue = Value::str("du-not-an-action");
        assert!(d.signature(&rogue).is_empty());
        // The fallible decoders surface the reasons.
        assert_eq!(
            ins.dummy.try_forward_at(&bad),
            Err(DummyError::MalformedState(bad.to_string()))
        );
        assert_eq!(
            ins.dummy.try_forward_at(&rogue),
            Err(DummyError::UnknownPending(act("du-not-an-action")))
        );
        assert_eq!(ins.dummy.try_forward_at(&Value::Unit), Ok(None));
    }

    #[test]
    fn forward_scheduler_halts_on_undecodable_dummy_state() {
        let ins = DummyInsertion::new(party(), "@g");
        let (e, a) = (env(), adv());
        let w1 = ins.world_direct(&e, &a);
        let w2 = ins.world_dummy(&e, &a);
        let sched2 = ins.forward_scheduler(w1, Arc::new(FirstEnabled));
        // Fabricate a world-2 state whose dummy component is malformed.
        let q0 = w2.start_state();
        let bad = Value::tuple(vec![
            q0.proj(0).clone(),
            q0.proj(1).clone(),
            Value::tuple(vec![Value::int(9)]),
            q0.proj(3).clone(),
        ]);
        let exec = Execution::from_state(bad);
        assert!(sched2.schedule(&*w2, &exec).is_halt());
    }

    #[test]
    fn worlds_compose_and_run() {
        let ins = DummyInsertion::new(party(), "@g");
        let (e, a) = (env(), adv());
        let w1 = ins.world_direct(&e, &a);
        let w2 = ins.world_dummy(&e, &a);
        assert_eq!(w1.start_state().tuple_len(), Some(3));
        assert_eq!(w2.start_state().tuple_len(), Some(4));
        // Both worlds can take the initial env step.
        assert!(w1.transition(&w1.start_state(), act("du-go")).is_some());
        assert!(w2.transition(&w2.start_state(), act("du-go")).is_some());
    }

    /// Drive world 2 with Forward^s and collapse the resulting executions
    /// back to world 1.
    #[test]
    fn collapse_inverts_forwarding() {
        let ins = DummyInsertion::new(party(), "@g");
        let (e, a) = (env(), adv());
        let w1 = ins.world_direct(&e, &a);
        let w2 = ins.world_dummy(&e, &a);
        let sched1: Arc<dyn Scheduler> = Arc::new(FirstEnabled);
        let sched2 = ins.forward_scheduler(w1.clone(), sched1);
        // Step world 2 under Forward^s, greedily taking the chosen action.
        let mut exec2 = Execution::start_of(&*w2);
        for _ in 0..8 {
            let choice = sched2.schedule(&*w2, &exec2);
            if choice.is_halt() {
                break;
            }
            let act2 = *choice.support().next().unwrap();
            let eta = w2.transition(exec2.lstate(), act2).unwrap();
            let q2 = eta.support().next().unwrap().clone();
            exec2.push(act2, q2);
        }
        // The full run: go, leak(+fwd), cmd(+fwd), rep = 6 world-2 steps.
        assert_eq!(exec2.len(), 6);
        let exec1 = ins.collapse_execution(&exec2).expect("collapse succeeds");
        assert_eq!(exec1.len(), 4);
        assert_eq!(
            exec1.actions(),
            &[
                act("du-go"),
                act("du-leak@g"),
                act("du-cmd@g"),
                act("du-rep")
            ]
        );
        // The collapsed execution is a genuine world-1 execution.
        for (q, a, _) in exec1.steps() {
            assert!(w1.transition(q, a).is_some(), "world1 rejects {a} at {q}");
        }
    }

    #[test]
    fn collapse_rejects_mid_pair_executions() {
        let ins = DummyInsertion::new(party(), "@g");
        let (e, a) = (env(), adv());
        let w2 = ins.world_dummy(&e, &a);
        let q0 = w2.start_state();
        let q1 = w2
            .transition(&q0, act("du-go"))
            .unwrap()
            .support()
            .next()
            .unwrap()
            .clone();
        let q2 = w2
            .transition(&q1, act("du-leak"))
            .unwrap()
            .support()
            .next()
            .unwrap()
            .clone();
        let exec = Execution::from_state(q0)
            .extend(act("du-go"), q1)
            .extend(act("du-leak"), q2);
        assert!(ins.collapse_execution(&exec).is_none());
    }

    /// Lemma 4.29, certified exactly: the f-dists of the two worlds are
    /// EQUAL (ε = 0) under σ and Forward^s(σ), for the environment's
    /// print perception.
    #[test]
    fn lemma_4_29_zero_epsilon_certified() {
        let ins = DummyInsertion::new(party(), "@g");
        let (e, a) = (env(), adv());
        let w1 = ins.world_direct(&e, &a);
        let w2 = ins.world_dummy(&e, &a);
        let insight = PrintInsight::new([act("du-go"), act("du-rep")]);

        let schedulers: Vec<Arc<dyn Scheduler>> = vec![
            Arc::new(FirstEnabled),
            Arc::new(ScriptedScheduler::new(vec![
                act("du-go"),
                act("du-leak@g"),
                act("du-cmd@g"),
                act("du-rep"),
            ])),
            Arc::new(ScriptedScheduler::new(vec![act("du-go"), act("du-leak@g")])),
            Arc::new(ScriptedScheduler::new(vec![act("du-go")])),
        ];
        for sched1 in schedulers {
            let sched2 = ins.forward_scheduler(w1.clone(), sched1.clone());
            let eps = balanced_epsilon_exact(&*w1, &*sched1, &*w2, &sched2, &insight, 16);
            assert_eq!(
                eps,
                Ratio::ZERO,
                "Lemma 4.29 violated for {}",
                sched1.describe()
            );
        }
    }

    #[test]
    fn forward_scheduler_is_2q_bounded() {
        // A q₁-bounded σ yields a ≤ 2·q₁ activation count: the full run
        // above used 4 world-1 steps and 6 ≤ 8 world-2 steps.
        let ins = DummyInsertion::new(party(), "@g");
        let (e, a) = (env(), adv());
        let w1 = ins.world_direct(&e, &a);
        let w2 = ins.world_dummy(&e, &a);
        let sched1: Arc<dyn Scheduler> =
            Arc::new(dpioa_sched::BoundedScheduler::new(FirstEnabled, 4));
        let sched2 = ins.forward_scheduler(w1, sched1);
        let m = dpioa_sched::execution_measure(&*w2, &sched2, 64);
        for (exec, _) in m.iter() {
            assert!(exec.len() <= 8, "execution of length {}", exec.len());
        }
    }

    #[test]
    fn world2_hides_original_adversary_channel() {
        let ins = DummyInsertion::new(party(), "@g");
        let (e, a) = (env(), adv());
        let w2 = ins.world_dummy(&e, &a);
        // Walk to the state where the leak is enabled and check class.
        let q0 = w2.start_state();
        let q1 = w2
            .transition(&q0, act("du-go"))
            .unwrap()
            .support()
            .next()
            .unwrap()
            .clone();
        let sig = w2.signature(&q1);
        assert!(sig.internal.contains(&act("du-leak")));
        assert!(!sig.output.contains(&act("du-leak")));
        assert!(w2.enabled(&q1).contains(&act("du-leak")));
    }
}
