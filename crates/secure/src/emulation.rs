//! Dynamic secure emulation (paper Def. 4.26 and Theorem 4.30).
//!
//! `A ≤_SE B` holds when for every polynomially-bounded adversary `Adv`
//! for `A` there is a simulator `Sim` for `B` with
//! `hide(A‖Adv, AAct_A) ≤_{neg,pt} hide(B‖Sim, AAct_B)`.
//!
//! [`secure_emulation_epsilon`] measures the inner implementation
//! distance for one concrete `(Adv, Sim)` pair; protocol crates provide
//! the simulator constructively (as the paper's proofs do).
//! [`compose_simulators`] is the constructive step of Theorem 4.30: given
//! per-component dummy-simulators `DSim^i` and the composite adversary
//! renamed away from the real protocols, the composite simulator is
//! `Sim = hide(DSim¹‖…‖DSimᵇ‖g(Adv), g(AAct_Â))`.

use crate::implementation::{implementation_epsilon, ImplementationReport};
use crate::structured::StructuredAutomaton;
use dpioa_core::{compose, compose2, ActionSet, Automaton};
use dpioa_insight::Insight;
use dpioa_sched::SchedulerSchema;
use std::sync::Arc;

/// A real/ideal pair under secure-emulation comparison.
#[derive(Clone)]
pub struct EmulationInstance {
    /// The real protocol `A`.
    pub real: StructuredAutomaton,
    /// The ideal functionality `B`.
    pub ideal: StructuredAutomaton,
}

impl EmulationInstance {
    /// Package a real/ideal pair.
    pub fn new(real: StructuredAutomaton, ideal: StructuredAutomaton) -> EmulationInstance {
        EmulationInstance { real, ideal }
    }

    /// The Def. 4.26 left world for a given adversary:
    /// `hide(A‖Adv, AAct_A)`.
    pub fn real_world(&self, adv: &Arc<dyn Automaton>) -> Arc<dyn Automaton> {
        let hidden = self.real.universal_adv_actions();
        dpioa_core::hide_static(
            compose2(
                Arc::new(self.real.clone()) as Arc<dyn Automaton>,
                adv.clone(),
            ),
            hidden,
        )
    }

    /// The Def. 4.26 right world for a given simulator:
    /// `hide(B‖Sim, AAct_B)`.
    pub fn ideal_world(&self, sim: &Arc<dyn Automaton>) -> Arc<dyn Automaton> {
        let hidden = self.ideal.universal_adv_actions();
        dpioa_core::hide_static(
            compose2(
                Arc::new(self.ideal.clone()) as Arc<dyn Automaton>,
                sim.clone(),
            ),
            hidden,
        )
    }
}

/// Measure the Def. 4.26 implementation distance for a concrete
/// adversary/simulator pair over an environment battery and scheduler
/// schema. A (near-)zero value certifies that `Sim` successfully
/// simulates `Adv`'s view for these distinguishers.
pub fn secure_emulation_epsilon(
    instance: &EmulationInstance,
    adv: &Arc<dyn Automaton>,
    sim: &Arc<dyn Automaton>,
    envs: &[Arc<dyn Automaton>],
    schema: &SchedulerSchema,
    insight: &dyn Insight,
    horizon: usize,
) -> ImplementationReport {
    let real_world = instance.real_world(adv);
    let ideal_world = instance.ideal_world(sim);
    implementation_epsilon(&real_world, &ideal_world, envs, schema, insight, horizon)
}

/// The Theorem 4.30 simulator composition:
/// `Sim = hide(DSim¹‖…‖DSimᵇ‖g(Adv), g(AAct_Â))`.
///
/// * `dsims` — the simulators obtained for each component against its
///   dummy adversary;
/// * `renamed_adv` — the composite adversary with its actions renamed by
///   `g` (so it speaks to the dummy interfaces, not the protocols);
/// * `hidden` — `g(AAct_Â)`, the renamed adversary channel to hide.
pub fn compose_simulators(
    dsims: Vec<Arc<dyn Automaton>>,
    renamed_adv: Arc<dyn Automaton>,
    hidden: ActionSet,
) -> Arc<dyn Automaton> {
    let mut parts = dsims;
    parts.push(renamed_adv);
    dpioa_core::hide_static(compose(parts), hidden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{Action, ExplicitAutomaton, Signature, Value};
    use dpioa_insight::TraceInsight;

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    /// Real protocol: env input `em-send`, leaks `em-leak` to the
    /// adversary, then (on adversary `em-ok`) delivers `em-recv`.
    fn real() -> StructuredAutomaton {
        let auto = ExplicitAutomaton::builder("em-real", Value::int(0))
            .state(0, Signature::new([act("em-send")], [], []))
            .state(1, Signature::new([], [act("em-leak")], []))
            .state(2, Signature::new([act("em-ok")], [], []))
            .state(3, Signature::new([], [act("em-recv")], []))
            .state(4, Signature::new([], [], []))
            .step(0, act("em-send"), 1)
            .step(1, act("em-leak"), 2)
            .step(2, act("em-ok"), 3)
            .step(3, act("em-recv"), 4)
            .build()
            .shared();
        StructuredAutomaton::with_env_actions(auto, [act("em-send"), act("em-recv")])
    }

    /// Ideal functionality: same env interface, leaks only `em-notify`
    /// to its simulator interface.
    fn ideal() -> StructuredAutomaton {
        let auto = ExplicitAutomaton::builder("em-ideal", Value::int(0))
            .state(0, Signature::new([act("em-send")], [], []))
            .state(1, Signature::new([], [act("em-notify")], []))
            .state(2, Signature::new([act("em-go")], [], []))
            .state(3, Signature::new([], [act("em-recv")], []))
            .state(4, Signature::new([], [], []))
            .step(0, act("em-send"), 1)
            .step(1, act("em-notify"), 2)
            .step(2, act("em-go"), 3)
            .step(3, act("em-recv"), 4)
            .build()
            .shared();
        StructuredAutomaton::with_env_actions(auto, [act("em-send"), act("em-recv")])
    }

    /// The adversary for the real protocol: receives the leak, approves.
    fn adv() -> Arc<dyn Automaton> {
        ExplicitAutomaton::builder("em-adv", Value::int(0))
            .state(0, Signature::new([act("em-leak")], [], []))
            .state(1, Signature::new([], [act("em-ok")], []))
            .state(2, Signature::new([], [], []))
            .step(0, act("em-leak"), 1)
            .step(1, act("em-ok"), 2)
            .build()
            .shared()
    }

    /// The simulator: translates the ideal notification into the same
    /// approval flow.
    fn sim() -> Arc<dyn Automaton> {
        ExplicitAutomaton::builder("em-sim", Value::int(0))
            .state(0, Signature::new([act("em-notify")], [], []))
            .state(1, Signature::new([], [act("em-go")], []))
            .state(2, Signature::new([], [], []))
            .step(0, act("em-notify"), 1)
            .step(1, act("em-go"), 2)
            .build()
            .shared()
    }

    fn env() -> Arc<dyn Automaton> {
        ExplicitAutomaton::builder("em-env", Value::int(0))
            .state(0, Signature::new([], [act("em-send")], []))
            .state(1, Signature::new([act("em-recv")], [], []))
            .state(2, Signature::new([], [], []))
            .step(0, act("em-send"), 1)
            .step(1, act("em-recv"), 2)
            .build()
            .shared()
    }

    #[test]
    fn worlds_hide_adversary_channels() {
        let inst = EmulationInstance::new(real(), ideal());
        let rw = inst.real_world(&adv());
        // Walk: em-send then the leak must be internal.
        let q0 = rw.start_state();
        let q1 = rw
            .transition(&q0, act("em-send"))
            .unwrap()
            .support()
            .next()
            .unwrap()
            .clone();
        let sig = rw.signature(&q1);
        assert!(sig.internal.contains(&act("em-leak")));
        assert!(!sig.output.contains(&act("em-leak")));
    }

    #[test]
    fn correct_simulator_achieves_zero_epsilon() {
        let inst = EmulationInstance::new(real(), ideal());
        let r = secure_emulation_epsilon(
            &inst,
            &adv(),
            &sim(),
            &[env()],
            &SchedulerSchema::scripted(4),
            &TraceInsight,
            8,
        );
        assert_eq!(r.epsilon, 0.0, "witness: {:?}", r.worst);
    }

    #[test]
    fn broken_simulator_is_detected() {
        // A simulator that never approves: the ideal world cannot match
        // executions where the environment sees em-recv.
        let stuck: Arc<dyn Automaton> = ExplicitAutomaton::builder("em-stuck", Value::int(0))
            .state(0, Signature::new([act("em-notify")], [], []))
            .step(0, act("em-notify"), 0)
            .build()
            .shared();
        let inst = EmulationInstance::new(real(), ideal());
        let r = secure_emulation_epsilon(
            &inst,
            &adv(),
            &stuck,
            &[env()],
            &SchedulerSchema::scripted(4),
            &TraceInsight,
            8,
        );
        assert!(r.epsilon > 0.9, "eps = {}", r.epsilon);
    }

    #[test]
    fn simulator_composition_shape() {
        // Structural check of compose_simulators: parts compose and the
        // requested channel is hidden.
        let d1: Arc<dyn Automaton> = ExplicitAutomaton::builder("em-d1", Value::Unit)
            .state(Value::Unit, Signature::new([], [act("em-chan1")], []))
            .step(Value::Unit, act("em-chan1"), Value::Unit)
            .build()
            .shared();
        let d2: Arc<dyn Automaton> = ExplicitAutomaton::builder("em-d2", Value::Unit)
            .state(
                Value::Unit,
                Signature::new([act("em-chan1")], [act("em-chan2")], []),
            )
            .step(Value::Unit, act("em-chan1"), Value::Unit)
            .step(Value::Unit, act("em-chan2"), Value::Unit)
            .build()
            .shared();
        let sim = compose_simulators(vec![d1], d2, [act("em-chan2")].into_iter().collect());
        let q0 = sim.start_state();
        let sig = sim.signature(&q0);
        assert!(sig.internal.contains(&act("em-chan2")));
        assert!(sig.output.contains(&act("em-chan1")));
    }
}
