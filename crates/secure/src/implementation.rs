//! The approximate implementation relation (paper Defs. 4.11–4.12,
//! Lemmas 4.13–4.14, Theorems 4.15–4.16), as a *measured* quantity.
//!
//! `A ≤^{Sch,f}_{p,q₁,q₂,ε} B` demands: for every bounded environment
//! `E` and every `σ ∈ Sch(E‖A)` there is a `σ' ∈ Sch(E‖B)` with
//! `σ S^{≤ε}_{E,f} σ'`. Over a finite battery of environments and an
//! enumerable scheduler schema this becomes a max–min computation:
//!
//! ```text
//! ε̂ = max_E max_{σ ∈ Sch(E‖A)} min_{σ' ∈ Sch(E‖B)}
//!        TV( f-dist_{(E,A)}(σ), f-dist_{(E,B)}(σ') )
//! ```
//!
//! [`implementation_epsilon`] computes `ε̂` exactly (finite horizon).
//! The measured value under-approximates the true supremum over all
//! environments — the experiments treat a small `ε̂` as evidence, and the
//! *theorem* tests (transitivity, composability) check the relations the
//! paper proves between such measured values, which hold for any battery.

use dpioa_core::Value;
use dpioa_core::{compose2, Automaton};
use dpioa_insight::{f_dist, Insight};
use dpioa_prob::{tv_distance, Disc};
use dpioa_sched::SchedulerSchema;
use std::sync::Arc;

/// The result of measuring the implementation relation.
#[derive(Clone, Debug)]
pub struct ImplementationReport {
    /// The measured `ε̂` (max–min total variation).
    pub epsilon: f64,
    /// The witness of the maximum: `(environment name, scheduler description)`.
    pub worst: Option<(String, String)>,
    /// How many `(E, σ)` pairs were examined.
    pub pairs_checked: usize,
}

/// Measure `ε̂` for `A ≤ B` over the given environment battery and
/// scheduler schema (the same schema is applied to both worlds, per
/// Def. 4.12's `Sch(E‖A)` / `Sch(E‖B)`).
pub fn implementation_epsilon(
    a: &Arc<dyn Automaton>,
    b: &Arc<dyn Automaton>,
    envs: &[Arc<dyn Automaton>],
    schema: &SchedulerSchema,
    insight: &dyn Insight,
    horizon: usize,
) -> ImplementationReport {
    let mut report = ImplementationReport {
        epsilon: 0.0,
        worst: None,
        pairs_checked: 0,
    };
    for env in envs {
        let world_a = compose2(env.clone(), a.clone());
        let world_b = compose2(env.clone(), b.clone());
        let scheds_a = schema.members(&*world_a);
        let scheds_b = schema.members(&*world_b);
        assert!(
            !scheds_b.is_empty(),
            "schema {} yields no schedulers for {}",
            schema.name(),
            world_b.name()
        );
        // Precompute the B-side image measures once.
        let dists_b: Vec<Disc<Value>> = scheds_b
            .iter()
            .map(|s| f_dist(&*world_b, &**s, insight, horizon))
            .collect();
        for sched_a in &scheds_a {
            let da = f_dist(&*world_a, &**sched_a, insight, horizon);
            let best = dists_b
                .iter()
                .map(|db| tv_distance(&da, db))
                .fold(f64::INFINITY, f64::min);
            report.pairs_checked += 1;
            if best > report.epsilon {
                report.epsilon = best;
                report.worst = Some((env.name(), sched_a.describe()));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{Action, ExplicitAutomaton, Signature, Value};
    use dpioa_insight::TraceInsight;
    use dpioa_prob::Disc as PDisc;

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    /// A biased announcer: on env input `imp-ask`, announces `imp-yes`
    /// with probability num/8, `imp-no` otherwise.
    fn announcer(name: &str, num: u64) -> Arc<dyn Automaton> {
        ExplicitAutomaton::builder(name, Value::int(0))
            .state(0, Signature::new([act("imp-ask")], [], []))
            .state(1, Signature::new([], [], [act("imp-mix")]))
            .state(2, Signature::new([], [act("imp-yes")], []))
            .state(3, Signature::new([], [act("imp-no")], []))
            .state(4, Signature::new([], [], []))
            .step(0, act("imp-ask"), 1)
            .transition(
                1,
                act("imp-mix"),
                PDisc::bernoulli_dyadic(Value::int(2), Value::int(3), num, 3),
            )
            .step(2, act("imp-yes"), 4)
            .step(3, act("imp-no"), 4)
            .build()
            .shared()
    }

    fn asker() -> Arc<dyn Automaton> {
        ExplicitAutomaton::builder("imp-env", Value::int(0))
            .state(0, Signature::new([], [act("imp-ask")], []))
            .state(1, Signature::new([act("imp-yes"), act("imp-no")], [], []))
            .state(2, Signature::new([], [], []))
            .step(0, act("imp-ask"), 1)
            .step(1, act("imp-yes"), 2)
            .step(1, act("imp-no"), 2)
            .build()
            .shared()
    }

    fn schema() -> SchedulerSchema {
        // Scripts of length ≤ 4 over the world's own action universe.
        SchedulerSchema::scripted(4)
    }

    #[test]
    fn identical_systems_have_zero_epsilon() {
        let a = announcer("imp-a0", 3);
        let b = announcer("imp-b0", 3);
        let r = implementation_epsilon(&a, &b, &[asker()], &schema(), &TraceInsight, 6);
        assert_eq!(r.epsilon, 0.0);
        assert!(r.pairs_checked > 0);
    }

    #[test]
    fn bias_gap_is_measured() {
        let a = announcer("imp-a1", 3); // yes with 3/8
        let b = announcer("imp-b1", 5); // yes with 5/8
        let r = implementation_epsilon(&a, &b, &[asker()], &schema(), &TraceInsight, 6);
        assert!((r.epsilon - 0.25).abs() < 1e-9, "eps = {}", r.epsilon);
        assert!(r.worst.is_some());
    }

    #[test]
    fn theorem_4_16_transitivity_of_measured_epsilon() {
        let a1 = announcer("imp-t1", 2);
        let a2 = announcer("imp-t2", 4);
        let a3 = announcer("imp-t3", 7);
        let envs = [asker()];
        let sch = schema();
        let e12 = implementation_epsilon(&a1, &a2, &envs, &sch, &TraceInsight, 6).epsilon;
        let e23 = implementation_epsilon(&a2, &a3, &envs, &sch, &TraceInsight, 6).epsilon;
        let e13 = implementation_epsilon(&a1, &a3, &envs, &sch, &TraceInsight, 6).epsilon;
        assert!(e13 <= e12 + e23 + 1e-12, "{e13} > {e12} + {e23}");
    }

    #[test]
    fn lemma_4_13_composability_of_measured_epsilon() {
        // A context C that relays the announcement to its own output.
        let relay: Arc<dyn Automaton> = ExplicitAutomaton::builder("imp-relay", Value::int(0))
            .state(0, Signature::new([act("imp-yes")], [], []))
            .state(1, Signature::new([], [act("imp-relayed")], []))
            .step(0, act("imp-yes"), 1)
            .step(1, act("imp-relayed"), 1)
            .build()
            .shared();
        let a = announcer("imp-c-a", 3);
        let b = announcer("imp-c-b", 5);
        let envs = [asker()];
        let sch = schema();
        let base = implementation_epsilon(&a, &b, &envs, &sch, &TraceInsight, 6).epsilon;
        let ca = compose2(relay.clone(), a);
        let cb = compose2(relay, b);
        let composed = implementation_epsilon(&ca, &cb, &envs, &sch, &TraceInsight, 6).epsilon;
        // Lemma 4.13: composing a context never increases ε (the context
        // is absorbed into the environment side of the quantifier).
        assert!(composed <= base + 1e-12, "{composed} > {base}");
    }

    #[test]
    fn schema_mismatch_can_only_shrink_via_min() {
        // With the trivial schema containing only the empty script, both
        // worlds produce the empty observation: ε = 0.
        let a = announcer("imp-e-a", 1);
        let b = announcer("imp-e-b", 7);
        let sch = SchedulerSchema::scripted(0);
        let r = implementation_epsilon(&a, &b, &[asker()], &sch, &TraceInsight, 6);
        assert_eq!(r.epsilon, 0.0);
    }
}
