//! # dpioa-secure — structured automata, adversaries and dynamic
//! secure emulation
//!
//! This crate implements Sections 4.6–4.9 of *"Composable Dynamic Secure
//! Emulation"* — the security layer and the paper's main contribution:
//!
//! * [`structured`] — structured PSIOA/PCA (Defs. 4.17–4.23): the
//!   environment/adversary partition `(EAct, AAct)` of external actions,
//!   structured compatibility ("every shared action must be an
//!   environment action of both"), structured composition and hiding, and
//!   the closure checks of Lemmas 4.23/C.1;
//! * [`adversary`] — adversaries for structured automata (Def. 4.24) and
//!   the restriction property (Lemma 4.25);
//! * [`dummy`] — the dummy adversary `Dummy(A, g)` (Def. 4.27), the
//!   `Forward^e`/`Forward^s` constructions of Appendix D, and the
//!   machinery to certify Lemma 4.29 (dummy-adversary insertion is a
//!   zero-ε implementation) exactly;
//! * [`implementation`] — the approximate implementation relation
//!   `≤^{Sch,f}_{p,q₁,q₂,ε}` (Def. 4.12) as a *measured* quantity over
//!   finite environment batteries and enumerable scheduler schemas, with
//!   transitivity (Thm. 4.16) and composability (Lemma 4.13 / Thm. 4.15)
//!   checked numerically;
//! * [`emulation`] — dynamic secure emulation `≤_SE` (Def. 4.26) and the
//!   constructive simulator composition of Theorem 4.30.
//!
//! **Substitution note.** Defs. 4.12/4.26 quantify over *all* bounded
//! environments/schedulers/adversaries, which is not decidable. The
//! paper's own proofs are constructive reductions; we implement those
//! constructions verbatim (Forward^s, the Thm. 4.30 simulator) and
//! *measure* the relations over explicit finite batteries — the measured
//! ε is an under-approximation of the true supremum, which is exactly
//! what an executable reproduction can certify.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod dummy;
pub mod emulation;
pub mod implementation;
pub mod structured;

pub use adversary::{is_adversary, is_adversary_in_context};
pub use dummy::{DummyAdversary, DummyError, DummyInsertion, ForwardScheduler};
pub use emulation::{compose_simulators, secure_emulation_epsilon, EmulationInstance};
pub use implementation::{implementation_epsilon, ImplementationReport};
pub use structured::{compose_structured, structured_compatible, StructuredAutomaton};
