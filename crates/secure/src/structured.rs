//! Structured automata (paper Defs. 4.17–4.23).
//!
//! A structured PSIOA partitions its external actions, state by state,
//! into *environment* actions `EAct_A(q)` and *adversary* actions
//! `AAct_A(q) = ext(A)(q) ∖ EAct_A(q)`. Structured compatibility
//! (Def. 4.18) additionally requires every action *shared* by two
//! structured automata to be an environment action of both — adversary
//! channels are private. Composition (Def. 4.19) unions the `EAct`
//! mappings; hiding removes hidden actions from `EAct` (Def. 4.17).
//!
//! [`StructuredAutomaton`] wraps any [`Automaton`] — including a PCA —
//! with an `EAct` mapping, so the structured-PCA closure (Lemma 4.23 /
//! C.1) is exercised by wrapping composed PCA; the integration tests
//! verify the C.1 equation `EAct_X(q) = EAct(config(X)(q)) ∖
//! hidden-actions(X)(q)` on concrete dynamic systems.

use dpioa_core::compose::Composition;
use dpioa_core::explore::{reachable, ExploreLimits};
use dpioa_core::{Action, ActionSet, Automaton, Signature, Value};
use dpioa_prob::Disc;
use std::sync::Arc;

type EactFn = dyn Fn(&Value) -> ActionSet + Send + Sync;

/// A structured PSIOA (or PCA): an automaton with an environment-action
/// mapping (Def. 4.17).
#[derive(Clone)]
pub struct StructuredAutomaton {
    inner: Arc<dyn Automaton>,
    eact: Arc<EactFn>,
}

impl StructuredAutomaton {
    /// Wrap an automaton with a state-dependent environment-action
    /// mapping. The effective `EAct_A(q)` is clamped to `ext(A)(q)` as
    /// Def. 4.17 requires.
    pub fn new(
        inner: Arc<dyn Automaton>,
        eact: impl Fn(&Value) -> ActionSet + Send + Sync + 'static,
    ) -> StructuredAutomaton {
        StructuredAutomaton {
            inner,
            eact: Arc::new(eact),
        }
    }

    /// Wrap with a *fixed* environment action set (the common case: the
    /// partition does not vary with the state).
    pub fn with_env_actions(
        inner: Arc<dyn Automaton>,
        env_actions: impl IntoIterator<Item = Action>,
    ) -> StructuredAutomaton {
        let set: ActionSet = env_actions.into_iter().collect();
        StructuredAutomaton::new(inner, move |_| set.clone())
    }

    /// The wrapped automaton.
    pub fn inner(&self) -> &Arc<dyn Automaton> {
        &self.inner
    }

    /// `EAct_A(q)`: the environment actions at `q`.
    pub fn env_actions(&self, q: &Value) -> ActionSet {
        let mut e = (self.eact)(q);
        let ext = self.inner.signature(q).external();
        e.retain(|a| ext.contains(a));
        e
    }

    /// `AAct_A(q) = ext(A)(q) ∖ EAct_A(q)`: the adversary actions at `q`.
    pub fn adv_actions(&self, q: &Value) -> ActionSet {
        let e = self.env_actions(q);
        let mut ext = self.inner.signature(q).external();
        ext.retain(|a| !e.contains(a));
        ext
    }

    /// `EI_A(q)`: environment inputs.
    pub fn env_inputs(&self, q: &Value) -> ActionSet {
        let e = self.env_actions(q);
        self.inner
            .signature(q)
            .input
            .intersection(&e)
            .copied()
            .collect()
    }

    /// `EO_A(q)`: environment outputs.
    pub fn env_outputs(&self, q: &Value) -> ActionSet {
        let e = self.env_actions(q);
        self.inner
            .signature(q)
            .output
            .intersection(&e)
            .copied()
            .collect()
    }

    /// `AI_A(q)`: adversary inputs.
    pub fn adv_inputs(&self, q: &Value) -> ActionSet {
        let a = self.adv_actions(q);
        self.inner
            .signature(q)
            .input
            .intersection(&a)
            .copied()
            .collect()
    }

    /// `AO_A(q)`: adversary outputs.
    pub fn adv_outputs(&self, q: &Value) -> ActionSet {
        let a = self.adv_actions(q);
        self.inner
            .signature(q)
            .output
            .intersection(&a)
            .copied()
            .collect()
    }

    /// The *universal* adversary action set over the (capped) reachable
    /// prefix: `AAct_A = ⋃_q AAct_A(q)`. Used by the dummy-adversary
    /// construction and by the `hide(…, AAct_A)` operator of Def. 4.26.
    pub fn universal_adv_actions(&self) -> ActionSet {
        let r = reachable(&*self.inner, ExploreLimits::default());
        let mut out = ActionSet::new();
        for q in &r.states {
            out.extend(self.adv_actions(q));
        }
        out
    }

    /// The universal partition `(AI_A, AO_A)` over the reachable prefix.
    pub fn universal_adv_io(&self) -> (ActionSet, ActionSet) {
        let r = reachable(&*self.inner, ExploreLimits::default());
        let (mut ai, mut ao) = (ActionSet::new(), ActionSet::new());
        for q in &r.states {
            ai.extend(self.adv_inputs(q));
            ao.extend(self.adv_outputs(q));
        }
        (ai, ao)
    }

    /// Structured hiding (Def. 4.17): `hide((A, EAct), S) = (hide(A, S),
    /// EAct ∖ S)` with a fixed action set `S`.
    pub fn hide(&self, hidden: impl IntoIterator<Item = Action>) -> StructuredAutomaton {
        let set: ActionSet = hidden.into_iter().collect();
        let hidden_auto = dpioa_core::hide_static(self.inner.clone(), set.iter().copied());
        let eact = self.eact.clone();
        let removed = set;
        StructuredAutomaton::new(hidden_auto, move |q| {
            let mut e = eact(q);
            e.retain(|a| !removed.contains(a));
            e
        })
    }

    /// `hide(A‖Adv, AAct_A)` convenience: hide this automaton's universal
    /// adversary actions (the operation of Def. 4.26).
    pub fn hide_adv_actions(&self) -> StructuredAutomaton {
        self.hide(self.universal_adv_actions())
    }

    /// Rename through an injective action map, relabeling `EAct`
    /// consistently (used for the `g(A)` renaming of §4.9).
    pub fn rename(
        &self,
        map: impl Fn(Action) -> Action + Send + Sync + Clone + 'static,
    ) -> StructuredAutomaton {
        let renamed = dpioa_core::rename_with(self.inner.clone(), {
            let map = map.clone();
            move |_, a| map(a)
        });
        let eact = self.eact.clone();
        StructuredAutomaton::new(renamed, move |q| eact(q).into_iter().map(&map).collect())
    }
}

impl Automaton for StructuredAutomaton {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn start_state(&self) -> Value {
        self.inner.start_state()
    }
    fn signature(&self, q: &Value) -> Signature {
        self.inner.signature(q)
    }
    fn transition(&self, q: &Value, a: Action) -> Option<Disc<Value>> {
        self.inner.transition(q, a)
    }
}

/// Structured compatibility (Def. 4.18): on every (capped) reachable
/// state of `A₁‖A₂`, the shared executable actions must be environment
/// actions of both.
pub fn structured_compatible(a1: &StructuredAutomaton, a2: &StructuredAutomaton) -> bool {
    let comp = Composition::new(vec![
        Arc::new(a1.clone()) as Arc<dyn Automaton>,
        Arc::new(a2.clone()) as Arc<dyn Automaton>,
    ]);
    let start = comp.start_state();
    if !comp.compatible_at(&start) {
        return false;
    }
    let r = reachable(&comp, ExploreLimits::default());
    for q in &r.states {
        if !comp.compatible_at(q) {
            return false;
        }
        let (q1, q2) = (q.proj(0), q.proj(1));
        let sig1 = a1.signature(q1).all();
        let sig2 = a2.signature(q2).all();
        let e1 = a1.env_actions(q1);
        let e2 = a2.env_actions(q2);
        for a in sig1.intersection(&sig2) {
            if !(e1.contains(a) && e2.contains(a)) {
                return false;
            }
        }
    }
    true
}

/// Structured composition (Def. 4.19): `(A₁‖A₂, EAct_{A₁} ∪ EAct_{A₂})`.
///
/// Panics if the pair is not structured-compatible (checked on the capped
/// reachable prefix).
pub fn compose_structured(
    a1: &StructuredAutomaton,
    a2: &StructuredAutomaton,
) -> StructuredAutomaton {
    assert!(
        structured_compatible(a1, a2),
        "structured composition of incompatible automata {} / {}",
        a1.name(),
        a2.name()
    );
    let composed: Arc<dyn Automaton> = Arc::new(Composition::new(vec![
        Arc::new(a1.clone()) as Arc<dyn Automaton>,
        Arc::new(a2.clone()) as Arc<dyn Automaton>,
    ]));
    let (e1, e2) = (a1.clone(), a2.clone());
    StructuredAutomaton::new(composed, move |q| {
        let mut e = e1.env_actions(q.proj(0));
        e.extend(e2.env_actions(q.proj(1)));
        e
    })
}

/// Fold a list of structured automata into one composition.
pub fn compose_structured_all(parts: &[StructuredAutomaton]) -> StructuredAutomaton {
    assert!(!parts.is_empty(), "composition of zero structured automata");
    let mut acc = parts[0].clone();
    for p in &parts[1..] {
        acc = compose_structured(&acc, p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{ExplicitAutomaton, Signature};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    /// A protocol party with one environment-facing action and one
    /// adversary-facing action in each direction.
    fn party(tag: &str) -> StructuredAutomaton {
        let env_in = act(&format!("st-envin-{tag}"));
        let env_out = act(&format!("st-envout-{tag}"));
        let adv_in = act(&format!("st-advin-{tag}"));
        let adv_out = act(&format!("st-advout-{tag}"));
        let auto = ExplicitAutomaton::builder(format!("party-{tag}"), Value::int(0))
            .state(0, Signature::new([env_in, adv_in], [env_out, adv_out], []))
            .step(0, env_in, 0)
            .step(0, adv_in, 0)
            .step(0, env_out, 0)
            .step(0, adv_out, 0)
            .build()
            .shared();
        StructuredAutomaton::with_env_actions(auto, [env_in, env_out])
    }

    #[test]
    fn partition_accessors() {
        let p = party("acc");
        let q = Value::int(0);
        assert_eq!(
            p.env_actions(&q),
            [act("st-envin-acc"), act("st-envout-acc")]
                .into_iter()
                .collect()
        );
        assert_eq!(
            p.adv_actions(&q),
            [act("st-advin-acc"), act("st-advout-acc")]
                .into_iter()
                .collect()
        );
        assert_eq!(
            p.env_inputs(&q),
            [act("st-envin-acc")].into_iter().collect()
        );
        assert_eq!(
            p.env_outputs(&q),
            [act("st-envout-acc")].into_iter().collect()
        );
        assert_eq!(
            p.adv_inputs(&q),
            [act("st-advin-acc")].into_iter().collect()
        );
        assert_eq!(
            p.adv_outputs(&q),
            [act("st-advout-acc")].into_iter().collect()
        );
    }

    #[test]
    fn eact_clamped_to_external() {
        let auto = ExplicitAutomaton::builder("clamp", Value::int(0))
            .state(
                0,
                Signature::new([], [act("st-real")], [act("st-internal")]),
            )
            .step(0, act("st-real"), 0)
            .step(0, act("st-internal"), 0)
            .build()
            .shared();
        // Claim the internal action as environment action: clamp drops it.
        let s = StructuredAutomaton::with_env_actions(auto, [act("st-internal"), act("st-real")]);
        assert_eq!(
            s.env_actions(&Value::int(0)),
            [act("st-real")].into_iter().collect()
        );
    }

    #[test]
    fn universal_sets_cover_reachable_states() {
        let p = party("uni");
        let aa = p.universal_adv_actions();
        assert!(aa.contains(&act("st-advin-uni")));
        assert!(aa.contains(&act("st-advout-uni")));
        assert_eq!(aa.len(), 2);
        let (ai, ao) = p.universal_adv_io();
        assert_eq!(ai, [act("st-advin-uni")].into_iter().collect());
        assert_eq!(ao, [act("st-advout-uni")].into_iter().collect());
    }

    #[test]
    fn structured_hiding_def_4_17() {
        let p = party("hid");
        let h = p.hide([act("st-envout-hid")]);
        let q = Value::int(0);
        // Hidden action left EAct and became internal.
        assert!(!h.env_actions(&q).contains(&act("st-envout-hid")));
        assert!(h.signature(&q).internal.contains(&act("st-envout-hid")));
        // Adversary partition untouched.
        assert_eq!(h.adv_actions(&q), p.adv_actions(&q));
    }

    #[test]
    fn hide_adv_actions_leaves_env_interface() {
        let p = party("hadv");
        let h = p.hide_adv_actions();
        let q = Value::int(0);
        // Adversary outputs became internal; adversary inputs remain
        // inputs (hiding affects outputs only) but leave EAct.
        assert!(h.signature(&q).internal.contains(&act("st-advout-hadv")));
        assert!(h.env_actions(&q).contains(&act("st-envout-hadv")));
    }

    #[test]
    fn compatible_when_shared_actions_are_env_on_both() {
        let say = act("st-shared-ok");
        let talker = StructuredAutomaton::with_env_actions(
            ExplicitAutomaton::builder("talk", Value::int(0))
                .state(0, Signature::new([], [say], []))
                .step(0, say, 0)
                .build()
                .shared(),
            [say],
        );
        let listener = StructuredAutomaton::with_env_actions(
            ExplicitAutomaton::builder("listen", Value::int(0))
                .state(0, Signature::new([say], [], []))
                .step(0, say, 0)
                .build()
                .shared(),
            [say],
        );
        assert!(structured_compatible(&talker, &listener));
        let comp = compose_structured(&talker, &listener);
        let q = comp.start_state();
        assert!(comp.env_actions(&q).contains(&say));
    }

    #[test]
    fn incompatible_when_shared_action_is_adversarial() {
        let covert = act("st-shared-bad");
        let talker = StructuredAutomaton::with_env_actions(
            ExplicitAutomaton::builder("talk2", Value::int(0))
                .state(0, Signature::new([], [covert], []))
                .step(0, covert, 0)
                .build()
                .shared(),
            [], // covert is an ADVERSARY action of the talker
        );
        let listener = StructuredAutomaton::with_env_actions(
            ExplicitAutomaton::builder("listen2", Value::int(0))
                .state(0, Signature::new([covert], [], []))
                .step(0, covert, 0)
                .build()
                .shared(),
            [covert],
        );
        assert!(!structured_compatible(&talker, &listener));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn composing_incompatible_panics() {
        let covert = act("st-shared-panic");
        let t = StructuredAutomaton::with_env_actions(
            ExplicitAutomaton::builder("t3", Value::int(0))
                .state(0, Signature::new([], [covert], []))
                .step(0, covert, 0)
                .build()
                .shared(),
            [],
        );
        let l = StructuredAutomaton::with_env_actions(
            ExplicitAutomaton::builder("l3", Value::int(0))
                .state(0, Signature::new([covert], [], []))
                .step(0, covert, 0)
                .build()
                .shared(),
            [covert],
        );
        let _ = compose_structured(&t, &l);
    }

    #[test]
    fn composition_unions_partitions() {
        let p1 = party("u1");
        let p2 = party("u2");
        let c = compose_structured(&p1, &p2);
        let q = c.start_state();
        let e = c.env_actions(&q);
        assert!(e.contains(&act("st-envin-u1")) && e.contains(&act("st-envout-u2")));
        let a = c.adv_actions(&q);
        assert!(a.contains(&act("st-advin-u1")) && a.contains(&act("st-advout-u2")));
    }

    #[test]
    fn renaming_relabels_partition() {
        let p = party("ren");
        let g = p.rename(|a| a.suffixed("@g"));
        let q = Value::int(0);
        assert!(g.env_actions(&q).contains(&act("st-envin-ren@g")));
        assert!(g.adv_actions(&q).contains(&act("st-advout-ren@g")));
        assert!(!g.env_actions(&q).contains(&act("st-envin-ren")));
    }

    #[test]
    fn compose_all_folds() {
        let parts = vec![party("f1"), party("f2"), party("f3")];
        let c = compose_structured_all(&parts);
        // Nested tuple states: ((q1, q2), q3).
        let q = c.start_state();
        assert!(c.env_actions(&q).contains(&act("st-envin-f3")));
    }
}
