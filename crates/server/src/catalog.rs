//! The automata, schedulers, and observations a server exposes.
//!
//! Every query names its workload; the server never constructs
//! automata from client input (the state space is not an attack
//! surface). Catalog entries follow the repo-wide cache-soundness
//! conventions: each automaton uses a *disjoint action-name prefix*,
//! so the shared [`dpioa_sched::EngineCache`] — whose transition keys
//! are `(state, action)` without the automaton — can never alias
//! entries across workloads; and each scheduler has a *distinct
//! `describe()` string*, which scopes its slice of the cache's choice
//! table (one scheduler's memoized choices never answer another's
//! queries).
//!
//! Each entry also carries a `max_horizon`: the cone width of some
//! workloads grows exponentially in the horizon, and an unbounded
//! horizon would let a single request monopolise a worker for longer
//! than any deadline. Requests beyond the cap are rejected up front
//! with `horizon-too-large` rather than admitted and shot down later.

use dpioa_core::{compose, Action, Automaton, ExplicitAutomaton, Signature, Value};
use dpioa_prob::Disc;
use dpioa_sched::{DeterministicScheduler, FirstEnabled, Observation, RandomScheduler, Scheduler};
use std::sync::Arc;

/// One servable automaton.
pub struct CatalogEntry {
    /// Wire name (`"coin"`, `"walk-8"`, …).
    pub name: &'static str,
    /// Human description surfaced by `GET /v1/catalog`.
    pub description: &'static str,
    /// Largest horizon a query may ask for.
    pub max_horizon: usize,
    /// The automaton itself (shared across all requests).
    pub automaton: Arc<dyn Automaton>,
}

/// The set of servable automata.
pub struct Catalog {
    entries: Vec<CatalogEntry>,
}

impl Catalog {
    /// The standard workload mix: a dirac-simple coin, a composed coin
    /// bank (exercises composition + lumping), a probabilistic walk
    /// (2^h cone, 8 states — the lumped tier's home turf), and a
    /// fanout mixer (3^h cone — probe-bound, trips budgets first).
    pub fn standard() -> Catalog {
        Catalog {
            entries: vec![
                CatalogEntry {
                    name: "coin",
                    description: "single fair coin flip (1 internal action)",
                    max_horizon: 8,
                    automaton: coin("srv-c0"),
                },
                CatalogEntry {
                    name: "coin-bank-3",
                    description: "parallel composition of 3 independent coins",
                    max_horizon: 8,
                    automaton: compose((0..3).map(|i| coin(&format!("srv-b{i}"))).collect()),
                },
                CatalogEntry {
                    name: "walk-8",
                    description: "probabilistic walk on 8 states (2^h cone, lumpable)",
                    max_horizon: 14,
                    automaton: walk("srv-k", 8),
                },
                CatalogEntry {
                    name: "mixer-4x3",
                    description: "3-way fanout mixer on 4 states (3^h cone, probe-bound)",
                    max_horizon: 9,
                    automaton: mixer("srv-x", 4, 3),
                },
            ],
        }
    }

    /// Entry by wire name.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// All entries, wire order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }
}

/// Wire names accepted for `scheduler`.
pub const SCHEDULER_NAMES: &[&str] = &["first-enabled", "uniform-random", "memoryful-alternate"];

/// Wire names accepted for `observation`.
pub const OBSERVATION_NAMES: &[&str] = &["final-state", "trace"];

/// Resolve a scheduler wire name. `memoryful-alternate` is genuinely
/// history-dependent (first/last enabled action by history-length
/// parity), so it is ineligible for the lumped tier and forces the
/// general exact engine — the catalog's way of letting clients reach
/// every tier of the cascade.
pub fn scheduler_by_name(name: &str) -> Option<Arc<dyn Scheduler>> {
    match name {
        "first-enabled" => Some(Arc::new(FirstEnabled)),
        "uniform-random" => Some(Arc::new(RandomScheduler)),
        "memoryful-alternate" => Some(Arc::new(DeterministicScheduler::new(
            "memoryful-alternate",
            |exec, enabled| {
                if exec.len() % 2 == 0 {
                    enabled.first().copied()
                } else {
                    enabled.last().copied()
                }
            },
        ))),
        _ => None,
    }
}

/// The chaos scheduler behind `expose_chaos`: panics on its very first
/// scheduling decision, deterministically, from inside the engine —
/// exactly where a buggy user-supplied scheduler would. It is *not* in
/// [`SCHEDULER_NAMES`] and `scheduler_by_name` never returns it; the
/// server resolves it explicitly (and only) when chaos is enabled.
/// Memoryful on purpose, so it forces the general exact tier and the
/// panic unwinds through the same path real scheduler code runs on.
pub fn chaos_panic_scheduler() -> Arc<dyn Scheduler> {
    Arc::new(DeterministicScheduler::new(
        "chaos-panic",
        |_exec, _enabled| panic!("chaos-panic scheduler fired (injected fault)"),
    ))
}

/// Resolve an observation wire name.
pub fn observation_by_name(name: &str) -> Option<Observation> {
    match name {
        "final-state" => Some(Observation::final_state()),
        "trace" => Some(Observation::trace()),
        _ => None,
    }
}

fn coin(prefix: &str) -> Arc<dyn Automaton> {
    let flip = Action::named(format!("{prefix}-flip"));
    ExplicitAutomaton::builder(format!("{prefix}-coin"), Value::int(0))
        .state(0, Signature::new([], [], [flip]))
        .state(1, Signature::new([], [], []))
        .state(2, Signature::new([], [], []))
        .transition(
            0,
            flip,
            Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 1),
        )
        .build()
        .shared()
}

fn walk(prefix: &str, n_states: i64) -> Arc<dyn Automaton> {
    let mut b = ExplicitAutomaton::builder(format!("{prefix}-walk{n_states}"), Value::int(0));
    for i in 0..n_states {
        let step = Action::named(format!("{prefix}-w{i}"));
        b = b.state(i, Signature::new([], [], [step])).transition(
            i,
            step,
            Disc::bernoulli_dyadic(
                Value::int((i + 1) % n_states),
                Value::int((i + 2) % n_states),
                1,
                1,
            ),
        );
    }
    b.build().shared()
}

fn mixer(prefix: &str, n_states: i64, fanout: usize) -> Arc<dyn Automaton> {
    let mut b =
        ExplicitAutomaton::builder(format!("{prefix}-mix{n_states}x{fanout}"), Value::int(0));
    for i in 0..n_states {
        let acts: Vec<Action> = (0..fanout)
            .map(|k| Action::named(format!("{prefix}-m{i}a{k}")))
            .collect();
        b = b.state(i, Signature::new([], [], acts.clone()));
        for (k, a) in acts.into_iter().enumerate() {
            b = b.transition(i, a, Disc::dirac(Value::int((i + 1 + k as i64) % n_states)));
        }
    }
    b.build().shared()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::AutomatonExt;
    use std::collections::BTreeSet;

    #[test]
    fn catalog_action_prefixes_are_disjoint() {
        // The shared transition cache keys on (state, action) only; the
        // soundness of sharing it across the whole catalog rests on no
        // two entries ever enabling an identically-named action. Walk
        // every entry's reachable states and collect every enabled
        // action name across the catalog.
        let catalog = Catalog::standard();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for entry in catalog.entries() {
            let auto = entry.automaton.as_ref();
            let mut frontier = vec![auto.start_state()];
            let mut visited: Vec<Value> = Vec::new();
            let mut names: BTreeSet<String> = BTreeSet::new();
            while let Some(q) = frontier.pop() {
                if visited.contains(&q) {
                    continue;
                }
                for a in auto.signature(&q).all().iter() {
                    names.insert(a.name());
                }
                for a in auto.locally_controlled(&q) {
                    if let Some(eta) = auto.transition(&q, a) {
                        for (q2, _) in eta.iter() {
                            frontier.push(q2.clone());
                        }
                    }
                }
                visited.push(q);
            }
            for name in names {
                assert!(
                    seen.insert(name.clone()),
                    "action {name:?} appears in two catalog entries"
                );
            }
        }
    }

    #[test]
    fn every_wire_name_resolves() {
        let catalog = Catalog::standard();
        for e in catalog.entries() {
            assert!(catalog.get(e.name).is_some());
            assert!(e.max_horizon > 0);
        }
        for s in SCHEDULER_NAMES {
            assert!(scheduler_by_name(s).is_some(), "{s}");
        }
        for o in OBSERVATION_NAMES {
            assert!(observation_by_name(o).is_some(), "{o}");
        }
        assert!(catalog.get("nope").is_none());
        assert!(scheduler_by_name("nope").is_none());
        assert!(observation_by_name("nope").is_none());
    }

    #[test]
    fn memoryful_scheduler_is_not_memoryless() {
        let s = scheduler_by_name("memoryful-alternate").unwrap();
        let auto = Catalog::standard().get("walk-8").unwrap().automaton.clone();
        assert!(
            s.schedule_memoryless(auto.as_ref(), 0, &auto.start_state())
                .is_none(),
            "memoryful-alternate must force the general exact tier"
        );
    }
}
