//! A minimal blocking HTTP client plus the chaos helpers the load
//! tests use to misbehave on purpose.
//!
//! The well-behaved path is [`Client`]: one connection per exchange
//! (`Connection: close`), which doubles as a per-request exercise of
//! the server's accept/shed path. The chaos helpers speak raw bytes:
//! [`fire_and_disconnect`] abandons a query mid-flight (driving the
//! server's disconnect watcher), [`send_garbage`] probes the malformed
//! path, and [`stall`] opens a connection and trickles — the slowloris
//! shape the read timeout must defeat.

use crate::json::Json;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed client-side response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl Response {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.body)
    }
}

/// A one-connection-per-request HTTP client.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (`host:port`) with a 30 s exchange timeout
    /// (queries can legitimately take their full server-side
    /// deadline).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the exchange timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// One full exchange: connect, send, read to EOF, parse.
    pub fn request(&self, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        read_response(&mut stream)
    }

    /// `GET path`.
    pub fn get(&self, path: &str) -> io::Result<Response> {
        self.request("GET", path, None)
    }

    /// `POST /v1/query` with a JSON body.
    pub fn query(&self, body: &str) -> io::Result<Response> {
        self.request("POST", "/v1/query", Some(body))
    }
}

/// Read a complete response off `stream` (to EOF — the client always
/// sends `Connection: close`).
fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
        // Stop early once the declared body is complete, in case the
        // server keeps the socket open.
        if let Some((status, headers, body_start)) = parse_head(&raw) {
            if let Some(len) = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse::<usize>().ok())
            {
                if raw.len() >= body_start + len {
                    let body =
                        String::from_utf8_lossy(&raw[body_start..body_start + len]).into_owned();
                    return Ok(Response {
                        status,
                        headers,
                        body,
                    });
                }
            }
        }
    }
    let (status, headers, body_start) = parse_head(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated response"))?;
    Ok(Response {
        status,
        headers,
        body: String::from_utf8_lossy(&raw[body_start..]).into_owned(),
    })
}

#[allow(clippy::type_complexity)]
fn parse_head(raw: &[u8]) -> Option<(u16, Vec<(String, String)>, usize)> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status = status_line.split(' ').nth(1)?.parse::<u16>().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Some((status, headers, head_end + 4))
}

/// Send a full query request, then abandon the socket without reading
/// the response — from the server's side the client disconnects while
/// the query runs. Returns once the socket is dropped.
pub fn fire_and_disconnect(addr: &str, query_body: &str) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let head = format!(
        "POST /v1/query HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        query_body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(query_body.as_bytes())?;
    stream.flush()?;
    stream.shutdown(std::net::Shutdown::Both).ok();
    Ok(())
}

/// Send raw garbage and report the status the server answered with
/// (`None` when it just closed the socket).
pub fn send_garbage(addr: &str, garbage: &[u8]) -> io::Result<Option<u16>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(garbage)?;
    stream.flush()?;
    Ok(read_response(&mut stream).ok().map(|r| r.status))
}

/// Open a connection, send a partial request head, and hold the socket
/// silent — the slowloris probe. Returns the status the server
/// eventually answers (expected: `408`), or `None` if it just closed.
pub fn stall(addr: &str, partial: &[u8], hold: Duration) -> io::Result<Option<u16>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(hold + Duration::from_secs(10)))?;
    stream.write_all(partial)?;
    stream.flush()?;
    Ok(read_response(&mut stream).ok().map(|r| r.status))
}
