//! Minimal HTTP/1.1 over `std::net::TcpStream`.
//!
//! The build environment is std-only, so the server hand-rolls the
//! wire protocol: a bounded request reader hardened against the
//! classic abuse shapes — slowloris (per-socket read timeout), header
//! bombs ([`Limits::max_head_bytes`]), body bombs
//! ([`Limits::max_body_bytes`]) — and a response writer that always
//! emits `Content-Length` so connections can be kept alive or closed
//! deterministically.
//!
//! Only what the query protocol needs is implemented: `GET`/`POST`,
//! `Content-Length` bodies (no chunked encoding), and the
//! `Connection: close` / keep-alive negotiation.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-connection protocol limits.
#[derive(Clone, Debug)]
pub struct Limits {
    /// Cap on request line + headers, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length`.
    pub max_body_bytes: usize,
    /// Socket read timeout (anti-slowloris: a client that trickles its
    /// request slower than this gets `408` and the socket back).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any request bytes — the keep-alive peer went
    /// away between requests. Not an error worth answering.
    Closed,
    /// The socket read timed out mid-request.
    Timeout,
    /// Head or body exceeded its byte limit.
    TooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The bytes were not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// Transport failure.
    Io(io::Error),
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the peer, taken verbatim).
    pub method: String,
    /// Request target, e.g. `/v1/query`.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the peer asked for the connection to be closed after
    /// this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read one request off `stream`, honouring `limits`. The caller is
/// expected to have applied `limits.read_timeout` to the socket.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];

    // Accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(ReadError::TooLarge {
                limit: limits.max_head_bytes,
            });
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return Err(ReadError::Closed),
            Ok(0) => return Err(ReadError::Malformed("eof mid-head".into())),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(ReadError::Timeout),
            Err(e) => return Err(ReadError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("non-utf8 head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!("bad version {version:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(ReadError::TooLarge {
            limit: limits.max_body_bytes,
        });
    }

    // The body: whatever followed the head in `buf`, topped up from
    // the socket to the declared length.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        // Pipelined bytes beyond this request are unsupported — the
        // protocol is strictly request/response per exchange.
        return Err(ReadError::Malformed("bytes beyond content-length".into()));
    }
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Malformed("eof mid-body".into())),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(ReadError::Timeout),
            Err(e) => return Err(ReadError::Io(e)),
        }
        if body.len() > content_length {
            return Err(ReadError::Malformed("bytes beyond content-length".into()));
        }
    }

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Write a complete response. `extra_headers` come after the standard
/// `Content-Type` / `Content-Length` pair.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// The reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn exchange(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Hold the socket open so the server sees a stall, not EOF.
            thread::sleep(Duration::from_millis(300));
        });
        let (mut conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let out = read_request(&mut conn, &Limits::default());
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = exchange(b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn garbage_and_stalls_are_rejected_not_hung() {
        assert!(matches!(
            exchange(b"NONSENSE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        // A partial head followed by silence must time out.
        assert!(matches!(
            exchange(b"GET /healthz HT"),
            Err(ReadError::Timeout)
        ));
        // A declared body that never arrives must time out too.
        assert!(matches!(
            exchange(b"POST /v1/query HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"),
            Err(ReadError::Timeout)
        ));
    }

    #[test]
    fn oversized_bodies_are_refused_up_front() {
        let huge = format!(
            "POST /v1/query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            usize::MAX / 2
        );
        assert!(matches!(
            exchange(huge.as_bytes()),
            Err(ReadError::TooLarge { .. })
        ));
    }
}
