//! A dependency-free JSON value: parser and writer.
//!
//! The build environment has no registry access, so the wire layer
//! cannot use `serde`. This module implements the subset of JSON the
//! server protocol needs — objects, arrays, strings with the standard
//! escapes, `f64` numbers, booleans, null — with a recursive-descent
//! parser hardened for untrusted input: a depth limit (stack safety
//! against `[[[[…`), strict UTF-8 (inputs arrive as `&str`), and no
//! recursion on strings or numbers. Object member order is preserved
//! so rendered output is deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`Json::parse`]; beyond it the
/// input is rejected rather than risking stack exhaustion.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, member order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            at: 0,
        };
        p.ws();
        let v = p.value(0)?;
        p.ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other shapes / missing).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives, and over-2^53 values).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON text. Numbers use Rust's shortest
    /// round-trip formatting; non-finite numbers render as `null`
    /// (JSON has no NaN/∞).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Build a [`Json::Obj`] from `(key, value)` pairs — the writer-side
/// convenience the response builders use.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A `Json::Str` from anything displayable.
pub fn s(v: impl ToString) -> Json {
    Json::Str(v.to_string())
}

/// A `Json::Num` from anything convertible to f64 losslessly enough
/// for wire counters.
pub fn n(v: f64) -> Json {
    Json::Num(v)
}

/// A `Json::Num` from an integer counter.
pub fn nu(v: u64) -> Json {
    Json::Num(v as f64)
}

/// `Some ↦ value, None ↦ null`.
pub fn opt(v: Option<Json>) -> Json {
    v.unwrap_or(Json::Null)
}

/// JSON-escape `s` (with surrounding quotes) into `out`.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.at))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.at))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b']') => {
                            self.at += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.at)),
                    }
                }
            }
            Some(b'{') => {
                self.at += 1;
                let mut members = Vec::new();
                let mut seen: BTreeMap<String, ()> = BTreeMap::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    if seen.insert(key.clone(), ()).is_some() {
                        return Err(format!("duplicate key {key:?}"));
                    }
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    let val = self.value(depth + 1)?;
                    members.push((key, val));
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.at += 1,
                        Some(b'}') => {
                            self.at += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.at)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.at)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.at) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.at += 4;
                            // Surrogates outside the BMP are replaced;
                            // the protocol never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.at)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let doc = r#"{"automaton":"coin","horizon":6,"budget":{"deadline_ms":250,"max_entries":null},"tags":["a","b"],"chaos":false,"p":0.125}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("automaton").unwrap().as_str(), Some("coin"));
        assert_eq!(v.get("horizon").unwrap().as_u64(), Some(6));
        assert_eq!(
            v.get("budget")
                .unwrap()
                .get("deadline_ms")
                .unwrap()
                .as_u64(),
            Some(250)
        );
        assert_eq!(
            v.get("budget").unwrap().get("max_entries"),
            Some(&Json::Null)
        );
        assert_eq!(v.get("chaos").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("p").unwrap().as_f64(), Some(0.125));
        // Render → parse is the identity on the value.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "\"unterminated",
            "{\"a\":1}garbage",
            "{\"a\":1,\"a\":2}",
            "01e",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb is rejected, not a stack overflow.
        let bomb = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn escapes_are_decoded_and_re_encoded() {
        let v = Json::parse(r#""line\n\"quoted\"\tA""#).unwrap();
        assert_eq!(v.as_str(), Some("line\n\"quoted\"\tA"));
        assert_eq!(v.render(), r#""line\n\"quoted\"\tA""#);
        let ctl = Json::Str("\u{1}".into());
        assert_eq!(ctl.render(), "\"\\u0001\"");
    }
}
