//! # dpioa-server — emulation as a service
//!
//! A fault-tolerant query server over the robust engine cascade
//! ([`dpioa_sched::robust_observation_dist`]): clients POST a query
//! naming a catalog automaton, a scheduler, a horizon, and an
//! observation; the server answers with the observation distribution
//! plus the full [`dpioa_sched::Provenance`] record (which engine tier
//! answered, with what error bound, whether the circuit breaker was
//! open).
//!
//! The crate is **std-only by construction** — the build environment
//! has no registry access — so HTTP/1.1 ([`http`]), JSON ([`json`]),
//! and the client ([`client`]) are hand-rolled over `std::net` /
//! `std::io`.
//!
//! Robustness is the headline, not an afterthought:
//!
//! * **Per-request revocation** — every query runs under its own
//!   [`dpioa_sched::Budget`] carrying a fresh
//!   [`dpioa_core::CancelToken`]; a dedicated watcher thread detects
//!   client disconnects and flips the token, so an abandoned query
//!   unwinds at its next engine grain instead of burning a worker.
//! * **Load shedding** — the accept→worker queue is bounded; overflow
//!   is answered `503` with `Retry-After` and an explicit
//!   `overloaded` error body.
//! * **Anti-slowloris** — per-socket read/write timeouts and
//!   head/body byte caps ([`http::Limits`]).
//! * **Cache admission** — the shared [`dpioa_sched::EngineCache`]
//!   uses per-automaton-family admission quotas
//!   ([`dpioa_sched::EngineCache::bounded_with_admission`]) so an
//!   adversarial query mix cannot evict every hot entry.
//! * **Circuit breaking** — a shared [`dpioa_sched::CircuitBreaker`]
//!   with cooldown/half-open probing skips the exact tiers for
//!   automata that keep failing them.
//! * **Observability** — `GET /metrics` renders every counter
//!   (requests, sheds, cancellations with unwind latency, per-engine
//!   answers, cache family occupancy, breaker transitions) in
//!   Prometheus text format.
//!
//! ## Endpoints
//!
//! | Method | Path | Purpose |
//! |---|---|---|
//! | `POST` | `/v1/query` | run a query (JSON body) |
//! | `GET` | `/v1/catalog` | list automata / schedulers / observations |
//! | `GET` | `/metrics` | Prometheus text metrics |
//! | `GET` | `/healthz` | liveness |
//! | `POST` | `/shutdown` | graceful shutdown |
//!
//! Error bodies are `{"error":{"code","detail","retryable"}}` with
//! stable codes: the engine taxonomy from
//! [`dpioa_sched::EngineError::code`] plus the server-side codes
//! `malformed-request`, `unknown-automaton`, `unknown-scheduler`,
//! `unknown-observation`, `horizon-too-large`, `request-timeout`,
//! `payload-too-large`, `overloaded`, `not-found`,
//! `method-not-allowed`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;

pub use catalog::{Catalog, CatalogEntry};
pub use client::{fire_and_disconnect, send_garbage, stall, Client, Response};
pub use http::Limits;
pub use json::Json;
pub use metrics::ServerMetrics;
pub use server::{serve, ServerConfig, ServerHandle};
