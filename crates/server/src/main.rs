//! `dpioa-serve` — run the query server from the command line.
//!
//! ```text
//! dpioa-serve [--addr 127.0.0.1:7341] [--workers 4] [--queue 64]
//!             [--cache-entries 16384] [--deadline-ms 2000]
//!             [--read-timeout-ms 5000] [--store-dir PATH]
//!             [--persist-every-ms 30000] [--chaos]
//!             [--store-fault-seed N] [--store-fault-rate PCT]
//! ```
//!
//! `--chaos` enables the deterministic fault hooks (the `chaos-panic`
//! scheduler and `POST /chaos/panic-worker`); `--store-fault-seed` /
//! `--store-fault-rate` swap the store's IO plane for a seeded
//! [`dpioa_store::FaultVfs`] injecting that percentage of faults.
//! All three are for chaos drills — never set them in production.
//!
//! Prints `listening on http://<addr>` once bound (scripts parse this
//! line for the resolved port when `--addr` ends in `:0`), then serves
//! until `POST /shutdown`.

use dpioa_server::server::{serve, ServerConfig};
use dpioa_store::FaultVfs;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7341".into(),
        ..ServerConfig::default()
    };
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate: u32 = 10;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a {what}")))
        };
        match flag.as_str() {
            "--addr" => config.addr = take("host:port"),
            "--workers" => config.workers = parse(&take("count"), &flag),
            "--queue" => config.queue_capacity = parse(&take("count"), &flag),
            "--cache-entries" => config.cache_entries = parse(&take("count"), &flag),
            "--deadline-ms" => config.default_deadline_ms = parse(&take("ms"), &flag),
            "--read-timeout-ms" => {
                config.limits.read_timeout = Duration::from_millis(parse(&take("ms"), &flag));
            }
            "--store-dir" => config.store_dir = Some(take("path").into()),
            "--persist-every-ms" => {
                config.persist_every = Some(Duration::from_millis(parse(&take("ms"), &flag)));
            }
            "--chaos" => config.expose_chaos = true,
            "--store-fault-seed" => fault_seed = Some(parse(&take("seed"), &flag)),
            "--store-fault-rate" => fault_rate = parse(&take("percent"), &flag),
            "--help" | "-h" => {
                println!(
                    "usage: dpioa-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache-entries N] [--deadline-ms N] [--read-timeout-ms N] \
                     [--store-dir PATH] [--persist-every-ms N] [--chaos] \
                     [--store-fault-seed N] [--store-fault-rate PCT]"
                );
                return;
            }
            other => die(&format!("unknown flag {other:?} (try --help)")),
        }
    }

    if let Some(seed) = fault_seed {
        config.vfs = Arc::new(FaultVfs::seeded(seed, fault_rate));
    }

    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => die(&format!("bind failed: {e}")),
    };
    println!("listening on http://{}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.wait();
    println!("shut down cleanly");
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value {s:?} for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("dpioa-serve: {msg}");
    std::process::exit(2);
}
