//! Live server counters and the `/metrics` text rendering.
//!
//! All counters are lock-free atomics bumped on the request path;
//! rendering takes no locks beyond the engine-side stats snapshots
//! ([`dpioa_sched::EngineCache::stats`],
//! [`dpioa_sched::CircuitBreaker::stats`]), so scraping `/metrics`
//! never stalls query traffic. The output is Prometheus text
//! exposition format (`name value` lines, `{label="…"}` for the
//! per-family cache series).

use dpioa_sched::{CircuitBreaker, EngineCache, EngineKind};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Shared request-path counters.
#[derive(Default)]
pub struct ServerMetrics {
    /// Connections accepted (including ones later shed).
    pub accepted: AtomicU64,
    /// Requests fully parsed off a connection.
    pub requests: AtomicU64,
    /// `2xx` responses written.
    pub ok: AtomicU64,
    /// `4xx` responses written.
    pub client_errors: AtomicU64,
    /// `5xx` responses written (excluding sheds).
    pub server_errors: AtomicU64,
    /// Connections refused with `503 overloaded` because the work
    /// queue was full.
    pub shed: AtomicU64,
    /// Requests that timed out while being read (`408`).
    pub read_timeouts: AtomicU64,
    /// Requests rejected for size (`413`).
    pub too_large: AtomicU64,
    /// Requests rejected as malformed (`400` at the HTTP layer).
    pub malformed: AtomicU64,
    /// Queries cancelled because their client disconnected mid-flight.
    pub cancelled: AtomicU64,
    /// Total observed cancel→unwind latency, nanoseconds.
    pub cancel_latency_ns_total: AtomicU64,
    /// Worst observed cancel→unwind latency, nanoseconds.
    pub cancel_latency_ns_max: AtomicU64,
    /// Queries answered by the lumped exact tier.
    pub engine_lumped: AtomicU64,
    /// Queries answered by the general exact tier.
    pub engine_exact: AtomicU64,
    /// Queries answered by pure Monte-Carlo fallback.
    pub engine_monte_carlo: AtomicU64,
    /// Queries answered by checkpoint-salvage hybrid.
    pub engine_hybrid: AtomicU64,
    /// Queries that found the circuit breaker open.
    pub breaker_skips: AtomicU64,
    /// Queries answered as a member of a coalesced batch (fan-out
    /// counted per member, so this counts *queries*, not batches).
    pub batched_queries: AtomicU64,
    /// Queries that joined an already-forming batch instead of
    /// starting their own expansion (fan-out minus leaders).
    pub coalesce_hits: AtomicU64,
    /// Coalesced batches executed (leaders).
    pub batches: AtomicU64,
    /// Largest fan-out (member count) observed in a single batch.
    pub batch_fanout_max: AtomicU64,
    /// Store loads that found a usable file (boot warm starts and
    /// checkpoint resumes both count).
    pub store_hits: AtomicU64,
    /// Store loads that came up cold: no file yet, or a file made
    /// stale by a structure or format change.
    pub store_misses: AtomicU64,
    /// Store reads/writes that failed for non-cold reasons
    /// (corruption, truncation, I/O).
    pub store_errors: AtomicU64,
    /// Cache snapshots committed to disk (periodic, `/persist`, and
    /// shutdown).
    pub store_snapshots: AtomicU64,
    /// Cache rows (transitions + choices) streamed in by warm starts.
    pub store_entries_loaded: AtomicU64,
    /// Warm-start rows turned away by cache admission quotas.
    pub store_rejected: AtomicU64,
    /// Budget-tripped query checkpoints persisted to disk.
    pub store_checkpoints: AtomicU64,
    /// Queries resumed from a persisted checkpoint.
    pub store_resumes: AtomicU64,
    /// Per-request panics caught by the worker's unwind shield (each
    /// answered with a stable `500 worker-panic`).
    pub worker_panics: AtomicU64,
    /// Worker / persist threads respawned by the supervisor after an
    /// uncaught death.
    pub worker_restarts: AtomicU64,
    /// Background persist passes that failed (the persist thread backs
    /// off and keeps running).
    pub persist_errors: AtomicU64,
    /// Transient store IO faults absorbed by retry-with-backoff.
    pub io_retries: AtomicU64,
    /// Store files that failed validation at boot and were moved aside
    /// to `*.quarantine` instead of blocking warm start.
    pub quarantined_files: AtomicU64,
    /// Query identities quarantined by the poisoned-query breaker
    /// (served `422 query-quarantined` from then on).
    pub query_quarantines: AtomicU64,
    /// Total service time (parse→response), nanoseconds.
    pub service_ns_total: AtomicU64,
    /// Connections currently queued for a worker.
    pub queue_depth: AtomicUsize,
    /// Queries currently executing.
    pub in_flight: AtomicUsize,
    /// Worker threads currently alive (supervisor-maintained gauge).
    pub workers_alive: AtomicUsize,
}

impl ServerMetrics {
    /// Bump the per-engine answer counter.
    pub fn record_engine(&self, kind: EngineKind, breaker_open: bool) {
        let c = match kind {
            EngineKind::Lumped => &self.engine_lumped,
            EngineKind::Exact => &self.engine_exact,
            EngineKind::MonteCarlo => &self.engine_monte_carlo,
            EngineKind::Hybrid => &self.engine_hybrid,
        };
        c.fetch_add(1, Ordering::Relaxed);
        if breaker_open {
            self.breaker_skips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one disconnect-triggered cancellation and how long the
    /// engine took to unwind after the token flipped.
    pub fn record_cancel(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.cancelled.fetch_add(1, Ordering::Relaxed);
        self.cancel_latency_ns_total
            .fetch_add(ns, Ordering::Relaxed);
        self.cancel_latency_ns_max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record one executed batch of `fanout` coalesced queries. The
    /// leader counts as a batched query but not a coalesce hit.
    pub fn record_batch(&self, fanout: usize) {
        let fanout = fanout as u64;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(fanout, Ordering::Relaxed);
        self.coalesce_hits
            .fetch_add(fanout.saturating_sub(1), Ordering::Relaxed);
        self.batch_fanout_max.fetch_max(fanout, Ordering::Relaxed);
    }

    /// Bump the response-class counter for a written status.
    pub fn record_status(&self, status: u16) {
        match status {
            200..=299 => self.ok.fetch_add(1, Ordering::Relaxed),
            400..=499 => self.client_errors.fetch_add(1, Ordering::Relaxed),
            _ => self.server_errors.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Render the Prometheus text page: server counters, then engine
    /// cache stats (global + per automaton family), then stratum-table
    /// stats, then breaker stats.
    pub fn render(&self, cache: &EngineCache, breaker: &CircuitBreaker) -> String {
        let mut out = String::with_capacity(2048);
        fn line(out: &mut String, name: &str, v: u64) {
            let _ = writeln!(out, "dpioa_{name} {v}");
        }
        line(
            &mut out,
            "accepted_total",
            self.accepted.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "requests_total",
            self.requests.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "responses_ok_total",
            self.ok.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "responses_client_error_total",
            self.client_errors.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "responses_server_error_total",
            self.server_errors.load(Ordering::Relaxed),
        );
        line(&mut out, "shed_total", self.shed.load(Ordering::Relaxed));
        line(
            &mut out,
            "read_timeouts_total",
            self.read_timeouts.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "too_large_total",
            self.too_large.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "malformed_total",
            self.malformed.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "cancelled_total",
            self.cancelled.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "cancel_latency_ns_total",
            self.cancel_latency_ns_total.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "cancel_latency_ns_max",
            self.cancel_latency_ns_max.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "engine_answers_total{engine=\"lumped\"}",
            self.engine_lumped.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "engine_answers_total{engine=\"exact\"}",
            self.engine_exact.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "engine_answers_total{engine=\"monte-carlo\"}",
            self.engine_monte_carlo.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "engine_answers_total{engine=\"hybrid\"}",
            self.engine_hybrid.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "breaker_skips_total",
            self.breaker_skips.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "batched_queries_total",
            self.batched_queries.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "coalesce_hits_total",
            self.coalesce_hits.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "batches_total",
            self.batches.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "batch_fanout_max",
            self.batch_fanout_max.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "store_hits_total",
            self.store_hits.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "store_misses_total",
            self.store_misses.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "store_errors_total",
            self.store_errors.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "store_snapshots_total",
            self.store_snapshots.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "store_entries_loaded_total",
            self.store_entries_loaded.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "store_rejected_total",
            self.store_rejected.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "store_checkpoints_total",
            self.store_checkpoints.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "store_resumes_total",
            self.store_resumes.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "worker_panics_total",
            self.worker_panics.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "worker_restarts_total",
            self.worker_restarts.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "persist_errors_total",
            self.persist_errors.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "io_retries_total",
            self.io_retries.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "quarantined_files_total",
            self.quarantined_files.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "query_quarantines_total",
            self.query_quarantines.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "workers_alive",
            self.workers_alive.load(Ordering::Relaxed) as u64,
        );
        line(
            &mut out,
            "service_ns_total",
            self.service_ns_total.load(Ordering::Relaxed),
        );
        line(
            &mut out,
            "queue_depth",
            self.queue_depth.load(Ordering::Relaxed) as u64,
        );
        line(
            &mut out,
            "in_flight",
            self.in_flight.load(Ordering::Relaxed) as u64,
        );

        let t = cache.stats();
        line(&mut out, "cache_hits_total", t.hits);
        line(&mut out, "cache_misses_total", t.misses);
        line(&mut out, "cache_evictions_total", t.evictions);
        line(
            &mut out,
            "cache_self_evictions_total",
            cache.self_evictions(),
        );
        if let Some(cap) = cache.transition_capacity() {
            line(&mut out, "cache_transition_capacity", cap as u64);
        }
        line(
            &mut out,
            "cache_transition_entries",
            cache.transition_entries() as u64,
        );
        if let Some(quota) = cache.family_quota() {
            line(&mut out, "cache_family_quota", quota as u64);
        }
        for (family, entries) in cache.family_entries() {
            let _ = writeln!(
                out,
                "dpioa_cache_family_entries{{family=\"{}\"}} {entries}",
                family.replace('"', "'")
            );
        }

        let s = cache.strata_stats();
        line(&mut out, "strata_deposits_total", s.deposits);
        line(&mut out, "strata_hits_total", s.hits);
        line(&mut out, "strata_misses_total", s.misses);
        line(&mut out, "strata_rejected_total", s.rejected);
        line(&mut out, "strata_evictions_total", s.evictions);
        line(&mut out, "strata_bytes_total", s.bytes);
        line(&mut out, "strata_entries", s.entries);

        let b = breaker.stats();
        line(&mut out, "breaker_trips_total", b.trips);
        line(&mut out, "breaker_reopens_total", b.reopens);
        line(&mut out, "breaker_closes_total", b.closes);
        line(
            &mut out,
            "breaker_half_open_probes_total",
            b.half_open_probes,
        );
        line(&mut out, "breaker_open_keys", b.open_keys as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_sched::EngineCache;

    #[test]
    fn render_is_stable_prometheus_text() {
        let m = ServerMetrics::default();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.record_status(200);
        m.record_status(400);
        m.record_status(503);
        m.record_engine(EngineKind::Lumped, false);
        m.record_engine(EngineKind::Hybrid, true);
        m.record_cancel(Duration::from_micros(250));
        m.record_batch(3);
        m.store_hits.fetch_add(1, Ordering::Relaxed);
        m.store_entries_loaded.fetch_add(17, Ordering::Relaxed);
        m.store_snapshots.fetch_add(2, Ordering::Relaxed);
        m.worker_panics.fetch_add(1, Ordering::Relaxed);
        m.io_retries.fetch_add(4, Ordering::Relaxed);
        let cache = EngineCache::bounded_with_admission(64, 0.5);
        let breaker = CircuitBreaker::new(3);
        let page = m.render(&cache, &breaker);
        for needle in [
            "dpioa_requests_total 3",
            "dpioa_responses_ok_total 1",
            "dpioa_responses_client_error_total 1",
            "dpioa_responses_server_error_total 1",
            "dpioa_engine_answers_total{engine=\"lumped\"} 1",
            "dpioa_engine_answers_total{engine=\"hybrid\"} 1",
            "dpioa_breaker_skips_total 1",
            "dpioa_cancelled_total 1",
            "dpioa_cancel_latency_ns_max 250000",
            "dpioa_batched_queries_total 3",
            "dpioa_coalesce_hits_total 2",
            "dpioa_batches_total 1",
            "dpioa_batch_fanout_max 3",
            "dpioa_cache_family_quota",
            "dpioa_breaker_open_keys 0",
            "dpioa_store_hits_total 1",
            "dpioa_store_misses_total 0",
            "dpioa_store_entries_loaded_total 17",
            "dpioa_store_snapshots_total 2",
            "dpioa_store_checkpoints_total 0",
            "dpioa_store_resumes_total 0",
            "dpioa_worker_panics_total 1",
            "dpioa_worker_restarts_total 0",
            "dpioa_persist_errors_total 0",
            "dpioa_io_retries_total 4",
            "dpioa_quarantined_files_total 0",
            "dpioa_query_quarantines_total 0",
            "dpioa_workers_alive 0",
            "dpioa_strata_deposits_total 0",
            "dpioa_strata_hits_total 0",
            "dpioa_strata_evictions_total 0",
            "dpioa_strata_bytes_total 0",
        ] {
            assert!(page.contains(needle), "missing {needle:?} in:\n{page}");
        }
        // Every line is `name value`.
        for l in page.lines() {
            assert_eq!(l.split(' ').count(), 2, "bad line {l:?}");
        }
    }
}
