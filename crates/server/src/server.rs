//! The query server: threaded acceptor, bounded work queue with load
//! shedding, per-request budgets and cancellation, and a disconnect
//! watcher that revokes abandoned queries mid-grain.
//!
//! # Threading model
//!
//! ```text
//!            ┌───────────┐   bounded queue    ┌──────────┐
//!  clients ──► acceptor  ├────────────────────► worker ×N ├──► robust_observation_dist
//!            │ (nonblock)│  full → 503 shed   └────┬─────┘
//!            └───────────┘                         │ register (probe, CancelToken)
//!                                             ┌────▼─────┐
//!                                             │ watcher  │ peeks in-flight sockets;
//!                                             └──────────┘ disconnect → token.cancel()
//! ```
//!
//! * The **acceptor** runs a nonblocking accept loop. Each connection
//!   gets its socket timeouts applied immediately, then is offered to
//!   the bounded queue; when the queue is full the acceptor answers
//!   `503` with `Retry-After` and an explicit `overloaded` error body
//!   — load is *shed*, never silently dropped or queued unboundedly.
//! * **Workers** pop connections and run the keep-alive request loop.
//!   Every query executes under its own [`Budget`] (entry cap +
//!   deadline + a fresh [`CancelToken`]) against the shared
//!   [`EngineCache`] and [`CircuitBreaker`].
//! * The **watcher** polls a nonblocking clone of every in-flight
//!   socket. A half-closed or reset socket means the client is gone:
//!   the watcher flips that query's token, the engine unwinds at its
//!   next budget grain, and the worker records the cancel→unwind
//!   latency instead of writing a response nobody would read.
//!
//! Graceful shutdown is `POST /shutdown`: the flag stops the acceptor,
//! workers finish their current exchange and exit, and
//! [`ServerHandle::wait`] joins everything.

use crate::catalog::{self, Catalog, CatalogEntry};
use crate::http::{self, Limits, ReadError, Request};
use crate::json::{self, Json};
use crate::metrics::ServerMetrics;
use dpioa_core::fxhash::FxHashMap;
use dpioa_core::fxhash::FxHasher;
use dpioa_core::sync::{lock_recover, write_recover};
use dpioa_core::{CancelToken, Value};
use dpioa_prob::Disc;
use dpioa_sched::{
    robust_observation_dist_resumable, try_batch_execution_measures, BatchMember, BatchProjection,
    Budget, Checkpoint, CircuitBreaker, EngineCache, EngineError, EngineKind, Observation,
    ParallelPolicy, Provenance, RobustConfig, Scheduler, StrataConfig,
};
use dpioa_store::{
    automaton_fingerprint, combined_fingerprint, load_checkpoint_with, load_strata_with,
    quarantine_file, save_checkpoint_with, save_strata_with, EngineCacheStoreExt, RealVfs,
    RetryPolicy, SnapshotStats, StoreError, Vfs,
};
use std::collections::HashMap;
use std::hash::Hasher as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server tuning knobs. The defaults are sized for the CI smoke
/// environment: small queue so shedding is easy to provoke, short
/// deadlines so nothing outlives a test.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads popping the connection queue.
    pub workers: usize,
    /// Connection queue capacity; beyond it the acceptor sheds.
    pub queue_capacity: usize,
    /// HTTP read/write limits applied to every connection.
    pub limits: Limits,
    /// Shared engine-cache entry bound.
    pub cache_entries: usize,
    /// Per-automaton-family admission fraction for the cache
    /// ([`EngineCache::bounded_with_admission`]).
    pub cache_family_frac: f64,
    /// Consecutive exact-tier failures before the breaker opens.
    pub breaker_threshold: u32,
    /// Breaker cooldown before a half-open probe is admitted.
    pub breaker_cooldown: Duration,
    /// Exact-tier worker lanes per query.
    pub exact_threads: usize,
    /// Monte-Carlo worker lanes per query.
    pub mc_threads: usize,
    /// `mc_samples` when the query does not ask.
    pub default_mc_samples: usize,
    /// Hard cap on requested `mc_samples`.
    pub max_mc_samples: usize,
    /// Per-query deadline when the query does not ask, milliseconds.
    pub default_deadline_ms: u64,
    /// Hard cap on requested deadlines, milliseconds.
    pub max_deadline_ms: u64,
    /// Hard cap on requested `budget.max_entries` (also the default).
    pub max_entries_cap: usize,
    /// `Retry-After` hint handed to shed clients, milliseconds.
    pub retry_after_ms: u64,
    /// Disconnect-watcher poll period.
    pub watcher_poll: Duration,
    /// How long the first query of a (automaton, scheduler,
    /// observation) key waits for compatible queries to coalesce into
    /// one batched expansion before running. Zero disables coalescing.
    pub coalesce_window: Duration,
    /// Depth stride at which successful exact expansions deposit
    /// resumable strata into the shared cache
    /// ([`EngineCache::deposit_stratum`]). `0` disables deposits but
    /// still consults strata already resident (e.g. warm-started).
    pub strata_stride: usize,
    /// Directory for persistent cache snapshots and query checkpoints
    /// (`dpioa-store` files). `None` disables the store entirely.
    pub store_dir: Option<PathBuf>,
    /// Period of the background snapshot thread. `None` still
    /// snapshots on `POST /persist` and graceful shutdown when a
    /// `store_dir` is configured.
    pub persist_every: Option<Duration>,
    /// The IO plane every store read/write goes through. Production
    /// keeps the default [`RealVfs`]; chaos runs swap in a seeded
    /// [`dpioa_store::FaultVfs`].
    pub vfs: Arc<dyn Vfs>,
    /// Caught per-request panics on one query identity before the
    /// poisoned-query breaker quarantines that identity (stable `422
    /// query-quarantined` instead of a crash loop).
    pub poison_threshold: u32,
    /// Cap on the supervisor's exponential restart backoff (worker and
    /// persist respawns double from 50ms up to this).
    pub restart_backoff_max: Duration,
    /// Expose the deterministic chaos hooks: the `chaos-panic`
    /// scheduler and `POST /chaos/panic-worker`. Off in production;
    /// tests and the chaos bench switch it on.
    pub expose_chaos: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            limits: Limits::default(),
            cache_entries: 1 << 14,
            cache_family_frac: 0.5,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            exact_threads: 2,
            mc_threads: 2,
            default_mc_samples: 20_000,
            max_mc_samples: 200_000,
            default_deadline_ms: 2_000,
            max_deadline_ms: 10_000,
            max_entries_cap: 1 << 16,
            retry_after_ms: 50,
            watcher_poll: Duration::from_millis(5),
            coalesce_window: Duration::from_millis(2),
            strata_stride: 4,
            store_dir: None,
            persist_every: None,
            vfs: Arc::new(RealVfs),
            poison_threshold: 3,
            restart_backoff_max: Duration::from_secs(1),
            expose_chaos: false,
        }
    }
}

/// Fixed Monte-Carlo base seed: identical queries get bit-identical
/// answers across requests and server restarts, which is what the
/// bit-identity robustness tests assert.
const SERVER_MC_SEED: u64 = 0xD10A_5EED;

struct ConnQueue {
    slots: Mutex<std::collections::VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            slots: Mutex::new(std::collections::VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Offer a connection; gives it back when the queue is full.
    fn try_push(&self, conn: TcpStream) -> Result<usize, TcpStream> {
        let mut slots = lock_recover(&self.slots);
        if slots.len() >= self.capacity {
            return Err(conn);
        }
        slots.push_back(conn);
        let depth = slots.len();
        drop(slots);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Pop a connection, or `None` once shutdown is flagged and the
    /// queue drained.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut slots = lock_recover(&self.slots);
        loop {
            if let Some(conn) = slots.pop_front() {
                return Some(conn);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(slots, Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slots = guard;
        }
    }
}

struct WatchSlot {
    probe: TcpStream,
    token: CancelToken,
    cancelled_at: Option<Instant>,
}

/// The in-flight board the disconnect watcher sweeps.
#[derive(Default)]
struct WatchBoard {
    slots: Mutex<HashMap<u64, WatchSlot>>,
}

impl WatchBoard {
    fn register(&self, id: u64, probe: TcpStream, token: CancelToken) {
        lock_recover(&self.slots).insert(
            id,
            WatchSlot {
                probe,
                token,
                cancelled_at: None,
            },
        );
    }

    /// Remove a finished query; returns when (if ever) the watcher
    /// cancelled it.
    fn deregister(&self, id: u64) -> Option<Instant> {
        lock_recover(&self.slots)
            .remove(&id)
            .and_then(|s| s.cancelled_at)
    }

    /// One watcher pass: flip the token of every in-flight query whose
    /// client socket is half-closed or errored. Returns how many
    /// tokens were flipped this pass.
    fn sweep(&self) -> usize {
        let mut flipped = 0;
        let mut slots = lock_recover(&self.slots);
        for slot in slots.values_mut() {
            if slot.cancelled_at.is_some() {
                continue;
            }
            let mut byte = [0u8; 1];
            let gone = match slot.probe.peek(&mut byte) {
                Ok(0) => true,                                            // clean half-close
                Ok(_) => false,                                           // bytes pending: alive
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => false, // quiet: alive
                Err(_) => true,                                           // reset/broken
            };
            if gone {
                slot.token.cancel();
                slot.cancelled_at = Some(Instant::now());
                flipped += 1;
            }
        }
        flipped
    }
}

/// The coalescing key: queries agreeing on all three expand one shared
/// cone tree, whatever their horizons.
type BatchKey = (String, String, String);

/// What a batch leader hands each member once the shared expansion is
/// done.
enum BatchVerdict {
    /// The shared expansion answered this member exactly.
    Done(Box<(Disc<Value>, Provenance)>),
    /// The member must answer itself on the solo robust cascade (the
    /// batch tripped its budget, errored, or found the breaker open).
    Solo,
    /// The member's token was cancelled while the batch ran; there is
    /// nobody left to answer.
    Cancelled,
}

/// One query parked in a forming batch.
struct BatchSeat {
    horizon: usize,
    token: CancelToken,
    max_entries: usize,
    max_expansions: Option<usize>,
    deadline: Duration,
    reply: mpsc::Sender<BatchVerdict>,
}

/// The outcome of offering a query to the batch board.
enum Rendezvous {
    /// No batch was forming for the key: the caller leads — it collects
    /// followers for the coalesce window, then runs the expansion.
    Lead,
    /// Joined a forming batch: block on the leader's verdict.
    Follow(mpsc::Receiver<BatchVerdict>),
}

/// The rendezvous point where workers coalesce compatible queued
/// queries (same automaton + scheduler + observation, any horizons)
/// into one flat batched expansion.
#[derive(Default)]
struct BatchBoard {
    forming: Mutex<HashMap<BatchKey, Vec<BatchSeat>>>,
}

impl BatchBoard {
    /// Join the forming batch for `key`, or open one and lead it.
    fn rendezvous(
        &self,
        key: &BatchKey,
        seat: impl FnOnce(mpsc::Sender<BatchVerdict>) -> BatchSeat,
    ) -> Rendezvous {
        let mut map = lock_recover(&self.forming);
        if let Some(seats) = map.get_mut(key) {
            let (tx, rx) = mpsc::channel();
            seats.push(seat(tx));
            Rendezvous::Follow(rx)
        } else {
            map.insert(key.clone(), Vec::new());
            Rendezvous::Lead
        }
    }

    /// Close the batch for `key`: later arrivals start a new one.
    fn close(&self, key: &BatchKey) -> Vec<BatchSeat> {
        lock_recover(&self.forming).remove(key).unwrap_or_default()
    }
}

/// The resolved on-disk store: fingerprints are computed once at boot
/// so the request path never re-walks automaton structure.
struct StoreState {
    dir: PathBuf,
    /// Combined fingerprint over the whole catalog — keys the shared
    /// cache snapshot (the cache mixes rows from every automaton).
    catalog_fingerprint: u64,
    /// Per-automaton structural fingerprints — key query checkpoints.
    entry_fingerprints: HashMap<String, u64>,
}

impl StoreState {
    fn new(dir: PathBuf, entry_fingerprints: HashMap<String, u64>) -> StoreState {
        let catalog_fingerprint =
            combined_fingerprint(entry_fingerprints.iter().map(|(n, &f)| (n.as_str(), f)));
        StoreState {
            dir,
            catalog_fingerprint,
            entry_fingerprints,
        }
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("cache.dpst")
    }

    fn checkpoint_path(&self, identity: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{identity:016x}.dpst"))
    }

    fn strata_path(&self) -> PathBuf {
        self.dir.join("strata.dpst")
    }
}

/// The poisoned-query breaker: a query identity that keeps panicking
/// workers is quarantined after `threshold` strikes, so one poisonous
/// request shape cannot crash-loop the service while every other query
/// keeps being served.
struct PoisonBoard {
    strikes: RwLock<FxHashMap<u64, u32>>,
    threshold: u32,
}

impl PoisonBoard {
    fn new(threshold: u32) -> PoisonBoard {
        PoisonBoard {
            strikes: RwLock::new(FxHashMap::default()),
            threshold: threshold.max(1),
        }
    }

    /// Record one caught panic against `identity`; returns true when
    /// this strike crossed the quarantine threshold.
    fn strike(&self, identity: u64) -> bool {
        let mut map = write_recover(&self.strikes);
        let n = map.entry(identity).or_insert(0);
        *n += 1;
        *n == self.threshold
    }

    fn is_quarantined(&self, identity: u64) -> bool {
        dpioa_core::sync::read_recover(&self.strikes)
            .get(&identity)
            .is_some_and(|&n| n >= self.threshold)
    }
}

/// The identity under which a budget-tripped query's checkpoint is
/// filed: automaton structure × scheduler × observation × horizon.
/// Built from wire names and the structural fingerprint — nothing
/// process-local — so a follow-up query in a fresh process finds it.
/// The poisoned-query breaker quarantines the same key.
fn query_identity(fingerprint: u64, sched_name: &str, obs_name: &str, horizon: usize) -> u64 {
    let mut h = FxHasher::with_seed(0x1DE7_717E);
    h.write_u64(fingerprint);
    h.write(sched_name.as_bytes());
    h.write_u8(0);
    h.write(obs_name.as_bytes());
    h.write_u8(0);
    h.write_u64(horizon as u64);
    h.finish()
}

struct Inner {
    config: ServerConfig,
    catalog: Catalog,
    /// Per-automaton structural fingerprints, computed once at boot.
    /// Strata are keyed by these even when no store is configured.
    fingerprints: HashMap<String, u64>,
    store: Option<StoreState>,
    cache: Arc<EngineCache>,
    breaker: Arc<CircuitBreaker>,
    metrics: Arc<ServerMetrics>,
    queue: ConnQueue,
    watch: WatchBoard,
    batch: BatchBoard,
    poison: PoisonBoard,
    shutdown: AtomicBool,
    next_request_id: AtomicU64,
    /// Set once boot-time warm start (if any) has finished; `/readyz`
    /// refuses to report ready before it.
    warm_started: AtomicBool,
}

/// A running server: its bound address, shared stats handles, and the
/// join handles for a clean wind-down.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live counters (shared with the request path).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// The shared engine cache (for tests asserting admission stats).
    pub fn cache(&self) -> Arc<EngineCache> {
        Arc::clone(&self.inner.cache)
    }

    /// The shared circuit breaker.
    pub fn breaker(&self) -> Arc<CircuitBreaker> {
        Arc::clone(&self.inner.breaker)
    }

    /// Flag shutdown (idempotent; also reachable as `POST /shutdown`).
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// True once shutdown has been flagged.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    /// Join every server thread. Returns once the acceptor, workers,
    /// and watcher have all exited.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Convenience for tests: flag shutdown and join.
    pub fn shutdown_and_wait(self) {
        self.shutdown();
        self.wait();
    }
}

impl Inner {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue.ready.notify_all();
    }
}

/// Bind and start the server threads; returns immediately with the
/// handle.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let catalog = Catalog::standard();
    let fingerprints: HashMap<String, u64> = catalog
        .entries()
        .iter()
        .map(|e| {
            (
                e.name.to_string(),
                automaton_fingerprint(e.automaton.as_ref()),
            )
        })
        .collect();
    let store = config
        .store_dir
        .clone()
        .map(|dir| StoreState::new(dir, fingerprints.clone()));

    let inner = Arc::new(Inner {
        cache: Arc::new(EngineCache::bounded_with_admission(
            config.cache_entries,
            config.cache_family_frac,
        )),
        breaker: Arc::new(
            CircuitBreaker::new(config.breaker_threshold).with_cooldown(config.breaker_cooldown),
        ),
        metrics: Arc::new(ServerMetrics::default()),
        queue: ConnQueue::new(config.queue_capacity),
        watch: WatchBoard::default(),
        batch: BatchBoard::default(),
        poison: PoisonBoard::new(config.poison_threshold),
        shutdown: AtomicBool::new(false),
        next_request_id: AtomicU64::new(1),
        warm_started: AtomicBool::new(false),
        catalog,
        fingerprints,
        store,
        config,
    });

    // Warm-start before the first worker exists: a restarted server
    // serves its very first query from the previous process's cache.
    if let Some(store) = &inner.store {
        let _ = inner.config.vfs.create_dir_all(&store.dir);
        warm_start(&inner, store);
    }
    inner.warm_started.store(true, Ordering::Release);

    let mut threads = Vec::new();

    let acceptor_inner = Arc::clone(&inner);
    threads.push(
        thread::Builder::new()
            .name("dpioa-acceptor".into())
            .spawn(move || acceptor_loop(listener, acceptor_inner))?,
    );

    let watcher_inner = Arc::clone(&inner);
    threads.push(
        thread::Builder::new()
            .name("dpioa-watcher".into())
            .spawn(move || watcher_loop(watcher_inner))?,
    );

    // Workers and the persist thread run under the supervisor: it
    // spawns them, respawns any that die (with restart-storm backoff),
    // and joins them all at shutdown.
    let supervisor_inner = Arc::clone(&inner);
    threads.push(
        thread::Builder::new()
            .name("dpioa-supervisor".into())
            .spawn(move || supervisor_loop(supervisor_inner))?,
    );

    Ok(ServerHandle {
        addr,
        inner,
        threads,
    })
}

/// One supervised thread slot: its live handle (if any), when it was
/// last (re)spawned, and the consecutive-crash count driving backoff.
struct Supervised {
    handle: Option<JoinHandle<()>>,
    spawned_at: Instant,
    crashes: u32,
    /// Earliest instant a respawn is allowed (restart-storm backoff).
    respawn_at: Instant,
}

impl Supervised {
    fn spawn(name: String, f: impl FnOnce() + Send + 'static) -> Supervised {
        let handle = thread::Builder::new().name(name).spawn(f).ok();
        Supervised {
            handle,
            spawned_at: Instant::now(),
            crashes: 0,
            respawn_at: Instant::now(),
        }
    }
}

/// A crashed thread that survived this long before dying is treated as
/// healthy: its next crash starts the backoff ladder from the bottom.
const SUPERVISOR_HEALTHY_AFTER: Duration = Duration::from_secs(5);

/// The supervisor: owns the worker and persist thread handles, polls
/// for deaths, and respawns with exponential per-slot backoff (50ms
/// doubling, capped at `restart_backoff_max`) so a crash-looping
/// thread cannot burn a core. Normal exits (shutdown) are not
/// respawned; at shutdown everything still alive is joined.
fn supervisor_loop(inner: Arc<Inner>) {
    let n_workers = inner.config.workers.max(1);
    let spawn_worker = |i: usize| {
        let worker_inner = Arc::clone(&inner);
        Supervised::spawn(format!("dpioa-worker-{i}"), move || {
            worker_loop(worker_inner)
        })
    };
    let mut workers: Vec<Supervised> = (0..n_workers).map(spawn_worker).collect();
    let mut persist: Option<Supervised> = inner.store.is_some().then(|| {
        let persist_inner = Arc::clone(&inner);
        Supervised::spawn("dpioa-persist".into(), move || persist_loop(persist_inner))
    });
    inner
        .metrics
        .workers_alive
        .store(workers.len(), Ordering::Relaxed);

    while !inner.shutdown.load(Ordering::Acquire) {
        thread::sleep(Duration::from_millis(10));
        let mut alive = 0;
        for (i, slot) in workers.iter_mut().enumerate() {
            if supervise(&inner, slot, || spawn_worker(i)) {
                alive += 1;
            }
        }
        inner.metrics.workers_alive.store(alive, Ordering::Relaxed);
        if let Some(slot) = persist.as_mut() {
            let respawn = || {
                let persist_inner = Arc::clone(&inner);
                Supervised::spawn("dpioa-persist".into(), move || persist_loop(persist_inner))
            };
            supervise(&inner, slot, respawn);
        }
    }

    // Shutdown: wake parked workers, then join everything we own.
    inner.queue.ready.notify_all();
    for slot in workers.iter_mut().chain(persist.iter_mut()) {
        if let Some(handle) = slot.handle.take() {
            let _ = handle.join();
        }
    }
    inner.metrics.workers_alive.store(0, Ordering::Relaxed);
}

/// Poll one supervised slot; respawn it (through `respawn`) if it died
/// without shutdown being flagged. Returns whether the slot is alive
/// after the poll.
fn supervise(inner: &Inner, slot: &mut Supervised, respawn: impl FnOnce() -> Supervised) -> bool {
    let finished = match &slot.handle {
        Some(handle) => handle.is_finished(),
        None => true,
    };
    if !finished {
        return true;
    }
    if let Some(handle) = slot.handle.take() {
        // A worker that unwound carried a panic payload; surface it as
        // a counted event, not a lost lane.
        let _ = handle.join();
    }
    if inner.shutdown.load(Ordering::Acquire) {
        return false;
    }
    let now = Instant::now();
    if slot.handle.is_none() && now < slot.respawn_at {
        return false; // still backing off
    }
    let healthy = now.duration_since(slot.spawned_at) >= SUPERVISOR_HEALTHY_AFTER;
    slot.crashes = if healthy {
        1
    } else {
        slot.crashes.saturating_add(1)
    };
    let backoff = Duration::from_millis(50 << (slot.crashes - 1).min(10))
        .min(inner.config.restart_backoff_max);
    let fresh = respawn();
    inner
        .metrics
        .worker_restarts
        .fetch_add(1, Ordering::Relaxed);
    *slot = Supervised {
        respawn_at: now + backoff,
        crashes: slot.crashes,
        ..fresh
    };
    slot.handle.is_some()
}

fn acceptor_loop(listener: TcpListener, inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                let _ = conn.set_nodelay(true);
                let _ = conn.set_read_timeout(Some(inner.config.limits.read_timeout));
                let _ = conn.set_write_timeout(Some(inner.config.limits.write_timeout));
                match inner.queue.try_push(conn) {
                    Ok(depth) => {
                        inner.metrics.queue_depth.store(depth, Ordering::Relaxed);
                    }
                    Err(conn) => shed(conn, &inner),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    // Wake any worker parked on an empty queue so it can observe the
    // shutdown flag and exit.
    inner.queue.ready.notify_all();
}

/// Refuse a connection with an explicit `503 overloaded` + Retry-After
/// instead of queueing it unboundedly or dropping it on the floor.
fn shed(mut conn: TcpStream, inner: &Inner) {
    inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
    let retry_ms = inner.config.retry_after_ms;
    let body = json::obj([(
        "error",
        json::obj([
            ("code", json::s("overloaded")),
            ("detail", json::s("work queue full; retry after the hint")),
            ("retryable", Json::Bool(true)),
            ("retry_after_ms", json::nu(retry_ms)),
        ]),
    )])
    .render();
    let retry_after_s = retry_ms.div_ceil(1000).max(1).to_string();
    let _ = http::write_response(
        &mut conn,
        503,
        "application/json",
        &[("Retry-After", retry_after_s)],
        body.as_bytes(),
        true,
    );
    inner.metrics.record_status(503);
}

fn worker_loop(inner: Arc<Inner>) {
    while let Some(conn) = inner.queue.pop(&inner.shutdown) {
        let depth = lock_recover(&inner.queue.slots).len();
        inner.metrics.queue_depth.store(depth, Ordering::Relaxed);
        handle_connection(conn, &inner);
    }
}

fn watcher_loop(inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        inner.watch.sweep();
        thread::sleep(inner.config.watcher_poll);
    }
    // Shutdown cancels whatever is still in flight so workers unwind
    // promptly instead of running abandoned queries to completion.
    let slots = lock_recover(&inner.watch.slots);
    for slot in slots.values() {
        slot.token.cancel();
    }
}

/// Boot-time warm start: stream a committed snapshot (if any) into the
/// fresh cache. Cold starts (no file yet, stale fingerprint, foreign
/// version) are business as usual; anything else is a store fault —
/// the offending file is moved aside to `*.quarantine` so the next
/// boot (and the next persist pass) proceed unobstructed instead of
/// tripping over the same corpse forever.
fn warm_start(inner: &Inner, store: &StoreState) {
    let vfs = inner.config.vfs.as_ref();
    match inner
        .cache
        .warm_start_from_with(vfs, &store.snapshot_path(), store.catalog_fingerprint)
    {
        Ok(stats) => {
            inner.metrics.store_hits.fetch_add(1, Ordering::Relaxed);
            inner.metrics.store_entries_loaded.fetch_add(
                (stats.transitions + stats.choices) as u64,
                Ordering::Relaxed,
            );
            inner
                .metrics
                .store_rejected
                .fetch_add(stats.rejected, Ordering::Relaxed);
        }
        Err(e) if e.is_cold_start() => {
            inner.metrics.store_misses.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            inner.metrics.store_errors.fetch_add(1, Ordering::Relaxed);
            if quarantine_file(vfs, &store.snapshot_path()).is_ok() {
                inner
                    .metrics
                    .quarantined_files
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    // Strata ride along: re-import the previous process's deposited
    // frontier snapshots so repeat-family queries resume mid-cone from
    // the very first request. Cold starts are silent (the snapshot
    // above already recorded the boot's hit/miss verdict); byte-budget
    // rejections are the table's own admission policy, not a fault.
    match load_strata_with(vfs, &store.strata_path(), store.catalog_fingerprint) {
        Ok(rows) => {
            for (fp, scope, obs, depth, ckpt) in rows {
                inner.cache.import_stratum(fp, &scope, &obs, depth, ckpt);
            }
        }
        Err(e) if e.is_cold_start() => {}
        Err(_) => {
            inner.metrics.store_errors.fetch_add(1, Ordering::Relaxed);
            if quarantine_file(vfs, &store.strata_path()).is_ok() {
                inner
                    .metrics
                    .quarantined_files
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Commit the shared cache to the store (atomic temp + rename; a
/// reader never observes a half-written snapshot).
fn persist_snapshot(inner: &Inner, store: &StoreState) -> Result<SnapshotStats, StoreError> {
    let vfs = inner.config.vfs.as_ref();
    match inner.cache.snapshot_to_with(
        vfs,
        &store.snapshot_path(),
        store.catalog_fingerprint,
        RetryPolicy::default(),
    ) {
        Ok(stats) => {
            inner
                .metrics
                .store_snapshots
                .fetch_add(1, Ordering::Relaxed);
            inner
                .metrics
                .io_retries
                .fetch_add(stats.io_retries as u64, Ordering::Relaxed);
            // Commit the stratum table next to the snapshot (same
            // atomic temp + rename discipline). A strata write fault
            // does not fail the snapshot: the cache rows are already
            // safe, and a stale strata file is merely a slower warm
            // start, never a wrong answer.
            match save_strata_with(
                vfs,
                &store.strata_path(),
                store.catalog_fingerprint,
                &inner.cache.export_strata(),
                RetryPolicy::default(),
            ) {
                Ok(retries) => {
                    inner
                        .metrics
                        .io_retries
                        .fetch_add(retries as u64, Ordering::Relaxed);
                }
                Err(_) => {
                    inner.metrics.store_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(stats)
        }
        Err(e) => {
            inner.metrics.store_errors.fetch_add(1, Ordering::Relaxed);
            Err(e)
        }
    }
}

/// The snapshot thread: periodic commits while `persist_every` is
/// configured, and always one parting snapshot at shutdown so a
/// graceful restart warm-starts from everything this process learned.
///
/// The loop never dies on a persist failure — failures are counted in
/// `dpioa_persist_errors_total` and the next attempt is pushed out by
/// a doubling backoff (capped at `restart_backoff_max`, reset on the
/// first success) so a persistently failing disk is retried gently,
/// not hammered.
fn persist_loop(inner: Arc<Inner>) {
    let store = inner.store.as_ref().expect("persist thread needs a store");
    let mut next = inner.config.persist_every.map(|p| Instant::now() + p);
    let mut backoff = Duration::ZERO;
    while !inner.shutdown.load(Ordering::Acquire) {
        thread::sleep(Duration::from_millis(5));
        if let Some(at) = next {
            if Instant::now() >= at {
                match persist_snapshot(&inner, store) {
                    Ok(_) => backoff = Duration::ZERO,
                    Err(_) => {
                        inner.metrics.persist_errors.fetch_add(1, Ordering::Relaxed);
                        backoff = (backoff * 2)
                            .max(Duration::from_millis(50))
                            .min(inner.config.restart_backoff_max);
                    }
                }
                next = inner
                    .config
                    .persist_every
                    .map(|p| Instant::now() + p + backoff);
            }
        }
    }
    if persist_snapshot(&inner, store).is_err() {
        inner.metrics.persist_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Persist a budget-tripped query's checkpoint under its identity so
/// a follow-up query — in this process or the next — resumes instead
/// of re-expanding.
fn save_query_checkpoint(inner: &Inner, path: &Path, fingerprint: u64, ckpt: &Checkpoint) {
    match save_checkpoint_with(
        inner.config.vfs.as_ref(),
        path,
        fingerprint,
        ckpt,
        RetryPolicy::default(),
    ) {
        Ok(retries) => {
            inner
                .metrics
                .store_checkpoints
                .fetch_add(1, Ordering::Relaxed);
            inner
                .metrics
                .io_retries
                .fetch_add(retries as u64, Ordering::Relaxed);
        }
        Err(_) => {
            inner.metrics.store_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The keep-alive exchange loop for one connection.
fn handle_connection(mut conn: TcpStream, inner: &Inner) {
    loop {
        let _ = conn.set_read_timeout(Some(inner.config.limits.read_timeout));
        let req = match http::read_request(&mut conn, &inner.config.limits) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(ReadError::Timeout) => {
                inner.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                respond_error(
                    &mut conn,
                    inner,
                    408,
                    "request-timeout",
                    "request read timed out",
                    true,
                );
                return;
            }
            Err(ReadError::TooLarge { limit }) => {
                inner.metrics.too_large.fetch_add(1, Ordering::Relaxed);
                respond_error(
                    &mut conn,
                    inner,
                    413,
                    "payload-too-large",
                    &format!("request exceeds {limit} bytes"),
                    true,
                );
                return;
            }
            Err(ReadError::Malformed(detail)) => {
                inner.metrics.malformed.fetch_add(1, Ordering::Relaxed);
                respond_error(&mut conn, inner, 400, "malformed-request", &detail, true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        inner.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let close = req.wants_close() || inner.shutdown.load(Ordering::Acquire);
        let keep_going = dispatch(&mut conn, inner, &req, close);
        if close || !keep_going {
            return;
        }
    }
}

/// Route one request. Returns false when the connection must close
/// (response unwritable or client gone).
fn dispatch(conn: &mut TcpStream, inner: &Inner, req: &Request, close: bool) -> bool {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond_json(
            conn,
            inner,
            200,
            &json::obj([("ok", Json::Bool(true))]),
            close,
        ),
        ("GET", "/readyz") => {
            let warm = inner.warm_started.load(Ordering::Acquire);
            let alive = inner.metrics.workers_alive.load(Ordering::Relaxed);
            let configured = inner.config.workers.max(1);
            let depth = inner.metrics.queue_depth.load(Ordering::Relaxed);
            let capacity = inner.config.queue_capacity.max(1);
            let shutting_down = inner.shutdown.load(Ordering::Acquire);
            let ready = warm && alive > 0 && depth < capacity && !shutting_down;
            let body = json::obj([
                ("ready", Json::Bool(ready)),
                ("warm_started", Json::Bool(warm)),
                ("workers_alive", json::nu(alive as u64)),
                ("workers_configured", json::nu(configured as u64)),
                ("queue_depth", json::nu(depth as u64)),
                ("queue_capacity", json::nu(capacity as u64)),
                ("shutting_down", Json::Bool(shutting_down)),
            ]);
            respond_json(conn, inner, if ready { 200 } else { 503 }, &body, close)
        }
        ("POST", "/chaos/panic-worker") if inner.config.expose_chaos => {
            // Acknowledge before dying so the client sees a
            // deterministic 200; the panic then unwinds this worker
            // thread *outside* any per-request shield, and the
            // supervisor respawns the lane.
            respond_json(
                conn,
                inner,
                200,
                &json::obj([("panicking", Json::Bool(true))]),
                true,
            );
            panic!("chaos: operator-requested worker panic");
        }
        ("GET", "/metrics") => {
            let page = inner.metrics.render(&inner.cache, &inner.breaker);
            inner.metrics.record_status(200);
            http::write_response(
                conn,
                200,
                "text/plain; version=0.0.4",
                &[],
                page.as_bytes(),
                close,
            )
            .is_ok()
        }
        ("GET", "/v1/catalog") => respond_json(conn, inner, 200, &catalog_page(inner), close),
        ("POST", "/v1/query") => handle_query(conn, inner, req, close),
        ("POST", "/persist") => {
            let Some(store) = &inner.store else {
                respond_error(
                    conn,
                    inner,
                    409,
                    "store-disabled",
                    "server started without a store directory",
                    close,
                );
                return !close;
            };
            match persist_snapshot(inner, store) {
                Ok(stats) => {
                    let body = json::obj([
                        ("persisted", Json::Bool(true)),
                        ("transitions", json::nu(stats.transitions as u64)),
                        ("choices", json::nu(stats.choices as u64)),
                        ("bytes", json::nu(stats.bytes as u64)),
                    ]);
                    respond_json(conn, inner, 200, &body, close) && !close
                }
                Err(e) => {
                    respond_error(conn, inner, 500, e.code(), &e.to_string(), close);
                    !close
                }
            }
        }
        ("POST", "/shutdown") => {
            inner.begin_shutdown();
            respond_json(
                conn,
                inner,
                200,
                &json::obj([("shutting_down", Json::Bool(true))]),
                true,
            );
            false
        }
        ("GET", "/v1/query" | "/persist")
        | ("POST", "/healthz" | "/readyz" | "/metrics" | "/v1/catalog") => {
            respond_error(
                conn,
                inner,
                405,
                "method-not-allowed",
                "wrong method for path",
                close,
            );
            !close
        }
        _ => {
            respond_error(conn, inner, 404, "not-found", "unknown path", close);
            !close
        }
    }
}

fn catalog_page(inner: &Inner) -> Json {
    Json::Obj(vec![
        (
            "automata".into(),
            Json::Arr(
                inner
                    .catalog
                    .entries()
                    .iter()
                    .map(|e: &CatalogEntry| {
                        json::obj([
                            ("name", json::s(e.name)),
                            ("description", json::s(e.description)),
                            ("max_horizon", json::nu(e.max_horizon as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "schedulers".into(),
            Json::Arr(catalog::SCHEDULER_NAMES.iter().map(json::s).collect()),
        ),
        (
            "observations".into(),
            Json::Arr(catalog::OBSERVATION_NAMES.iter().map(json::s).collect()),
        ),
    ])
}

/// A validated `/v1/query` body.
struct QueryPlan<'a> {
    entry: &'a CatalogEntry,
    scheduler: Arc<dyn Scheduler>,
    /// Wire name of the scheduler — part of the coalescing key.
    sched_name: String,
    observation: Observation,
    /// Wire name of the observation — part of the coalescing key.
    obs_name: String,
    horizon: usize,
    max_entries: usize,
    max_expansions: Option<usize>,
    deadline: Duration,
    mc_samples: usize,
}

/// Parse + validate a query body against the catalog and the server
/// caps. Errors become `(status, code, detail)`.
fn plan_query<'a>(
    inner: &'a Inner,
    body: &[u8],
) -> Result<QueryPlan<'a>, (u16, &'static str, String)> {
    let text = std::str::from_utf8(body)
        .map_err(|_| (400, "malformed-request", "body is not utf-8".to_string()))?;
    let doc = Json::parse(text).map_err(|e| (400, "malformed-request", e))?;

    let automaton = doc.get("automaton").and_then(Json::as_str).ok_or_else(|| {
        (
            400,
            "malformed-request",
            "missing field \"automaton\"".to_string(),
        )
    })?;
    let entry = inner.catalog.get(automaton).ok_or_else(|| {
        (
            400,
            "unknown-automaton",
            format!("no automaton {automaton:?}; see /v1/catalog"),
        )
    })?;

    let sched_name = doc
        .get("scheduler")
        .map(|v| {
            v.as_str().ok_or_else(|| {
                (
                    400,
                    "malformed-request",
                    "\"scheduler\" must be a string".to_string(),
                )
            })
        })
        .transpose()?
        .unwrap_or("first-enabled");
    // The chaos scheduler is deliberately absent from the public
    // catalog; it resolves only when the operator opted into chaos.
    let scheduler = if sched_name == "chaos-panic" && inner.config.expose_chaos {
        catalog::chaos_panic_scheduler()
    } else {
        catalog::scheduler_by_name(sched_name).ok_or_else(|| {
            (
                400,
                "unknown-scheduler",
                format!("no scheduler {sched_name:?}; see /v1/catalog"),
            )
        })?
    };

    let obs_name = doc
        .get("observation")
        .map(|v| {
            v.as_str().ok_or_else(|| {
                (
                    400,
                    "malformed-request",
                    "\"observation\" must be a string".to_string(),
                )
            })
        })
        .transpose()?
        .unwrap_or("final-state");
    let observation = catalog::observation_by_name(obs_name).ok_or_else(|| {
        (
            400,
            "unknown-observation",
            format!("no observation {obs_name:?}; see /v1/catalog"),
        )
    })?;

    let horizon = doc.get("horizon").and_then(Json::as_u64).ok_or_else(|| {
        (
            400,
            "malformed-request",
            "missing or non-integer field \"horizon\"".to_string(),
        )
    })? as usize;
    if horizon > entry.max_horizon {
        return Err((
            400,
            "horizon-too-large",
            format!(
                "horizon {horizon} exceeds {} for automaton {:?}",
                entry.max_horizon, entry.name
            ),
        ));
    }

    let budget = doc.get("budget");
    let u64_field = |obj: Option<&Json>,
                     key: &'static str|
     -> Result<Option<u64>, (u16, &'static str, String)> {
        match obj.and_then(|b| b.get(key)) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                (
                    400,
                    "malformed-request",
                    format!("\"budget.{key}\" must be a non-negative integer"),
                )
            }),
        }
    };
    let cfg = &inner.config;
    let max_entries = u64_field(budget, "max_entries")?
        .map(|n| (n as usize).min(cfg.max_entries_cap))
        .unwrap_or(cfg.max_entries_cap)
        .max(1);
    let max_expansions = u64_field(budget, "max_expansions")?.map(|n| (n as usize).max(1));
    let deadline_ms = u64_field(budget, "deadline_ms")?
        .unwrap_or(cfg.default_deadline_ms)
        .clamp(1, cfg.max_deadline_ms);
    let mc_samples = match doc.get("mc_samples") {
        None | Some(Json::Null) => cfg.default_mc_samples,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| {
                (
                    400,
                    "malformed-request",
                    "\"mc_samples\" must be a non-negative integer".to_string(),
                )
            })?
            .clamp(1, cfg.max_mc_samples as u64) as usize,
    };

    Ok(QueryPlan {
        entry,
        scheduler,
        sched_name: sched_name.to_string(),
        observation,
        obs_name: obs_name.to_string(),
        horizon,
        max_entries,
        max_expansions,
        deadline: Duration::from_millis(deadline_ms),
        mc_samples,
    })
}

/// Execute `/v1/query`. Returns false when the connection is done.
fn handle_query(conn: &mut TcpStream, inner: &Inner, req: &Request, close: bool) -> bool {
    let plan = match plan_query(inner, &req.body) {
        Ok(plan) => plan,
        Err((status, code, detail)) => {
            respond_error(conn, inner, status, code, &detail, close);
            return !close;
        }
    };

    // Poisoned-query breaker: an identity that has repeatedly panicked
    // workers is refused up front with a stable error instead of being
    // allowed to crash-loop the worker pool.
    let identity = query_identity(
        inner
            .fingerprints
            .get(plan.entry.name)
            .copied()
            .unwrap_or(0),
        &plan.sched_name,
        &plan.obs_name,
        plan.horizon,
    );
    if inner.poison.is_quarantined(identity) {
        respond_error(
            conn,
            inner,
            422,
            "query-quarantined",
            "this query shape repeatedly crashed workers and is quarantined",
            close,
        );
        return !close;
    }

    let token = CancelToken::new();
    let mut budget = Budget::unlimited()
        .with_max_entries(plan.max_entries)
        .with_deadline_in(plan.deadline)
        .with_cancel(token.clone());
    if let Some(n) = plan.max_expansions {
        budget = budget.with_max_expansions(n);
    }
    let config = RobustConfig {
        budget,
        exact_threads: inner.config.exact_threads,
        par_cutover: None,
        cache: Some(Arc::clone(&inner.cache)),
        mc_samples: plan.mc_samples,
        mc_threads: inner.config.mc_threads,
        mc_seed: SERVER_MC_SEED,
        confidence_delta: 1e-3,
        breaker: Some(Arc::clone(&inner.breaker)),
        strata: inner
            .fingerprints
            .get(plan.entry.name)
            .map(|&fingerprint| StrataConfig {
                fingerprint,
                stride: inner.config.strata_stride,
            }),
    };

    // Register the in-flight query with the disconnect watcher via a
    // nonblocking clone of the socket. If cloning fails the query
    // still runs — it just cannot be revoked early.
    let request_id = inner.next_request_id.fetch_add(1, Ordering::Relaxed);
    let watched = match conn.try_clone() {
        Ok(probe) => {
            let _ = probe.set_nonblocking(true);
            inner.watch.register(request_id, probe, token.clone());
            true
        }
        Err(_) => false,
    };
    inner.metrics.in_flight.fetch_add(1, Ordering::Relaxed);

    // The unwind shield: a panic anywhere in the engine (user-supplied
    // scheduler/automaton code included) is caught here, answered with
    // a stable 500, and struck against the query's identity — the
    // worker thread itself never dies for a per-request panic. The
    // `AssertUnwindSafe` is justified by `dpioa_sched::unwind` (the
    // shared caches are RefUnwindSafe and poison-recovering).
    let started = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        execute_query(inner, &plan, &token, &config)
    }));
    let service = started.elapsed();

    inner.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    inner.metrics.service_ns_total.fetch_add(
        service.as_nanos().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
    let cancelled_at = if watched {
        inner.watch.deregister(request_id)
    } else {
        None
    };
    // `set_nonblocking` on the probe clone flips the shared fd;
    // restore blocking mode before writing the response.
    let _ = conn.set_nonblocking(false);
    let _ = conn.set_write_timeout(Some(inner.config.limits.write_timeout));

    let result = match caught {
        Ok(result) => result,
        Err(_) => {
            inner.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
            if inner.poison.strike(identity) {
                inner
                    .metrics
                    .query_quarantines
                    .fetch_add(1, Ordering::Relaxed);
            }
            respond_error(
                conn,
                inner,
                500,
                "worker-panic",
                "query panicked mid-execution; the panic was isolated to this request",
                close,
            );
            return !close;
        }
    };

    match result {
        Ok((dist, prov)) => {
            inner.metrics.record_engine(prov.engine, prov.breaker_open);
            let body = json::obj([
                ("request_id", json::nu(request_id)),
                ("automaton", json::s(plan.entry.name)),
                ("horizon", json::nu(plan.horizon as u64)),
                ("dist", encode_dist(&dist)),
                ("provenance", encode_provenance(&prov)),
                (
                    "service_ns",
                    json::nu(service.as_nanos().min(u64::MAX as u128) as u64),
                ),
            ]);
            respond_json(conn, inner, 200, &body, close) && !close
        }
        Err(err) => {
            if let EngineError::BudgetExhausted {
                cancelled: true, ..
            } = &err
            {
                // The client disconnected (watcher flipped the token) or
                // shutdown revoked the query. Record how long the engine
                // took to unwind after the flip; there is nobody left to
                // answer.
                if let Some(at) = cancelled_at {
                    inner.metrics.record_cancel(at.elapsed());
                }
                return false;
            }
            let status = engine_error_status(&err);
            respond_error(conn, inner, status, err.code(), &err.to_string(), close);
            !close
        }
    }
}

/// Run one planned query: through the coalescing batch path when a
/// window is configured, else straight down the solo robust cascade.
fn execute_query(
    inner: &Inner,
    plan: &QueryPlan,
    token: &CancelToken,
    config: &RobustConfig,
) -> Result<(Disc<Value>, Provenance), EngineError> {
    let window = inner.config.coalesce_window;
    if window.is_zero() {
        return solo_query(inner, plan, config);
    }
    let key = (
        plan.entry.name.to_string(),
        plan.sched_name.clone(),
        plan.obs_name.clone(),
    );
    match inner.batch.rendezvous(&key, |reply| BatchSeat {
        horizon: plan.horizon,
        token: token.clone(),
        max_entries: plan.max_entries,
        max_expansions: plan.max_expansions,
        deadline: plan.deadline,
        reply,
    }) {
        Rendezvous::Lead => {
            thread::sleep(window);
            let seats = inner.batch.close(&key);
            lead_batch(inner, plan, token, config, seats)
        }
        Rendezvous::Follow(rx) => {
            // The leader answers within the members' shared deadline;
            // the margin covers a leader that died without replying.
            let patience = plan.deadline + window + Duration::from_secs(5);
            match rx.recv_timeout(patience) {
                Ok(BatchVerdict::Done(answer)) => Ok(*answer),
                Ok(BatchVerdict::Cancelled) => Err(cancelled_error()),
                Ok(BatchVerdict::Solo) | Err(_) => solo_query(inner, plan, config),
            }
        }
    }
}

/// The single-query robust cascade (lumped → exact → Monte-Carlo),
/// under the member's own budget and cancellation token.
///
/// With a store configured this is the **incremental-deadline** path:
/// a persisted checkpoint matching the query's identity is consumed
/// and resumed, and any checkpoint a budget-tripped run hands back —
/// whether the answer was salvaged or the query was cancelled — is
/// persisted for the next attempt. Progress therefore accrues across
/// requests and across process restarts.
fn solo_query(
    inner: &Inner,
    plan: &QueryPlan,
    config: &RobustConfig,
) -> Result<(Disc<Value>, Provenance), EngineError> {
    let slot = inner.store.as_ref().and_then(|store| {
        let fp = *store.entry_fingerprints.get(plan.entry.name)?;
        let identity = query_identity(fp, &plan.sched_name, &plan.obs_name, plan.horizon);
        Some((store.checkpoint_path(identity), fp))
    });
    let resume = slot.as_ref().and_then(|(path, fp)| {
        let vfs = inner.config.vfs.as_ref();
        match load_checkpoint_with(vfs, path, *fp) {
            Ok(ckpt) => {
                // Consume the file: a resumed run that trips again
                // writes a fresh, further-along checkpoint below.
                let _ = vfs.remove(path);
                inner.metrics.store_hits.fetch_add(1, Ordering::Relaxed);
                inner.metrics.store_resumes.fetch_add(1, Ordering::Relaxed);
                Some(ckpt)
            }
            Err(StoreError::NotFound { .. }) => None,
            Err(e) => {
                // Stale or corrupt checkpoint: drop it, run fresh.
                let _ = vfs.remove(path);
                if e.is_cold_start() {
                    inner.metrics.store_misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    inner.metrics.store_errors.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    });
    match robust_observation_dist_resumable(
        plan.entry.automaton.as_ref(),
        plan.scheduler.as_ref(),
        plan.horizon,
        &plan.observation,
        config,
        resume,
    ) {
        Ok((dist, prov, ckpt)) => {
            if let (Some((path, fp)), Some(ckpt)) = (&slot, &ckpt) {
                save_query_checkpoint(inner, path, *fp, ckpt);
            }
            Ok((dist, prov))
        }
        Err(err) => {
            if let (Some((path, fp)), Some(ckpt)) = (&slot, &err.checkpoint) {
                save_query_checkpoint(inner, path, *fp, ckpt);
            }
            Err(err.error)
        }
    }
}

/// The error a cancelled batch member surfaces — shaped exactly like
/// the engine's own cancellation trip so the response path treats both
/// identically (no response, cancel latency recorded).
fn cancelled_error() -> EngineError {
    EngineError::BudgetExhausted {
        entries: 0,
        expansions: 0,
        deadline_hit: false,
        cancelled: true,
    }
}

/// Execute a coalesced batch: the leader plus `seats` followers share
/// one flat multi-horizon expansion; every completed projection is
/// bit-identical to the expansion that member would have run alone.
/// Members the batch could not answer (budget trip, engine error, open
/// breaker) fall back to their own solo cascade.
fn lead_batch(
    inner: &Inner,
    plan: &QueryPlan,
    token: &CancelToken,
    config: &RobustConfig,
    seats: Vec<BatchSeat>,
) -> Result<(Disc<Value>, Provenance), EngineError> {
    if seats.is_empty() {
        // Nobody coalesced inside the window: plain solo query.
        return solo_query(inner, plan, config);
    }
    let auto = plan.entry.automaton.as_ref();
    let send_all_solo = |seats: &[BatchSeat]| {
        for seat in seats {
            let _ = seat.reply.send(BatchVerdict::Solo);
        }
    };

    // An open breaker means the exact tier keeps tripping on this
    // automaton — don't build a batch on it; every member degrades
    // through its own robust cascade instead.
    if inner.breaker.is_open(&auto.name()) {
        send_all_solo(&seats);
        return solo_query(inner, plan, config);
    }

    // The shared budget is the intersection of the members' budgets, so
    // no member exceeds its own caps by riding in a batch. A trip
    // leaves members Pending; each then falls back to its solo cascade
    // under its own (possibly wider) budget.
    let mut max_entries = plan.max_entries;
    let mut max_expansions = plan.max_expansions;
    let mut deadline = plan.deadline;
    for seat in &seats {
        max_entries = max_entries.min(seat.max_entries);
        deadline = deadline.min(seat.deadline);
        max_expansions = match (max_expansions, seat.max_expansions) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
    let mut budget = Budget::unlimited()
        .with_max_entries(max_entries)
        .with_deadline_in(deadline);
    if let Some(n) = max_expansions {
        budget = budget.with_max_expansions(n);
    }

    let mut members = Vec::with_capacity(seats.len() + 1);
    members.push(BatchMember::new(plan.horizon).with_cancel(token.clone()));
    members.extend(
        seats
            .iter()
            .map(|s| BatchMember::new(s.horizon).with_cancel(s.token.clone())),
    );
    inner.metrics.record_batch(members.len());

    let policy = ParallelPolicy::auto(inner.config.exact_threads.max(1));
    let outcome = match try_batch_execution_measures(
        auto,
        plan.scheduler.as_ref(),
        &members,
        &budget,
        policy,
        &inner.cache,
    ) {
        Ok(out) => out,
        Err(_) => {
            // Deterministic engine errors (contract violations) are
            // rediscovered — and reported with the right status — by
            // each member's own solo cascade.
            send_all_solo(&seats);
            return solo_query(inner, plan, config);
        }
    };

    if outcome
        .projections
        .iter()
        .any(|p| matches!(p, BatchProjection::Complete(_)))
    {
        inner.breaker.record_success(&auto.name());
    }
    let stats = outcome.stats;
    let provenance = || Provenance {
        engine: EngineKind::Exact,
        fallback_reason: None,
        samples: None,
        threads: Some(stats.threads),
        cache_hits: Some(stats.cache.hits),
        cache_misses: Some(stats.cache.misses),
        pooled_depths: Some(stats.pooled_depths),
        pool: Some(stats.pool.clone()),
        resolved_mass: None,
        frontier_nodes: None,
        breaker_open: false,
        error_bound: 0.0,
        confidence_delta: 0.0,
        stratum_depth: None,
    };

    let mut verdicts = outcome.projections.into_iter().map(|p| match p {
        BatchProjection::Complete(m) => match m.try_observe(|e| plan.observation.apply(auto, e)) {
            Ok(dist) => BatchVerdict::Done(Box::new((dist, provenance()))),
            Err(_) => BatchVerdict::Solo,
        },
        BatchProjection::Cancelled => BatchVerdict::Cancelled,
        BatchProjection::Pending => BatchVerdict::Solo,
    });
    let own = verdicts.next().expect("leader is member zero");
    for (seat, verdict) in seats.iter().zip(verdicts) {
        let _ = seat.reply.send(verdict);
    }
    match own {
        BatchVerdict::Done(answer) => Ok(*answer),
        BatchVerdict::Cancelled => Err(cancelled_error()),
        BatchVerdict::Solo => solo_query(inner, plan, config),
    }
}

/// Map surfaced engine errors to HTTP statuses. Budget trips normally
/// degrade inside the cascade; one reaching the client means even the
/// salvage tier could not answer in time.
fn engine_error_status(err: &EngineError) -> u16 {
    match err {
        EngineError::BudgetExhausted {
            deadline_hit: true, ..
        } => 504,
        EngineError::BudgetExhausted { .. } => 422,
        EngineError::InvalidSampling { .. } => 400,
        _ => 500,
    }
}

/// Encode a distribution deterministically: entries sorted by value
/// rendering, each with a human-readable probability and the exact
/// bits (`f64::to_bits` hex) for bit-identity assertions.
fn encode_dist(dist: &Disc<Value>) -> Json {
    let mut entries: Vec<(String, f64)> = dist.iter().map(|(v, &p)| (format!("{v}"), p)).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Arr(
        entries
            .into_iter()
            .map(|(value, p)| {
                json::obj([
                    ("value", Json::Str(value)),
                    ("p", json::n(p)),
                    ("p_bits", Json::Str(format!("{:016x}", p.to_bits()))),
                ])
            })
            .collect(),
    )
}

fn encode_provenance(prov: &Provenance) -> Json {
    let engine = match prov.engine {
        EngineKind::Lumped => "lumped",
        EngineKind::Exact => "exact",
        EngineKind::MonteCarlo => "monte-carlo",
        EngineKind::Hybrid => "hybrid",
    };
    json::obj([
        ("engine", json::s(engine)),
        (
            "fallback",
            json::opt(
                prov.fallback_reason
                    .as_ref()
                    .map(|e| json::obj([("code", json::s(e.code())), ("detail", json::s(e))])),
            ),
        ),
        (
            "samples",
            json::opt(prov.samples.map(|n| json::nu(n as u64))),
        ),
        (
            "threads",
            json::opt(prov.threads.map(|n| json::nu(n as u64))),
        ),
        ("cache_hits", json::opt(prov.cache_hits.map(json::nu))),
        ("cache_misses", json::opt(prov.cache_misses.map(json::nu))),
        ("resolved_mass", json::opt(prov.resolved_mass.map(json::n))),
        (
            "frontier_nodes",
            json::opt(prov.frontier_nodes.map(|n| json::nu(n as u64))),
        ),
        (
            "stratum_depth",
            json::opt(prov.stratum_depth.map(|n| json::nu(n as u64))),
        ),
        ("breaker_open", Json::Bool(prov.breaker_open)),
        ("error_bound", json::n(prov.error_bound)),
        ("confidence_delta", json::n(prov.confidence_delta)),
        (
            "pool",
            json::opt(prov.pool.as_ref().map(|p| {
                json::obj([
                    ("workers", json::nu(p.workers as u64)),
                    ("steals", json::nu(p.steals)),
                    ("splits", json::nu(p.splits)),
                ])
            })),
        ),
    ])
}

fn respond_json(
    conn: &mut TcpStream,
    inner: &Inner,
    status: u16,
    body: &Json,
    close: bool,
) -> bool {
    inner.metrics.record_status(status);
    http::write_response(
        conn,
        status,
        "application/json",
        &[],
        body.render().as_bytes(),
        close,
    )
    .is_ok()
}

fn respond_error(
    conn: &mut TcpStream,
    inner: &Inner,
    status: u16,
    code: &str,
    detail: &str,
    close: bool,
) {
    let retryable = matches!(status, 408 | 503 | 504);
    let body = json::obj([(
        "error",
        json::obj([
            ("code", json::s(code)),
            ("detail", json::s(detail)),
            ("retryable", Json::Bool(retryable)),
        ]),
    )]);
    respond_json(conn, inner, status, &body, close);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{self, Client};

    fn quick_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            watcher_poll: Duration::from_millis(2),
            ..ServerConfig::default()
        }
    }

    fn start(config: ServerConfig) -> (ServerHandle, Client) {
        let handle = serve(config).expect("bind");
        let client = Client::new(handle.addr().to_string());
        (handle, client)
    }

    /// A query body whose exact tier trips fast and whose salvage pass
    /// samples long enough for the watcher to revoke it mid-flight.
    fn slow_query() -> &'static str {
        r#"{"automaton":"mixer-4x3","scheduler":"memoryful-alternate","horizon":9,
            "budget":{"max_expansions":8,"deadline_ms":10000},"mc_samples":200000}"#
    }

    #[test]
    fn healthz_catalog_and_coin_query_end_to_end() {
        let (handle, client) = start(quick_config());

        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(
            health.json().unwrap().get("ok").and_then(Json::as_bool),
            Some(true)
        );

        let cat = client.get("/v1/catalog").unwrap().json().unwrap();
        let automata = cat.get("automata").and_then(Json::as_arr).unwrap();
        assert!(automata
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("coin")));

        let resp = client.query(r#"{"automaton":"coin","horizon":1}"#).unwrap();
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let body = resp.json().unwrap();
        let dist = body.get("dist").and_then(Json::as_arr).unwrap();
        assert_eq!(dist.len(), 2);
        for entry in dist {
            assert_eq!(entry.get("p").and_then(Json::as_f64), Some(0.5));
            assert_eq!(
                entry.get("p_bits").and_then(Json::as_str),
                Some("3fe0000000000000"),
                "p_bits must expose the exact f64"
            );
        }
        let prov = body.get("provenance").unwrap();
        assert_eq!(prov.get("engine").and_then(Json::as_str), Some("lumped"));
        assert_eq!(
            prov.get("breaker_open").and_then(Json::as_bool),
            Some(false)
        );

        // The same query twice is bit-identical (shared cache, fixed seed).
        let again = client.query(r#"{"automaton":"coin","horizon":1}"#).unwrap();
        assert_eq!(
            again.json().unwrap().get("dist"),
            body.get("dist").cloned().as_ref()
        );

        handle.shutdown_and_wait();
    }

    #[test]
    fn bad_requests_get_stable_error_codes() {
        let (handle, client) = start(quick_config());
        let code_of = |resp: &client::Response| {
            resp.json()
                .unwrap()
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap()
        };

        let cases: &[(&str, u16, &str)] = &[
            ("{not json", 400, "malformed-request"),
            (r#"{"horizon":1}"#, 400, "malformed-request"),
            (
                r#"{"automaton":"nope","horizon":1}"#,
                400,
                "unknown-automaton",
            ),
            (
                r#"{"automaton":"coin","scheduler":"nope","horizon":1}"#,
                400,
                "unknown-scheduler",
            ),
            (
                r#"{"automaton":"coin","observation":"nope","horizon":1}"#,
                400,
                "unknown-observation",
            ),
            (
                r#"{"automaton":"coin","horizon":99}"#,
                400,
                "horizon-too-large",
            ),
            (
                r#"{"automaton":"coin","horizon":1,"budget":{"deadline_ms":-5}}"#,
                400,
                "malformed-request",
            ),
        ];
        for (body, status, code) in cases {
            let resp = client.query(body).unwrap();
            assert_eq!(resp.status, *status, "{body}");
            assert_eq!(code_of(&resp), *code, "{body}");
        }

        // Raw garbage on the socket is answered 400, not ignored.
        let status = client::send_garbage(&handle.addr().to_string(), b"NONSENSE\r\n\r\n").unwrap();
        assert_eq!(status, Some(400));

        // Wrong method / unknown path.
        let resp = client.request("GET", "/v1/query", None).unwrap();
        assert_eq!(resp.status, 405);
        let resp = client.get("/nope").unwrap();
        assert_eq!(resp.status, 404);

        handle.shutdown_and_wait();
    }

    #[test]
    fn disconnect_mid_query_cancels_within_a_grain() {
        let (handle, client) = start(quick_config());
        let metrics = handle.metrics();
        let addr = handle.addr().to_string();

        client::fire_and_disconnect(&addr, slow_query()).unwrap();

        // The watcher must flip the token and the engine must unwind.
        let deadline = Instant::now() + Duration::from_secs(20);
        while metrics.cancelled.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "cancellation never observed");
            thread::sleep(Duration::from_millis(10));
        }
        let unwind_ns = metrics.cancel_latency_ns_max.load(Ordering::Relaxed);
        assert!(unwind_ns > 0);
        assert!(
            unwind_ns < 2_000_000_000,
            "cancel→unwind took {unwind_ns}ns — the engine is not honouring grain checks"
        );

        // The metrics page agrees.
        let page = client.get("/metrics").unwrap().body;
        assert!(page.contains("dpioa_cancelled_total 1"), "{page}");

        handle.shutdown_and_wait();
    }

    #[test]
    fn queue_overflow_sheds_with_retry_after() {
        let (handle, client) = start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 1,
            watcher_poll: Duration::from_millis(2),
            ..ServerConfig::default()
        });
        let addr = handle.addr().to_string();
        let metrics = handle.metrics();

        // Occupy the only worker with a long query (socket held open),
        // then fill the queue with an idle connection.
        let busy = TcpStream::connect(&addr).unwrap();
        {
            use std::io::Write as _;
            let mut busy = &busy;
            let q = slow_query();
            let head = format!(
                "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{q}",
                q.len()
            );
            busy.write_all(head.as_bytes()).unwrap();
            busy.flush().unwrap();
        }
        // Wait until the worker picked the busy query up.
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.in_flight.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "query never started");
            thread::sleep(Duration::from_millis(5));
        }
        let _filler = TcpStream::connect(&addr).unwrap();
        thread::sleep(Duration::from_millis(50));

        // The next connection must be shed explicitly.
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp.header("retry-after").is_some(), "missing Retry-After");
        let err = resp.json().unwrap();
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("overloaded")
        );
        assert!(metrics.shed.load(Ordering::Relaxed) >= 1);

        drop(busy); // watcher revokes the in-flight query
        handle.shutdown_and_wait();
    }

    #[test]
    fn shared_cache_does_not_leak_choices_across_schedulers() {
        // Regression: the server shares one EngineCache across every
        // scheduler in the catalog. Before choice entries were scoped
        // by scheduler identity, warming walk-8 with first-enabled let
        // the cached choices answer a memoryful-alternate query on the
        // same automaton — wrongly routing it through the lumped tier.
        let (handle, client) = start(quick_config());

        let warm = client
            .query(r#"{"automaton":"walk-8","horizon":10}"#)
            .unwrap();
        assert_eq!(warm.status, 200, "body: {}", warm.body);
        assert_eq!(
            warm.json()
                .unwrap()
                .get("provenance")
                .and_then(|p| p.get("engine"))
                .and_then(Json::as_str),
            Some("lumped")
        );

        let memoryful = client
            .query(r#"{"automaton":"walk-8","scheduler":"memoryful-alternate","horizon":8}"#)
            .unwrap();
        assert_eq!(memoryful.status, 200, "body: {}", memoryful.body);
        let body = memoryful.json().unwrap();
        let prov = body.get("provenance").unwrap();
        assert_eq!(
            prov.get("engine").and_then(Json::as_str),
            Some("exact"),
            "memoryful query answered by the wrong tier after cache warm-up: {}",
            memoryful.body
        );

        handle.shutdown_and_wait();
    }

    #[test]
    fn repeated_family_queries_resume_from_strata_bit_identically() {
        let (handle, client) = start(quick_config());
        // Memoryful scheduler: the lumped tier refuses, so this
        // exercises the general-exact cone strata (keyed
        // observation-independently).
        let q = r#"{"automaton":"walk-8","scheduler":"memoryful-alternate","horizon":6,
            "budget":{"deadline_ms":10000}}"#;

        let first = client.query(q).unwrap();
        assert_eq!(first.status, 200, "body: {}", first.body);
        let first_body = first.json().unwrap();
        let prov = |body: &Json| body.get("provenance").cloned().unwrap();
        assert_eq!(
            prov(&first_body).get("engine").and_then(Json::as_str),
            Some("exact")
        );
        assert_eq!(
            prov(&first_body)
                .get("stratum_depth")
                .and_then(Json::as_u64),
            None,
            "cold run must not claim a stratum resume: {}",
            first.body
        );

        let again = client.query(q).unwrap();
        assert_eq!(again.status, 200, "body: {}", again.body);
        let again_body = again.json().unwrap();
        assert_eq!(
            again_body.get("dist"),
            first_body.get("dist").cloned().as_ref(),
            "stratum-resumed answer must be bit-identical to the cold one"
        );
        assert_eq!(
            prov(&again_body)
                .get("stratum_depth")
                .and_then(Json::as_u64),
            Some(6),
            "repeat query must resume from the horizon stratum: {}",
            again.body
        );

        let page = client.get("/metrics").unwrap().body;
        let counter = |name: &str| -> u64 {
            page.lines()
                .find_map(|l| l.strip_prefix(name))
                .unwrap_or_else(|| panic!("missing {name} in:\n{page}"))
                .trim()
                .parse()
                .unwrap()
        };
        assert!(counter("dpioa_strata_deposits_total ") > 0, "{page}");
        assert!(counter("dpioa_strata_hits_total ") > 0, "{page}");

        handle.shutdown_and_wait();
    }

    /// A fresh, empty store directory unique to this test run.
    fn fresh_store_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpioa-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn persist_endpoint_then_warm_restart_serves_identical_bits() {
        let dir = fresh_store_dir("warm");
        let store_config = || ServerConfig {
            store_dir: Some(dir.clone()),
            ..quick_config()
        };

        // First process: answer a query (warming the cache), commit a
        // snapshot, shut down.
        let (handle, client) = start(store_config());
        assert_eq!(
            handle.metrics().store_misses.load(Ordering::Relaxed),
            1,
            "first boot must be an explicit cold start"
        );
        let q = r#"{"automaton":"walk-8","horizon":10}"#;
        let first = client.query(q).unwrap();
        assert_eq!(first.status, 200, "body: {}", first.body);
        let first_body = first.json().unwrap();

        let persisted = client.request("POST", "/persist", None).unwrap();
        assert_eq!(persisted.status, 200, "body: {}", persisted.body);
        let stats = persisted.json().unwrap();
        assert_eq!(stats.get("persisted").and_then(Json::as_bool), Some(true));
        assert!(
            stats.get("transitions").and_then(Json::as_u64).unwrap() > 0,
            "snapshot of a warmed cache must carry rows: {}",
            persisted.body
        );
        let page = client.get("/metrics").unwrap().body;
        assert!(page.contains("dpioa_store_snapshots_total 1"), "{page}");
        handle.shutdown_and_wait();

        // Second process: boot preload counts as a store hit before any
        // query, and the warm cache serves bit-identical answers.
        let (handle, client) = start(store_config());
        let metrics = handle.metrics();
        assert_eq!(metrics.store_hits.load(Ordering::Relaxed), 1);
        assert!(metrics.store_entries_loaded.load(Ordering::Relaxed) > 0);
        let page = client.get("/metrics").unwrap().body;
        assert!(page.contains("dpioa_store_hits_total 1"), "{page}");

        let cache = handle.cache();
        let before = cache.stats();
        let again = client.query(q).unwrap();
        assert_eq!(again.status, 200, "body: {}", again.body);
        let again_body = again.json().unwrap();
        assert_eq!(
            again_body.get("dist"),
            first_body.get("dist").cloned().as_ref(),
            "warm-started answer must be bit-identical to the original"
        );
        let after = cache.stats();
        let strata = cache.strata_stats();
        assert!(
            strata.hits > 0 || after.hits > before.hits,
            "restarted process must serve from preloaded state \
             ({before:?} -> {after:?}, strata {strata:?})"
        );
        // Stronger than cache hits: the repeat query resumed from the
        // disk-loaded horizon stratum, skipping the expansion entirely.
        assert_eq!(
            again_body
                .get("provenance")
                .and_then(|p| p.get("stratum_depth"))
                .and_then(Json::as_u64),
            Some(10),
            "warm answer must resume from the depth-10 stratum: {}",
            again.body
        );

        handle.shutdown_and_wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_tripped_checkpoint_persists_and_resumes_bit_identically() {
        let dir = fresh_store_dir("ckpt");

        // Control: the uninterrupted exact answer, computed without any
        // store in play.
        let full = r#"{"automaton":"walk-8","scheduler":"memoryful-alternate","horizon":8,
            "budget":{"deadline_ms":10000},"mc_samples":2000}"#;
        let (control_handle, control_client) = start(quick_config());
        let control = control_client.query(full).unwrap();
        assert_eq!(control.status, 200, "body: {}", control.body);
        let control_body = control.json().unwrap();
        assert_eq!(
            control_body
                .get("provenance")
                .and_then(|p| p.get("engine"))
                .and_then(Json::as_str),
            Some("exact")
        );
        control_handle.shutdown_and_wait();

        // Store server, same query under a budget that trips the exact
        // tier: the salvaged hybrid answer leaves a checkpoint on disk.
        let (handle, client) = start(ServerConfig {
            store_dir: Some(dir.clone()),
            ..quick_config()
        });
        let metrics = handle.metrics();
        let tripped = client
            .query(
                r#"{"automaton":"walk-8","scheduler":"memoryful-alternate","horizon":8,
                    "budget":{"max_expansions":2,"deadline_ms":10000},"mc_samples":2000}"#,
            )
            .unwrap();
        assert_eq!(tripped.status, 200, "body: {}", tripped.body);
        assert_eq!(
            tripped
                .json()
                .unwrap()
                .get("provenance")
                .and_then(|p| p.get("engine"))
                .and_then(Json::as_str),
            Some("hybrid")
        );
        assert_eq!(metrics.store_checkpoints.load(Ordering::Relaxed), 1);
        let ckpt_files = |dir: &Path| {
            std::fs::read_dir(dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .starts_with("ckpt-")
                })
                .count()
        };
        assert_eq!(ckpt_files(&dir), 1, "checkpoint file must be on disk");

        // Same query identity with room to finish: the server consumes
        // the checkpoint, resumes, and completes exactly — with the
        // same bits as the uninterrupted control run.
        let resumed = client.query(full).unwrap();
        assert_eq!(resumed.status, 200, "body: {}", resumed.body);
        let resumed_body = resumed.json().unwrap();
        assert_eq!(
            resumed_body
                .get("provenance")
                .and_then(|p| p.get("engine"))
                .and_then(Json::as_str),
            Some("exact"),
            "resumed query must finish on the exact tier: {}",
            resumed.body
        );
        assert_eq!(
            resumed_body.get("dist"),
            control_body.get("dist").cloned().as_ref(),
            "resume must be bit-identical to the uninterrupted run"
        );
        assert_eq!(metrics.store_resumes.load(Ordering::Relaxed), 1);
        assert_eq!(ckpt_files(&dir), 0, "resume must consume the checkpoint");

        handle.shutdown_and_wait();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_without_store_dir_is_a_stable_409() {
        let (handle, client) = start(quick_config());
        let resp = client.request("POST", "/persist", None).unwrap();
        assert_eq!(resp.status, 409, "body: {}", resp.body);
        assert_eq!(
            resp.json()
                .unwrap()
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("store-disabled")
        );
        handle.shutdown_and_wait();
    }

    #[test]
    fn shutdown_endpoint_winds_everything_down() {
        let (handle, client) = start(quick_config());
        let resp = client.request("POST", "/shutdown", None).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.json()
                .unwrap()
                .get("shutting_down")
                .and_then(Json::as_bool),
            Some(true)
        );
        // All threads exit; wait() returning is the assertion.
        handle.wait();
    }
}
