//! Persisted partial results: cone and lumped checkpoints.
//!
//! A deadline-tripped query returns a [`Checkpoint`] carrying its
//! resolved mass and unexpanded frontier. Persisting that checkpoint
//! and resuming it in a *different process* must be indistinguishable
//! from never having been interrupted — so this codec is bit-exact:
//! frontier and resolved orders are written **verbatim** (they seed
//! the deterministic resume expansion), weights keep their raw `f64`
//! bits, and executions serialize as (first state, action/state steps)
//! so the rebuilt spine hashes identically to the original.
//!
//! The interrupt `reason` rides along too — provenance of *why* the
//! partial exists survives the hop across processes.

use crate::error::StoreError;
use crate::format::{self, FileKind};
use crate::wire::{self, Reader};
use dpioa_core::Execution;
use dpioa_sched::{Checkpoint, ConeCheckpoint, EngineError, LumpedCheckpoint, LumpedClass};
use std::path::Path;

const TAG_CONE: u8 = 1;
const TAG_LUMPED: u8 = 2;

fn put_execution(out: &mut Vec<u8>, exec: &Execution) {
    wire::put_value(out, exec.fstate());
    wire::put_varint(out, exec.len() as u64);
    for (_, a, q2) in exec.steps() {
        wire::put_action(out, a);
        wire::put_value(out, q2);
    }
}

fn read_execution(r: &mut Reader<'_>, what: &str) -> Result<Execution, StoreError> {
    let start = r.value(what)?;
    let n = r.len(what)?;
    let mut exec = Execution::from_state(start);
    for _ in 0..n {
        let a = r.action(what)?;
        let q2 = r.value(what)?;
        exec.push(a, q2);
    }
    Ok(exec)
}

fn put_error(out: &mut Vec<u8>, err: &EngineError) {
    match err {
        EngineError::DisabledAction {
            scheduler,
            action,
            state,
        } => {
            out.push(1);
            wire::put_str(out, scheduler);
            wire::put_action(out, *action);
            wire::put_value(out, state);
        }
        EngineError::NonDyadicWeight { weight } => {
            out.push(2);
            wire::put_f64(out, *weight);
        }
        EngineError::BudgetExhausted {
            entries,
            expansions,
            deadline_hit,
            cancelled,
        } => {
            out.push(3);
            wire::put_varint(out, *entries as u64);
            wire::put_varint(out, *expansions as u64);
            out.push(u8::from(*deadline_hit));
            out.push(u8::from(*cancelled));
        }
        EngineError::WorkerPanicked { shard, retries } => {
            out.push(4);
            wire::put_varint(out, *shard as u64);
            wire::put_varint(out, u64::from(*retries));
        }
        EngineError::InvalidSampling { reason } => {
            out.push(5);
            wire::put_str(out, reason);
        }
        EngineError::InvalidMeasure { detail } => {
            out.push(6);
            wire::put_str(out, detail);
        }
        EngineError::NotLumpable { reason } => {
            out.push(7);
            wire::put_str(out, reason);
        }
    }
}

fn read_error(r: &mut Reader<'_>) -> Result<EngineError, StoreError> {
    match r.u8("error tag")? {
        1 => Ok(EngineError::DisabledAction {
            scheduler: r.str("error scheduler")?,
            action: r.action("error action")?,
            state: r.value("error state")?,
        }),
        2 => Ok(EngineError::NonDyadicWeight {
            weight: r.f64("error weight")?,
        }),
        3 => Ok(EngineError::BudgetExhausted {
            entries: r.varint("error entries")? as usize,
            expansions: r.varint("error expansions")? as usize,
            deadline_hit: read_bool(r, "error deadline flag")?,
            cancelled: read_bool(r, "error cancelled flag")?,
        }),
        4 => Ok(EngineError::WorkerPanicked {
            shard: r.varint("error shard")? as usize,
            retries: r.varint("error retries")? as u32,
        }),
        5 => Ok(EngineError::InvalidSampling {
            reason: r.str("error reason")?,
        }),
        6 => Ok(EngineError::InvalidMeasure {
            detail: r.str("error detail")?,
        }),
        7 => Ok(EngineError::NotLumpable {
            reason: r.str("error reason")?,
        }),
        tag => Err(StoreError::Malformed {
            detail: format!("unknown engine-error tag {tag}"),
        }),
    }
}

fn read_bool(r: &mut Reader<'_>, what: &str) -> Result<bool, StoreError> {
    match r.u8(what)? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(StoreError::Malformed {
            detail: format!("{what} has invalid bool byte {b}"),
        }),
    }
}

/// Encode a checkpoint as a store payload (no frame).
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let mut out = Vec::new();
    match ckpt {
        Checkpoint::Cone(c) => {
            out.push(TAG_CONE);
            put_error(&mut out, &c.reason);
            wire::put_varint(&mut out, c.horizon as u64);
            wire::put_varint(&mut out, c.resolved.len() as u64);
            for (exec, w) in &c.resolved {
                put_execution(&mut out, exec);
                wire::put_f64(&mut out, *w);
            }
            wire::put_varint(&mut out, c.frontier.len() as u64);
            for (exec, w) in &c.frontier {
                put_execution(&mut out, exec);
                wire::put_f64(&mut out, *w);
            }
        }
        Checkpoint::Lumped(l) => {
            out.push(TAG_LUMPED);
            put_error(&mut out, &l.reason);
            wire::put_varint(&mut out, l.step as u64);
            wire::put_varint(&mut out, l.horizon as u64);
            wire::put_varint(&mut out, l.resolved.len() as u64);
            for (q, w) in &l.resolved {
                wire::put_value(&mut out, q);
                wire::put_f64(&mut out, *w);
            }
            wire::put_varint(&mut out, l.frontier.len() as u64);
            for class in &l.frontier {
                wire::put_value(&mut out, &class.state);
                wire::put_varint(&mut out, class.trace.len() as u64);
                for a in &class.trace {
                    wire::put_action(&mut out, *a);
                }
                wire::put_f64(&mut out, class.weight);
            }
        }
    }
    out
}

/// Decode a store payload back into a checkpoint, consuming every byte.
pub fn decode_checkpoint(payload: &[u8]) -> Result<Checkpoint, StoreError> {
    let mut r = Reader::new(payload);
    let ckpt = match r.u8("checkpoint tag")? {
        TAG_CONE => {
            let reason = read_error(&mut r)?;
            let horizon = r.varint("cone horizon")? as usize;
            let n = r.len("cone resolved count")?;
            let mut resolved = Vec::with_capacity(n);
            for _ in 0..n {
                let exec = read_execution(&mut r, "cone resolved execution")?;
                let w = r.f64("cone resolved weight")?;
                resolved.push((exec, w));
            }
            let n = r.len("cone frontier count")?;
            let mut frontier = Vec::with_capacity(n);
            for _ in 0..n {
                let exec = read_execution(&mut r, "cone frontier execution")?;
                let w = r.f64("cone frontier weight")?;
                frontier.push((exec, w));
            }
            Checkpoint::Cone(ConeCheckpoint {
                resolved,
                frontier,
                horizon,
                reason,
            })
        }
        TAG_LUMPED => {
            let reason = read_error(&mut r)?;
            let step = r.varint("lumped step")? as usize;
            let horizon = r.varint("lumped horizon")? as usize;
            let n = r.len("lumped resolved count")?;
            let mut resolved = Vec::with_capacity(n);
            for _ in 0..n {
                let q = r.value("lumped resolved state")?;
                let w = r.f64("lumped resolved weight")?;
                resolved.push((q, w));
            }
            let n = r.len("lumped frontier count")?;
            let mut frontier = Vec::with_capacity(n);
            for _ in 0..n {
                let state = r.value("lumped class state")?;
                let n_trace = r.len("lumped class trace count")?;
                let mut trace = Vec::with_capacity(n_trace);
                for _ in 0..n_trace {
                    trace.push(r.action("lumped class trace action")?);
                }
                let weight = r.f64("lumped class weight")?;
                frontier.push(LumpedClass {
                    state,
                    trace,
                    weight,
                });
            }
            Checkpoint::Lumped(LumpedCheckpoint {
                resolved,
                frontier,
                step,
                horizon,
                reason,
            })
        }
        tag => {
            return Err(StoreError::Malformed {
                detail: format!("unknown checkpoint tag {tag}"),
            })
        }
    };
    r.finish()?;
    Ok(ckpt)
}

/// Frame and atomically write `ckpt` to `path` through `vfs`, keyed by
/// `fingerprint`, retrying transient faults per `retry`. Returns the
/// retry count.
pub fn save_checkpoint_with(
    vfs: &dyn crate::vfs::Vfs,
    path: &Path,
    fingerprint: u64,
    ckpt: &Checkpoint,
    retry: crate::format::RetryPolicy,
) -> Result<u32, StoreError> {
    format::write_file_with(
        vfs,
        path,
        FileKind::Checkpoint,
        fingerprint,
        &encode_checkpoint(ckpt),
        retry,
    )
}

/// Frame and atomically write `ckpt` to `path`, keyed by `fingerprint`.
pub fn save_checkpoint(path: &Path, fingerprint: u64, ckpt: &Checkpoint) -> Result<(), StoreError> {
    format::write_file(
        path,
        FileKind::Checkpoint,
        fingerprint,
        &encode_checkpoint(ckpt),
    )
}

/// Read, validate, and decode the checkpoint at `path` through `vfs`.
pub fn load_checkpoint_with(
    vfs: &dyn crate::vfs::Vfs,
    path: &Path,
    fingerprint: u64,
) -> Result<Checkpoint, StoreError> {
    decode_checkpoint(&format::read_file_with(
        vfs,
        path,
        FileKind::Checkpoint,
        fingerprint,
    )?)
}

/// Read, validate, and decode the checkpoint at `path`.
pub fn load_checkpoint(path: &Path, fingerprint: u64) -> Result<Checkpoint, StoreError> {
    decode_checkpoint(&format::read_file(path, FileKind::Checkpoint, fingerprint)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{Action, Value};

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn exec(start: i64, steps: &[(&str, i64)]) -> Execution {
        let mut e = Execution::from_state(Value::int(start));
        for (a, q) in steps {
            e.push(act(a), Value::int(*q));
        }
        e
    }

    fn all_errors() -> Vec<EngineError> {
        vec![
            EngineError::DisabledAction {
                scheduler: "sched".into(),
                action: act("ck-a"),
                state: Value::int(3),
            },
            EngineError::NonDyadicWeight { weight: 0.3 },
            EngineError::BudgetExhausted {
                entries: 10,
                expansions: 4,
                deadline_hit: true,
                cancelled: false,
            },
            EngineError::WorkerPanicked {
                shard: 2,
                retries: 3,
            },
            EngineError::InvalidSampling { reason: "r".into() },
            EngineError::InvalidMeasure { detail: "d".into() },
            EngineError::NotLumpable { reason: "n".into() },
        ]
    }

    fn deadline_reason() -> EngineError {
        EngineError::BudgetExhausted {
            entries: 100,
            expansions: 7,
            deadline_hit: true,
            cancelled: false,
        }
    }

    #[test]
    fn cone_checkpoint_round_trips_bit_exactly() {
        // Unsorted frontier, awkward float bits, shared spines — all
        // must come back verbatim.
        let ckpt = Checkpoint::Cone(ConeCheckpoint {
            resolved: vec![(exec(0, &[("ck-a", 1)]), 0.1 + 0.2)],
            frontier: vec![
                (exec(0, &[("ck-a", 2), ("ck-b", 3)]), 0.25),
                (exec(0, &[]), f64::MIN_POSITIVE),
            ],
            horizon: 9,
            reason: deadline_reason(),
        });
        let payload = encode_checkpoint(&ckpt);
        let back = decode_checkpoint(&payload).unwrap();
        let Checkpoint::Cone(orig) = &ckpt else {
            unreachable!()
        };
        let Checkpoint::Cone(got) = &back else {
            panic!("wrong variant")
        };
        assert_eq!(got.horizon, orig.horizon);
        assert_eq!(got.reason, orig.reason);
        let bits = |v: &Vec<(Execution, f64)>| {
            v.iter()
                .map(|(e, w)| (e.clone(), w.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&got.resolved), bits(&orig.resolved));
        assert_eq!(bits(&got.frontier), bits(&orig.frontier));
        // Re-encoding the decoded checkpoint reproduces the bytes.
        assert_eq!(encode_checkpoint(&back), payload);
    }

    #[test]
    fn lumped_checkpoint_round_trips_bit_exactly() {
        let ckpt = Checkpoint::Lumped(LumpedCheckpoint {
            resolved: vec![(Value::int(5), 0.5), (Value::int(1), 0.125)],
            frontier: vec![
                LumpedClass {
                    state: Value::int(2),
                    trace: vec![act("ck-a"), act("ck-b")],
                    weight: 0.25,
                },
                LumpedClass {
                    state: Value::int(0),
                    trace: vec![],
                    weight: 0.125,
                },
            ],
            step: 3,
            horizon: 12,
            reason: deadline_reason(),
        });
        let payload = encode_checkpoint(&ckpt);
        let back = decode_checkpoint(&payload).unwrap();
        assert_eq!(encode_checkpoint(&back), payload);
        let Checkpoint::Lumped(got) = &back else {
            panic!("wrong variant")
        };
        assert_eq!(got.step, 3);
        assert_eq!(got.horizon, 12);
        assert_eq!(got.frontier.len(), 2);
        assert_eq!(got.frontier[0].trace, vec![act("ck-a"), act("ck-b")]);
    }

    #[test]
    fn every_engine_error_variant_round_trips() {
        for reason in all_errors() {
            let ckpt = Checkpoint::Cone(ConeCheckpoint {
                resolved: vec![],
                frontier: vec![(exec(0, &[]), 1.0)],
                horizon: 1,
                reason: reason.clone(),
            });
            let back = decode_checkpoint(&encode_checkpoint(&ckpt)).unwrap();
            let Checkpoint::Cone(got) = back else {
                panic!("wrong variant")
            };
            assert_eq!(got.reason, reason);
            assert_eq!(got.reason.code(), reason.code());
        }
    }

    #[test]
    fn rebuilt_executions_hash_and_compare_identically() {
        let original = exec(7, &[("ck-a", 8), ("ck-b", 9), ("ck-a", 7)]);
        let ckpt = Checkpoint::Cone(ConeCheckpoint {
            resolved: vec![],
            frontier: vec![(original.clone(), 1.0)],
            horizon: 3,
            reason: deadline_reason(),
        });
        let Checkpoint::Cone(got) = decode_checkpoint(&encode_checkpoint(&ckpt)).unwrap() else {
            panic!("wrong variant")
        };
        let rebuilt = &got.frontier[0].0;
        assert_eq!(rebuilt, &original);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |e: &Execution| {
            let mut h = DefaultHasher::new();
            e.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(rebuilt), h(&original));
    }

    #[test]
    fn file_round_trip_and_kind_separation() {
        let dir = std::env::temp_dir().join(format!("dpioa-store-ckpt-{}", std::process::id()));
        let path = dir.join("q.ckpt");
        let ckpt = Checkpoint::Lumped(LumpedCheckpoint {
            resolved: vec![(Value::int(1), 1.0)],
            frontier: vec![],
            step: 1,
            horizon: 1,
            reason: deadline_reason(),
        });
        save_checkpoint(&path, 77, &ckpt).unwrap();
        let back = load_checkpoint(&path, 77).unwrap();
        assert_eq!(encode_checkpoint(&back), encode_checkpoint(&ckpt));

        // A checkpoint file refuses to open as a cache snapshot.
        let err = crate::format::read_file(&path, FileKind::CacheSnapshot, 77).unwrap_err();
        assert_eq!(err.code(), "store-wrong-kind");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_payloads_are_typed_errors() {
        assert!(matches!(
            decode_checkpoint(&[]).unwrap_err(),
            StoreError::Truncated { .. }
        ));
        assert!(matches!(
            decode_checkpoint(&[9]).unwrap_err(),
            StoreError::Malformed { .. }
        ));
        // Valid prefix, trailing garbage.
        let ckpt = Checkpoint::Cone(ConeCheckpoint {
            resolved: vec![],
            frontier: vec![],
            horizon: 0,
            reason: deadline_reason(),
        });
        let mut payload = encode_checkpoint(&ckpt);
        payload.push(0);
        assert!(matches!(
            decode_checkpoint(&payload).unwrap_err(),
            StoreError::Malformed { .. }
        ));
    }
}
