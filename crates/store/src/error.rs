//! Typed failures of the persistence layer.
//!
//! Every way a snapshot or checkpoint file can be unusable maps to one
//! [`StoreError`] variant with a stable [`StoreError::code`] — the same
//! contract [`dpioa_sched::EngineError::code`] gives the query server.
//! Decoders **never panic** on hostile bytes and **never partially
//! apply** a file: a decode either lands entirely or reports one of
//! these and leaves the target untouched (see the crate docs for the
//! two-pass argument).

use std::fmt;

/// Everything that can go wrong reading or writing a store file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The file does not exist — the ordinary cold-start case, split
    /// from [`StoreError::Io`] so callers can treat it as "no snapshot
    /// yet" rather than a fault.
    NotFound {
        /// The path probed.
        path: String,
    },
    /// An OS-level read/write/rename failure.
    Io {
        /// Which operation failed.
        op: &'static str,
        /// The underlying error rendered.
        detail: String,
    },
    /// The file does not start with the `DPST` magic — not a store file.
    BadMagic,
    /// The file was written by a different (usually newer) format
    /// version; re-snapshot instead of guessing at the layout.
    VersionSkew {
        /// The version recorded in the file.
        found: u32,
    },
    /// The file is a valid store file of the wrong kind (a checkpoint
    /// where a cache snapshot was expected, or vice versa).
    WrongKind {
        /// The kind tag expected.
        expected: u8,
        /// The kind tag found.
        found: u8,
    },
    /// The file is shorter than its header or its recorded payload
    /// length claims — an interrupted write or a length-prefix lie.
    Truncated {
        /// What was missing.
        detail: String,
    },
    /// The trailing checksum does not match the bytes — bit rot or a
    /// torn write that kept the length intact.
    ChecksumMismatch,
    /// The file belongs to a different automaton (or catalog) structure
    /// — it is stale relative to the code asking for it.
    FingerprintMismatch {
        /// The fingerprint the caller derived from its live structure.
        expected: u64,
        /// The fingerprint recorded in the file.
        found: u64,
    },
    /// The payload passed the checksum but does not parse — only
    /// reachable for files produced by a buggy or malicious writer,
    /// since random corruption is caught by the checksum first.
    Malformed {
        /// Where the parse failed.
        detail: String,
    },
}

impl StoreError {
    /// A stable machine-readable code, mirroring
    /// [`dpioa_sched::EngineError::code`]:
    ///
    /// | code | meaning |
    /// |------|---------|
    /// | `store-not-found`            | no file at the path |
    /// | `store-io`                   | OS read/write/rename failure |
    /// | `store-bad-magic`            | not a store file |
    /// | `store-version-skew`         | foreign format version |
    /// | `store-wrong-kind`           | snapshot/checkpoint mix-up |
    /// | `store-truncated`            | short file or length-prefix lie |
    /// | `store-checksum-mismatch`    | corrupted bytes |
    /// | `store-fingerprint-mismatch` | stale vs. the live automaton |
    /// | `store-malformed`            | checksum-valid but unparseable |
    pub fn code(&self) -> &'static str {
        match self {
            StoreError::NotFound { .. } => "store-not-found",
            StoreError::Io { .. } => "store-io",
            StoreError::BadMagic => "store-bad-magic",
            StoreError::VersionSkew { .. } => "store-version-skew",
            StoreError::WrongKind { .. } => "store-wrong-kind",
            StoreError::Truncated { .. } => "store-truncated",
            StoreError::ChecksumMismatch => "store-checksum-mismatch",
            StoreError::FingerprintMismatch { .. } => "store-fingerprint-mismatch",
            StoreError::Malformed { .. } => "store-malformed",
        }
    }

    /// True iff the error means "no usable file" rather than "a fault
    /// worth surfacing" — a cold start (`NotFound`) or a stale file
    /// (`FingerprintMismatch`, `VersionSkew`) that a fresh snapshot
    /// will simply replace.
    pub fn is_cold_start(&self) -> bool {
        matches!(
            self,
            StoreError::NotFound { .. }
                | StoreError::FingerprintMismatch { .. }
                | StoreError::VersionSkew { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound { path } => write!(f, "no store file at {path}"),
            StoreError::Io { op, detail } => write!(f, "store {op} failed: {detail}"),
            StoreError::BadMagic => write!(f, "not a store file (bad magic)"),
            StoreError::VersionSkew { found } => {
                write!(f, "store file has foreign format version {found}")
            }
            StoreError::WrongKind { expected, found } => {
                write!(f, "store file kind {found} where {expected} was expected")
            }
            StoreError::Truncated { detail } => write!(f, "store file truncated: {detail}"),
            StoreError::ChecksumMismatch => write!(f, "store file checksum mismatch"),
            StoreError::FingerprintMismatch { expected, found } => write!(
                f,
                "store file fingerprint {found:016x} does not match live structure {expected:016x}"
            ),
            StoreError::Malformed { detail } => write!(f, "store payload malformed: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            StoreError::NotFound { path: "x".into() },
            StoreError::Io {
                op: "read",
                detail: "d".into(),
            },
            StoreError::BadMagic,
            StoreError::VersionSkew { found: 9 },
            StoreError::WrongKind {
                expected: 1,
                found: 2,
            },
            StoreError::Truncated { detail: "d".into() },
            StoreError::ChecksumMismatch,
            StoreError::FingerprintMismatch {
                expected: 1,
                found: 2,
            },
            StoreError::Malformed { detail: "d".into() },
        ];
        let codes: Vec<&str> = all.iter().map(StoreError::code).collect();
        assert_eq!(
            codes,
            vec![
                "store-not-found",
                "store-io",
                "store-bad-magic",
                "store-version-skew",
                "store-wrong-kind",
                "store-truncated",
                "store-checksum-mismatch",
                "store-fingerprint-mismatch",
                "store-malformed",
            ]
        );
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn cold_start_classification() {
        assert!(StoreError::NotFound { path: "x".into() }.is_cold_start());
        assert!(StoreError::VersionSkew { found: 2 }.is_cold_start());
        assert!(StoreError::FingerprintMismatch {
            expected: 1,
            found: 2
        }
        .is_cold_start());
        assert!(!StoreError::ChecksumMismatch.is_cold_start());
        assert!(!StoreError::BadMagic.is_cold_start());
    }
}
