//! Automaton fingerprints: a structural hash keying every store file.
//!
//! A snapshot or checkpoint is only sound for the automaton structure
//! that produced it — resuming a cone expansion against an edited
//! automaton would silently mix two different measure spaces. The
//! fingerprint is a 64-bit hash of the automaton's *canonical
//! structure*: its name, and for every reachable state (breadth-first
//! from the start state) the canonical byte encoding of the state, its
//! signature partition with actions **sorted by name**, and the
//! canonical (sorted) encoding of every enabled transition measure.
//!
//! Nothing process-local enters the hash: states hash by their
//! [`dpioa_bounded::encode_value`] bytes (not interner ids), actions by
//! name (not symbol ids), weights by canonical `encode_disc` bytes.
//! Two processes — or two runs of one process with differently warmed
//! interners — therefore always agree on the fingerprint, while any
//! edit to the transition structure changes it. The hash chain is the
//! seeded [`FxHasher`] the execution spine already uses.
//!
//! Traversal is capped at [`FINGERPRINT_STATE_CAP`] states so an
//! unbounded automaton still fingerprints in bounded time; the cap and
//! the visit count are mixed into the hash, so two automata that agree
//! on the explored prefix but are cut at different sizes still differ.

use dpioa_bounded::{encode_disc, encode_value};
use dpioa_core::fxhash::FxHasher;
use dpioa_core::{Action, Automaton, Value};
use std::collections::{HashSet, VecDeque};
use std::hash::Hasher;

/// Reachable-state exploration bound for a fingerprint.
pub const FINGERPRINT_STATE_CAP: usize = 1 << 14;

/// Seed of the fingerprint hash chain (distinct from the execution
/// spine's seed so equal byte streams hash differently in the two
/// roles).
const FINGERPRINT_SEED: u64 = 0x5702_7E57;

fn hash_bytes(h: &mut FxHasher, bytes: &[u8]) {
    h.write_u64(bytes.len() as u64);
    h.write(bytes);
}

fn hash_str(h: &mut FxHasher, s: &str) {
    hash_bytes(h, s.as_bytes());
}

/// Action names of one signature class, sorted — `Action`'s own `Ord`
/// is its process-local symbol id and must not leak into the hash.
fn sorted_names(actions: impl IntoIterator<Item = Action>) -> Vec<String> {
    let mut names: Vec<String> = actions.into_iter().map(Action::name).collect();
    names.sort();
    names
}

/// The structural fingerprint of `auto` (see the module docs).
pub fn automaton_fingerprint(auto: &dyn Automaton) -> u64 {
    let mut h = FxHasher::with_seed(FINGERPRINT_SEED);
    hash_str(&mut h, &auto.name());

    let start = auto.start_state();
    let mut visited: HashSet<Vec<u8>> = HashSet::new();
    let mut queue: VecDeque<Value> = VecDeque::new();
    visited.insert(encode_value(&start));
    queue.push_back(start);

    let mut truncated = false;
    while let Some(q) = queue.pop_front() {
        hash_bytes(&mut h, &encode_value(&q));
        let sig = auto.signature(&q);
        for (class, actions) in [
            ("in", sorted_names(sig.input.iter().copied())),
            ("out", sorted_names(sig.output.iter().copied())),
            ("int", sorted_names(sig.internal.iter().copied())),
        ] {
            hash_str(&mut h, class);
            h.write_u64(actions.len() as u64);
            for name in &actions {
                hash_str(&mut h, name);
            }
        }

        // Enabled transitions in name order; `encode_disc` sorts the
        // support, so the measure hashes canonically too.
        let mut all = sorted_names(sig.all());
        all.dedup();
        for name in &all {
            let Some(eta) = auto.transition(&q, Action::named(name)) else {
                continue;
            };
            hash_str(&mut h, name);
            hash_bytes(&mut h, &encode_disc(&eta));
            if truncated {
                continue;
            }
            // Deterministic successor order: the support sorted by
            // canonical encoding (iteration order of a `Disc` is
            // deterministic, but sorting keeps the traversal a pure
            // function of the *structure*).
            let mut by_bytes: Vec<(Vec<u8>, &Value)> =
                eta.iter().map(|(q2, _)| (encode_value(q2), q2)).collect();
            by_bytes.sort();
            for (bytes, q2) in by_bytes {
                if visited.len() >= FINGERPRINT_STATE_CAP {
                    truncated = true;
                    break;
                }
                if visited.insert(bytes) {
                    queue.push_back(q2.clone());
                }
            }
        }
    }

    h.write_u64(visited.len() as u64);
    h.write_u8(u8::from(truncated));
    h.finish()
}

/// One fingerprint over a *set* of automata (a server catalog): the
/// per-automaton fingerprints combined in name order, so the result is
/// independent of enumeration order but sensitive to any member's
/// structure (and to membership itself).
pub fn combined_fingerprint<'a>(parts: impl IntoIterator<Item = (&'a str, u64)>) -> u64 {
    let mut sorted: Vec<(&str, u64)> = parts.into_iter().collect();
    sorted.sort();
    let mut h = FxHasher::with_seed(FINGERPRINT_SEED ^ 0xCA7A_106F);
    h.write_u64(sorted.len() as u64);
    for (name, print) in sorted {
        hash_str(&mut h, name);
        h.write_u64(print);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{ExplicitAutomaton, Signature};
    use dpioa_prob::Disc;

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn walk(n: i64, bias_num: u64) -> ExplicitAutomaton {
        let step = act("fp-step");
        let mut b = ExplicitAutomaton::builder("fp-walk", Value::int(0));
        for k in 0..n {
            b = b.state(k, Signature::new([], [], [step])).transition(
                k,
                step,
                Disc::bernoulli_dyadic(Value::int(k + 1), Value::int(0), bias_num, 2),
            );
        }
        b.state(n, Signature::new([], [], [])).build()
    }

    #[test]
    fn fingerprint_is_deterministic_and_structure_sensitive() {
        let a = automaton_fingerprint(&walk(6, 1));
        let b = automaton_fingerprint(&walk(6, 1));
        assert_eq!(a, b, "same structure, same fingerprint");
        // Different weights, different horizon, different name: all move it.
        assert_ne!(a, automaton_fingerprint(&walk(6, 3)));
        assert_ne!(a, automaton_fingerprint(&walk(7, 1)));
        let renamed = ExplicitAutomaton::builder("fp-walk-2", Value::int(0))
            .state(0, Signature::new([], [], []))
            .build();
        assert_ne!(a, automaton_fingerprint(&renamed));
    }

    #[test]
    fn fingerprint_ignores_interner_warmth() {
        // Warm the interner with unrelated values between two prints of
        // the same automaton: interned ids shift, the fingerprint must
        // not (it is a function of canonical bytes only).
        let before = automaton_fingerprint(&walk(5, 1));
        for k in 1000..1200 {
            let _ = dpioa_core::IValue::of(&Value::int(k));
        }
        assert_eq!(before, automaton_fingerprint(&walk(5, 1)));
    }

    #[test]
    fn combined_is_order_independent_but_membership_sensitive() {
        let a = automaton_fingerprint(&walk(3, 1));
        let b = automaton_fingerprint(&walk(4, 1));
        let ab = combined_fingerprint([("a", a), ("b", b)]);
        let ba = combined_fingerprint([("b", b), ("a", a)]);
        assert_eq!(ab, ba);
        assert_ne!(ab, combined_fingerprint([("a", a)]));
        assert_ne!(ab, combined_fingerprint([("a", a), ("b", a)]));
    }

    #[test]
    fn unbounded_state_space_fingerprints_in_bounded_time() {
        // A counter automaton with unbounded reachable states: the cap
        // must cut the traversal and still give a stable fingerprint.
        struct Counter;
        impl Automaton for Counter {
            fn name(&self) -> String {
                "fp-counter".into()
            }
            fn start_state(&self) -> Value {
                Value::int(0)
            }
            fn signature(&self, _q: &Value) -> Signature {
                Signature::new([], [], [act("fp-inc")])
            }
            fn transition(&self, q: &Value, a: Action) -> Option<Disc<Value>> {
                let Value::Int(k) = q else { return None };
                (a == act("fp-inc")).then(|| Disc::dirac(Value::int(k + 1)))
            }
        }
        let a = automaton_fingerprint(&Counter);
        assert_eq!(a, automaton_fingerprint(&Counter));
    }
}
