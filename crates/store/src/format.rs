//! The framed on-disk container every store file shares.
//!
//! ```text
//! magic "DPST" | version u32 LE | kind u8 | fingerprint u64 LE
//! | payload_len u64 LE | payload bytes | checksum u64 LE
//! ```
//!
//! The checksum is a seeded [`FxHasher`] over every preceding byte
//! (header *and* payload), so a bit flip anywhere in the file — header
//! fields included — is caught before any payload decode runs. Reads
//! validate in a fixed order chosen so the most informative error
//! wins: magic before version (a JPEG is "not a store file", not
//! "version 0xd8ff"), checksum before kind and fingerprint (a corrupt
//! kind byte is corruption, not a snapshot/checkpoint mix-up).
//!
//! Writes are atomic per POSIX rename: the bytes land in a
//! `<name>.<pid>.tmp` sibling first and are renamed over the target
//! only once fully flushed, so a reader never observes a half-written
//! file and a crash mid-write leaves any previous snapshot intact.
//!
//! All IO goes through a [`Vfs`] so the fault plane can interpose:
//! [`write_file_with`] retries transient errors ([`is_transient`])
//! under a bounded [`RetryPolicy`], restarting from a fresh temp file
//! each attempt so a torn write never contaminates the retry. The
//! convenience wrappers [`write_file`]/[`read_file`] run on
//! [`RealVfs`]. Files that fail validation at boot can be moved aside
//! with [`quarantine_file`] instead of blocking warm-start.

use crate::error::StoreError;
use crate::vfs::{is_transient, RealVfs, Vfs};
use dpioa_core::fxhash::FxHasher;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// First four bytes of every store file.
pub const MAGIC: [u8; 4] = *b"DPST";

/// Current format version. Bump on any layout change; readers reject
/// every other version as [`StoreError::VersionSkew`].
pub const FORMAT_VERSION: u32 = 1;

/// Checksum hash-chain seed (distinct from the fingerprint seed).
const CHECKSUM_SEED: u64 = 0xC4EC_505D;

/// Fixed header length: magic + version + kind + fingerprint + payload_len.
const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 8;

/// Suffix appended to files moved aside by [`quarantine_file`].
pub const QUARANTINE_SUFFIX: &str = "quarantine";

/// Bounded retry for transient IO errors on the write path.
///
/// Each attempt restarts from a fresh temp file, so retries are safe
/// even after a torn write — the damaged sibling is discarded, never
/// patched. Permanent errors (`ENOSPC`, validation failures) are
/// surfaced immediately without consuming attempts.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Zero behaves as one.
    pub attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error. Used by the harness to
    /// observe raw fault behaviour.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// What a store file holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FileKind {
    /// An engine-cache snapshot (memoized transitions + choices).
    CacheSnapshot = 1,
    /// A persisted partial-result checkpoint (cone or lumped).
    Checkpoint = 2,
    /// The resident strata of an engine cache: proactively deposited
    /// frontier snapshots, keyed per row by automaton fingerprint,
    /// scheduler scope, observation, and depth.
    Strata = 3,
}

impl FileKind {
    fn from_tag(tag: u8) -> Option<FileKind> {
        match tag {
            1 => Some(FileKind::CacheSnapshot),
            2 => Some(FileKind::Checkpoint),
            3 => Some(FileKind::Strata),
            _ => None,
        }
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::with_seed(CHECKSUM_SEED);
    h.write(bytes);
    h.finish()
}

/// Frame `payload` and write it to `path` atomically (temp sibling +
/// rename) through `vfs`, retrying transient faults per `retry`.
///
/// Returns the number of retries that were needed (0 on a clean first
/// attempt) so callers can feed `dpioa_io_retries_total`.
pub fn write_file_with(
    vfs: &dyn Vfs,
    path: &Path,
    kind: FileKind,
    fingerprint: u64,
    payload: &[u8],
    retry: RetryPolicy,
) -> Result<u32, StoreError> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(kind as u8);
    bytes.extend_from_slice(&fingerprint.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    let sum = checksum(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());

    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            vfs.create_dir_all(parent).map_err(|e| StoreError::Io {
                op: "create-dir",
                detail: e.to_string(),
            })?;
        }
    }
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::Io {
            op: "write",
            detail: format!("path {} has no file name", path.display()),
        })?;
    let tmp = path.with_file_name(format!("{file_name}.{}.tmp", std::process::id()));

    let attempts = retry.attempts.max(1);
    let mut backoff = retry.backoff;
    let mut retries = 0u32;
    loop {
        let write = (|| {
            vfs.write(&tmp, &bytes)?;
            vfs.fsync(&tmp)?;
            vfs.rename(&tmp, path)
        })();
        match write {
            Ok(()) => return Ok(retries),
            Err(e) => {
                // Discard the (possibly torn) sibling; every attempt
                // starts from a clean slate.
                let _ = vfs.remove(&tmp);
                if retries + 1 >= attempts || !is_transient(&e) {
                    return Err(StoreError::Io {
                        op: "write",
                        detail: e.to_string(),
                    });
                }
                retries += 1;
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
            }
        }
    }
}

/// [`write_file_with`] on the production [`RealVfs`] with the default
/// retry policy.
pub fn write_file(
    path: &Path,
    kind: FileKind,
    fingerprint: u64,
    payload: &[u8],
) -> Result<(), StoreError> {
    write_file_with(
        &RealVfs,
        path,
        kind,
        fingerprint,
        payload,
        RetryPolicy::default(),
    )
    .map(|_| ())
}

/// Read and validate a store file through `vfs`, returning its payload.
///
/// `expected_fingerprint` is the fingerprint the caller derived from
/// its *live* structure; a file keyed to anything else is rejected as
/// stale ([`StoreError::FingerprintMismatch`]).
pub fn read_file_with(
    vfs: &dyn Vfs,
    path: &Path,
    kind: FileKind,
    expected_fingerprint: u64,
) -> Result<Vec<u8>, StoreError> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::NotFound {
                path: path.display().to_string(),
            })
        }
        Err(e) => {
            return Err(StoreError::Io {
                op: "read",
                detail: e.to_string(),
            })
        }
    };
    validate(&bytes, kind, expected_fingerprint).map(Vec::from)
}

/// [`read_file_with`] on the production [`RealVfs`].
pub fn read_file(
    path: &Path,
    kind: FileKind,
    expected_fingerprint: u64,
) -> Result<Vec<u8>, StoreError> {
    read_file_with(&RealVfs, path, kind, expected_fingerprint)
}

/// Move a file that failed validation aside to `<name>.quarantine`,
/// returning the quarantine path.
///
/// Boot paths call this instead of deleting: the evidence survives for
/// an operator while warm-start proceeds as a cold start. An existing
/// quarantine file for the same name is overwritten — the newest
/// corpse is the interesting one.
pub fn quarantine_file(vfs: &dyn Vfs, path: &Path) -> Result<PathBuf, StoreError> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| StoreError::Io {
            op: "quarantine",
            detail: format!("path {} has no file name", path.display()),
        })?;
    let dest = path.with_file_name(format!("{file_name}.{QUARANTINE_SUFFIX}"));
    vfs.rename(path, &dest).map_err(|e| StoreError::Io {
        op: "quarantine",
        detail: e.to_string(),
    })?;
    Ok(dest)
}

/// The validation core, separated from I/O so corruption tests can run
/// on in-memory frames.
pub(crate) fn validate(
    bytes: &[u8],
    kind: FileKind,
    expected_fingerprint: u64,
) -> Result<&[u8], StoreError> {
    if bytes.len() < 4 {
        return Err(StoreError::Truncated {
            detail: format!("{} bytes, shorter than the magic", bytes.len()),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    if bytes.len() < HEADER_LEN + 8 {
        return Err(StoreError::Truncated {
            detail: format!("{} bytes, shorter than header + checksum", bytes.len()),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::VersionSkew { found: version });
    }
    let payload_len = u64::from_le_bytes(bytes[17..25].try_into().unwrap());
    let expected_total = (HEADER_LEN as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or(StoreError::Truncated {
            detail: "recorded payload length overflows".into(),
        })?;
    if (bytes.len() as u64) != expected_total {
        return Err(StoreError::Truncated {
            detail: format!(
                "recorded payload length {payload_len} wants a {expected_total}-byte file, have {}",
                bytes.len()
            ),
        });
    }
    let body_end = bytes.len() - 8;
    let recorded = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if checksum(&bytes[..body_end]) != recorded {
        return Err(StoreError::ChecksumMismatch);
    }
    // Header bytes are now checksum-trusted: kind and fingerprint
    // mismatches are semantic staleness, not corruption.
    let found_kind = bytes[8];
    if FileKind::from_tag(found_kind) != Some(kind) {
        return Err(StoreError::WrongKind {
            expected: kind as u8,
            found: found_kind,
        });
    }
    let found_print = u64::from_le_bytes(bytes[9..17].try_into().unwrap());
    if found_print != expected_fingerprint {
        return Err(StoreError::FingerprintMismatch {
            expected: expected_fingerprint,
            found: found_print,
        });
    }
    Ok(&bytes[HEADER_LEN..body_end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{Fault, FaultVfs};
    use std::fs;

    fn frame(kind: FileKind, print: u64, payload: &[u8]) -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!("dpioa-store-fmt-{}", std::process::id()));
        let path = dir.join("frame.dpst");
        write_file(&path, kind, print, payload).unwrap();
        let bytes = fs::read(&path).unwrap();
        let _ = fs::remove_file(&path);
        bytes
    }

    #[test]
    fn round_trip_and_not_found() {
        let dir = std::env::temp_dir().join(format!("dpioa-store-rt-{}", std::process::id()));
        let path = dir.join("nested").join("snap.dpst");
        let payload = b"engine bytes".to_vec();
        write_file(&path, FileKind::CacheSnapshot, 42, &payload).unwrap();
        assert_eq!(
            read_file(&path, FileKind::CacheSnapshot, 42).unwrap(),
            payload
        );
        // No stray temp files left behind.
        let siblings: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings, vec![std::ffi::OsString::from("snap.dpst")]);
        let _ = fs::remove_dir_all(&dir);

        let missing = dir.join("definitely-absent.dpst");
        let err = read_file(&missing, FileKind::CacheSnapshot, 42).unwrap_err();
        assert!(matches!(err, StoreError::NotFound { .. }));
        assert!(err.is_cold_start());
    }

    #[test]
    fn rejection_cases_each_get_their_error() {
        let bytes = frame(FileKind::CacheSnapshot, 7, b"payload");

        // Not a store file at all.
        assert_eq!(
            validate(b"\xff\xd8\xff\xe0 jpeg-ish", FileKind::CacheSnapshot, 7).unwrap_err(),
            StoreError::BadMagic
        );
        // Shorter than the magic.
        assert!(matches!(
            validate(b"DP", FileKind::CacheSnapshot, 7).unwrap_err(),
            StoreError::Truncated { .. }
        ));
        // Foreign version (flip a version byte, refit checksum so only
        // the version differs).
        let mut v = bytes.clone();
        v[4] = 9;
        let end = v.len() - 8;
        let sum = checksum(&v[..end]);
        v[end..].copy_from_slice(&sum.to_le_bytes());
        let err = validate(&v, FileKind::CacheSnapshot, 7).unwrap_err();
        assert_eq!(err, StoreError::VersionSkew { found: 9 });
        assert!(err.is_cold_start());
        // Truncation anywhere in the body.
        for cut in [5, HEADER_LEN, bytes.len() - 9, bytes.len() - 1] {
            assert!(matches!(
                validate(&bytes[..cut], FileKind::CacheSnapshot, 7).unwrap_err(),
                StoreError::Truncated { .. }
            ));
        }
        // Wrong kind (refit checksum).
        let mut k = bytes.clone();
        k[8] = FileKind::Checkpoint as u8;
        let end = k.len() - 8;
        let sum = checksum(&k[..end]);
        k[end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            validate(&k, FileKind::CacheSnapshot, 7).unwrap_err(),
            StoreError::WrongKind {
                expected: 1,
                found: 2
            }
        );
        // Foreign fingerprint.
        let err = validate(&bytes, FileKind::CacheSnapshot, 8).unwrap_err();
        assert_eq!(
            err,
            StoreError::FingerprintMismatch {
                expected: 8,
                found: 7
            }
        );
        assert!(err.is_cold_start());
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        // Flip each bit of the frame in turn: validation must reject
        // every mutant (whichever check fires first), never accept one
        // and never panic. This is the "bit rot cannot smuggle a stale
        // payload through" property.
        let bytes = frame(FileKind::CacheSnapshot, 7, b"tiny payload");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutant = bytes.clone();
                mutant[byte] ^= 1 << bit;
                assert!(
                    validate(&mutant, FileKind::CacheSnapshot, 7).is_err(),
                    "bit flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
        assert_eq!(
            validate(&bytes, FileKind::CacheSnapshot, 7).unwrap(),
            b"tiny payload"
        );
    }

    #[test]
    fn transient_faults_are_retried_and_counted() {
        let dir = std::env::temp_dir().join(format!("dpioa-store-retry-{}", std::process::id()));
        let path = dir.join("retry.dpst");
        // Op 0 is the first write: torn. Retry's fresh write (op 3,
        // after fsync+rename of attempt 1 never happen — ops are
        // write, then remove of the tmp) succeeds.
        let vfs = FaultVfs::scripted(vec![(0, Fault::TornWrite { keep: 3 })]);
        let retries = write_file_with(
            &vfs,
            &path,
            FileKind::CacheSnapshot,
            9,
            b"payload",
            RetryPolicy {
                attempts: 3,
                backoff: Duration::ZERO,
            },
        )
        .unwrap();
        assert_eq!(retries, 1);
        assert_eq!(
            read_file(&path, FileKind::CacheSnapshot, 9).unwrap(),
            b"payload"
        );
        // The torn sibling was cleaned up before the retry.
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_faults_fail_fast_and_leave_the_old_file() {
        let dir = std::env::temp_dir().join(format!("dpioa-store-perm-{}", std::process::id()));
        let path = dir.join("perm.dpst");
        write_file(&path, FileKind::CacheSnapshot, 9, b"old").unwrap();
        // ENOSPC on the first write of the new version: no retry, and
        // the old file is untouched.
        let vfs = FaultVfs::scripted(vec![(0, Fault::Enospc)]);
        let err = write_file_with(
            &vfs,
            &path,
            FileKind::CacheSnapshot,
            9,
            b"new",
            RetryPolicy::default(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "store-io");
        assert_eq!(vfs.faults_injected(), 1);
        assert_eq!(
            read_file(&path, FileKind::CacheSnapshot, 9).unwrap(),
            b"old"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_moves_the_corpse_aside() {
        let dir = std::env::temp_dir().join(format!("dpioa-store-quar-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dpst");
        fs::write(&path, b"not a store file").unwrap();
        let dest = quarantine_file(&RealVfs, &path).unwrap();
        assert_eq!(dest, dir.join("bad.dpst.quarantine"));
        assert!(!path.exists());
        assert_eq!(fs::read(&dest).unwrap(), b"not a store file");
        let _ = fs::remove_dir_all(&dir);
    }
}
