//! # dpioa-store — persistent engine-state snapshots
//!
//! The engine's warm-cache speedups (memoized transitions, scheduler
//! choices) and its graceful-degradation checkpoints both die with the
//! process. This crate makes them durable: a dependency-free, std-only
//! binary store whose files survive restarts and cross process
//! boundaries without losing a bit.
//!
//! Three layers:
//!
//! * [`wire`](crate::snapshot) primitives + the framed [`format`]: a
//!   `DPST` magic, format version, [`FileKind`] tag, automaton
//!   [fingerprint](automaton_fingerprint), length-prefixed payload,
//!   and a trailing checksum over the whole frame. Writes are atomic
//!   (temp sibling + rename); reads reject corrupt, truncated,
//!   foreign-version, and stale files with typed [`StoreError`]s —
//!   never a panic, never a partially-applied cache.
//! * [`snapshot`]: canonical cache snapshots. Rows are keyed by
//!   portable identities (canonical value bytes, action names, scope
//!   describe-strings) and sorted at encode, so equal cache contents
//!   give byte-equal files. Warm starts stream rows back through the
//!   admission-gated imports — quota overflow turns rows away rather
//!   than evicting live entries.
//! * [`checkpoint`](save_checkpoint): bit-exact persistence of
//!   deadline-tripped partial results ([`dpioa_sched::Checkpoint`]),
//!   so an interrupted query can resume in a fresh process and finish
//!   with the same bits as an uninterrupted run.
//!
//! Every file is keyed by an [`automaton_fingerprint`] — a structural
//! hash over the automaton's canonical form, independent of
//! process-local interner or symbol ids — so a snapshot can never be
//! replayed against a structure it does not describe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod error;
mod fingerprint;
mod format;
mod snapshot;
mod strata;
mod vfs;
mod wire;

pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, load_checkpoint, load_checkpoint_with, save_checkpoint,
    save_checkpoint_with,
};
pub use error::StoreError;
pub use fingerprint::{automaton_fingerprint, combined_fingerprint, FINGERPRINT_STATE_CAP};
pub use format::{
    quarantine_file, read_file, read_file_with, write_file, write_file_with, FileKind, RetryPolicy,
    FORMAT_VERSION, MAGIC, QUARANTINE_SUFFIX,
};
pub use snapshot::{
    decode_into_cache, encode_cache, EngineCacheStoreExt, SnapshotStats, WarmStartStats,
};
pub use strata::{
    decode_strata, encode_strata, load_strata, load_strata_with, save_strata, save_strata_with,
    StratumRow,
};
pub use vfs::{is_transient, Fault, FaultVfs, RealVfs, Vfs};
