//! Engine-cache snapshots: canonical bytes, streaming warm-start.
//!
//! A snapshot holds every memoized transition row and scheduler-choice
//! row of an [`EngineCache`], each keyed by *portable* identities
//! (canonical value bytes, action names, scope description strings) —
//! never process-local interner or symbol ids. Rows are **sorted** at
//! encode time, so two caches with equal contents produce byte-equal
//! snapshots regardless of shard layout or insertion order; the file
//! is a canonical function of the cache's semantic content.
//!
//! Decoding is two-phase to keep the no-partial-application promise:
//! phase one parses and validates the entire payload (and demands it
//! consume every byte); only then does phase two stream the rows into
//! the cache shards through the admission-gated import hooks — so a
//! payload that fails [`StoreError::Malformed`] leaves the cache
//! untouched, and a payload that exceeds quotas degrades by *turning
//! rows away* (counted, never evicting what a live workload already
//! earned).

use crate::error::StoreError;
use crate::format::{self, FileKind};
use crate::wire::{self, Reader};
use dpioa_core::{Action, Value};
use dpioa_prob::{Disc, SubDisc};
use dpioa_sched::EngineCache;
use std::path::Path;

/// What a snapshot write covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Transition rows written (enabled and disabled memos).
    pub transitions: usize,
    /// Scheduler-choice rows written.
    pub choices: usize,
    /// Framed file size in bytes.
    pub bytes: usize,
    /// Transient-IO retries the write needed (0 on a clean pass).
    pub io_retries: u32,
}

/// What a warm start recovered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmStartStats {
    /// Transition rows accepted into the cache.
    pub transitions: usize,
    /// Scheduler-choice rows accepted into the cache.
    pub choices: usize,
    /// Rows refused by capacity or family-admission quotas (also
    /// surfaced as `CacheStats::store_rejected_entries`).
    pub rejected: u64,
    /// Rows skipped because the cache already held that key — the
    /// incumbent entry wins over the file.
    pub skipped: usize,
}

/// One decoded transition row, held only between the validate and
/// apply phases.
struct TransRow {
    family: Option<String>,
    state: Value,
    action_name: String,
    eta: Option<Disc<Value>>,
}

/// One decoded choice row.
struct ChoiceRow {
    scope: String,
    step: usize,
    state: Value,
    choice: Option<SubDisc<Action>>,
}

/// A borrowed transition row carrying its portable sort key
/// (canonical state bytes + action name).
type KeyedTrans<'a> = (
    Option<String>,
    Vec<u8>,
    String,
    &'a Value,
    &'a Option<Disc<Value>>,
);

/// A borrowed choice row carrying its portable sort key.
type KeyedChoice<'a> = (
    &'a String,
    usize,
    Vec<u8>,
    &'a Value,
    &'a Option<SubDisc<Action>>,
);

/// Encode the full cache contents as a canonical snapshot payload.
pub fn encode_cache(cache: &EngineCache) -> Vec<u8> {
    let mut trans = cache.export_transitions();
    // Sort on portable keys only; `encode_value` gives a total order on
    // states that agrees across processes.
    let mut trans_keyed: Vec<KeyedTrans<'_>> = trans
        .iter()
        .map(|(family, q, a, eta)| {
            (
                family.clone(),
                dpioa_bounded::encode_value(q),
                a.name(),
                q,
                eta,
            )
        })
        .collect();
    trans_keyed.sort_by(|a, b| (&a.0, &a.1, &a.2).cmp(&(&b.0, &b.1, &b.2)));

    let mut out = Vec::new();
    wire::put_varint(&mut out, trans_keyed.len() as u64);
    for (family, _, name, q, eta) in &trans_keyed {
        match family {
            None => out.push(0),
            Some(f) => {
                out.push(1);
                wire::put_str(&mut out, f);
            }
        }
        wire::put_value(&mut out, q);
        wire::put_str(&mut out, name);
        match eta {
            None => out.push(0),
            Some(eta) => {
                out.push(1);
                wire::put_disc(&mut out, eta);
            }
        }
    }
    drop(trans_keyed);
    trans.clear();
    drop(trans);

    let choices = cache.export_choices();
    let mut choice_keyed: Vec<KeyedChoice<'_>> = choices
        .iter()
        .map(|(scope, step, q, c)| (scope, *step, dpioa_bounded::encode_value(q), q, c))
        .collect();
    choice_keyed.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));

    wire::put_varint(&mut out, choice_keyed.len() as u64);
    for (scope, step, _, q, choice) in &choice_keyed {
        wire::put_str(&mut out, scope);
        wire::put_varint(&mut out, *step as u64);
        wire::put_value(&mut out, q);
        wire::put_choice(&mut out, choice.as_ref());
    }
    out
}

/// Phase one: parse the whole payload, consuming every byte.
fn parse_payload(payload: &[u8]) -> Result<(Vec<TransRow>, Vec<ChoiceRow>), StoreError> {
    let mut r = Reader::new(payload);
    let n_trans = r.len("transition count")?;
    let mut trans = Vec::with_capacity(n_trans);
    for _ in 0..n_trans {
        let family = match r.u8("family flag")? {
            0 => None,
            1 => Some(r.str("family")?),
            flag => {
                return Err(StoreError::Malformed {
                    detail: format!("invalid family flag {flag}"),
                })
            }
        };
        let state = r.value("transition state")?;
        let action_name = r.str("transition action")?;
        let eta = match r.u8("eta flag")? {
            0 => None,
            1 => Some(r.disc("eta")?),
            flag => {
                return Err(StoreError::Malformed {
                    detail: format!("invalid eta flag {flag}"),
                })
            }
        };
        trans.push(TransRow {
            family,
            state,
            action_name,
            eta,
        });
    }
    let n_choices = r.len("choice count")?;
    let mut choices = Vec::with_capacity(n_choices);
    for _ in 0..n_choices {
        let scope = r.str("choice scope")?;
        let step = r.varint("choice step")? as usize;
        let state = r.value("choice state")?;
        let choice = r.choice("choice")?;
        choices.push(ChoiceRow {
            scope,
            step,
            state,
            choice,
        });
    }
    r.finish()?;
    Ok((trans, choices))
}

/// Phase two: stream validated rows into the cache through the
/// admission-gated imports. Only called after [`parse_payload`]
/// succeeded in full.
pub fn decode_into_cache(
    payload: &[u8],
    cache: &EngineCache,
) -> Result<WarmStartStats, StoreError> {
    let (trans, choices) = parse_payload(payload)?;
    let rejected_before = cache.stats().store_rejected_entries;
    let mut stats = WarmStartStats::default();
    for row in trans {
        if cache.import_transition(
            row.family.as_deref(),
            &row.state,
            Action::named(&row.action_name),
            row.eta,
        ) {
            stats.transitions += 1;
        } else {
            stats.skipped += 1;
        }
    }
    for row in choices {
        if cache.import_choice(&row.scope, row.step, &row.state, row.choice) {
            stats.choices += 1;
        } else {
            stats.skipped += 1;
        }
    }
    // Quota refusals were counted as `skipped` above; reclassify them
    // using the cache's own rejection counter, which only capacity and
    // admission bumps (incumbent collisions do not).
    stats.rejected = cache.stats().store_rejected_entries - rejected_before;
    stats.skipped -= stats.rejected as usize;
    Ok(stats)
}

/// Cache persistence as an extension trait, so `EngineCache` itself
/// stays free of on-disk concerns.
pub trait EngineCacheStoreExt {
    /// Write a canonical snapshot of this cache to `path`, keyed by
    /// `fingerprint`, atomically.
    fn snapshot_to(&self, path: &Path, fingerprint: u64) -> Result<SnapshotStats, StoreError>;

    /// [`EngineCacheStoreExt::snapshot_to`] through an explicit `vfs`
    /// and retry policy — the fault-plane entry point.
    fn snapshot_to_with(
        &self,
        vfs: &dyn crate::vfs::Vfs,
        path: &Path,
        fingerprint: u64,
        retry: format::RetryPolicy,
    ) -> Result<SnapshotStats, StoreError>;

    /// Load the snapshot at `path` into this cache, verifying the
    /// frame, checksum, and `fingerprint` first. On any error the
    /// cache is left exactly as it was.
    fn warm_start_from(&self, path: &Path, fingerprint: u64) -> Result<WarmStartStats, StoreError>;

    /// [`EngineCacheStoreExt::warm_start_from`] through an explicit
    /// `vfs`.
    fn warm_start_from_with(
        &self,
        vfs: &dyn crate::vfs::Vfs,
        path: &Path,
        fingerprint: u64,
    ) -> Result<WarmStartStats, StoreError>;
}

impl EngineCacheStoreExt for EngineCache {
    fn snapshot_to(&self, path: &Path, fingerprint: u64) -> Result<SnapshotStats, StoreError> {
        self.snapshot_to_with(
            &crate::vfs::RealVfs,
            path,
            fingerprint,
            format::RetryPolicy::default(),
        )
    }

    fn snapshot_to_with(
        &self,
        vfs: &dyn crate::vfs::Vfs,
        path: &Path,
        fingerprint: u64,
        retry: format::RetryPolicy,
    ) -> Result<SnapshotStats, StoreError> {
        let trans = self.export_transitions().len();
        let choices = self.export_choices().len();
        let payload = encode_cache(self);
        let bytes = payload.len() + 33; // header (25) + checksum (8)
        let io_retries = format::write_file_with(
            vfs,
            path,
            FileKind::CacheSnapshot,
            fingerprint,
            &payload,
            retry,
        )?;
        Ok(SnapshotStats {
            transitions: trans,
            choices,
            bytes,
            io_retries,
        })
    }

    fn warm_start_from(&self, path: &Path, fingerprint: u64) -> Result<WarmStartStats, StoreError> {
        self.warm_start_from_with(&crate::vfs::RealVfs, path, fingerprint)
    }

    fn warm_start_from_with(
        &self,
        vfs: &dyn crate::vfs::Vfs,
        path: &Path,
        fingerprint: u64,
    ) -> Result<WarmStartStats, StoreError> {
        let payload = format::read_file_with(vfs, path, FileKind::CacheSnapshot, fingerprint)?;
        decode_into_cache(&payload, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{Automaton, ExplicitAutomaton, IValue, Signature, Value};
    use dpioa_prob::Disc;

    fn act(s: &str) -> Action {
        Action::named(s)
    }

    fn chain(n: i64) -> ExplicitAutomaton {
        let step = act("snap-step");
        let mut b = ExplicitAutomaton::builder("snap-chain", Value::int(0));
        for k in 0..n {
            b = b.state(k, Signature::new([], [], [step])).transition(
                k,
                step,
                Disc::bernoulli_dyadic(Value::int(k + 1), Value::int(0), 1, 2),
            );
        }
        b.state(n, Signature::new([], [], [])).build()
    }

    /// Fill a cache with the chain's `n + 1` transition rows (`n`
    /// enabled pairs plus the terminal disabled memo) and one memoized
    /// choice row.
    fn warmed_cache(n: i64) -> EngineCache {
        let auto = chain(n);
        let cache = EngineCache::new();
        for k in 0..=n {
            let q = Value::int(k);
            let _ = cache.successors(&auto, &q, IValue::of(&q), act("snap-step"));
        }
        let c = SubDisc::from_entries(vec![(act("snap-step"), 1.0)]).unwrap();
        assert!(cache.import_choice("snap-sched", 0, &Value::int(0), Some(c)));
        cache
    }

    #[test]
    fn snapshot_round_trips_and_is_canonical() {
        let cache = warmed_cache(12);
        let payload = encode_cache(&cache);

        // Same contents inserted in a different order produce the same
        // bytes: canonical form is order-free.
        let reordered = EngineCache::new();
        for (family, q, a, eta) in cache.export_transitions().into_iter().rev() {
            assert!(reordered.import_transition(family.as_deref(), &q, a, eta));
        }
        for (scope, step, q, c) in cache.export_choices().into_iter().rev() {
            assert!(reordered.import_choice(&scope, step, &q, c));
        }
        assert_eq!(payload, encode_cache(&reordered));

        // Round trip into a fresh cache: every row lands, nothing
        // rejected, and re-decoding skips everything (incumbents win).
        let fresh = EngineCache::new();
        let stats = decode_into_cache(&payload, &fresh).unwrap();
        assert_eq!(stats.transitions, 13); // 12 enabled + 1 disabled memo
        assert_eq!(stats.choices, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.skipped, 0);
        assert_eq!(payload, encode_cache(&fresh));

        let again = decode_into_cache(&payload, &fresh).unwrap();
        assert_eq!(again.transitions + again.choices, 0);
        assert_eq!(again.skipped, 14);
        assert_eq!(again.rejected, 0);
    }

    #[test]
    fn warm_started_cache_serves_hits_with_identical_bits() {
        let auto = chain(8);
        let cache = warmed_cache(8);
        let dir = std::env::temp_dir().join(format!("dpioa-store-snap-{}", std::process::id()));
        let path = dir.join("warm.dpst");
        cache.snapshot_to(&path, 99).unwrap();

        let fresh = EngineCache::new();
        let stats = fresh.warm_start_from(&path, 99).unwrap();
        assert_eq!(stats.transitions, 9);
        let _ = std::fs::remove_dir_all(&dir);

        // Every successor query is now a hit, and the memoized measures
        // are bit-identical to the automaton's own.
        let before = fresh.transition_stats();
        for k in 0..8i64 {
            let q = Value::int(k);
            let got = fresh
                .successors(&auto, &q, IValue::of(&q), act("snap-step"))
                .expect("enabled");
            let want = auto.transition(&q, act("snap-step")).unwrap();
            let bits = |eta: &Disc<Value>| {
                eta.iter()
                    .map(|(v, &w)| (IValue::of(v), w.to_bits()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(bits(&got.eta), bits(&want));
        }
        let after = fresh.transition_stats();
        assert_eq!(after.hits - before.hits, 8);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn corrupt_payload_leaves_cache_untouched() {
        let cache = warmed_cache(6);
        let mut payload = encode_cache(&cache);
        // Lop off the tail: the last row is now truncated. The decode
        // must fail without inserting any earlier (intact) rows.
        payload.truncate(payload.len() - 3);
        let fresh = EngineCache::new();
        let err = decode_into_cache(&payload, &fresh).unwrap_err();
        assert!(matches!(
            err,
            StoreError::Truncated { .. } | StoreError::Malformed { .. }
        ));
        assert_eq!(fresh.transition_entries(), 0);
        assert!(fresh.export_choices().is_empty());

        // Same for trailing garbage.
        let mut padded = encode_cache(&cache);
        padded.extend_from_slice(b"xx");
        let err = decode_into_cache(&padded, &fresh).unwrap_err();
        assert!(matches!(err, StoreError::Malformed { .. }));
        assert_eq!(fresh.transition_entries(), 0);
    }

    #[test]
    fn warm_start_respects_admission_quotas() {
        let big = warmed_cache(40);
        let payload = encode_cache(&big);
        let small = EngineCache::bounded(16);
        let stats = decode_into_cache(&payload, &small).unwrap();
        assert!(stats.rejected > 0, "quota must turn rows away");
        assert_eq!(
            stats.transitions as u64 + stats.rejected + stats.skipped as u64,
            41 // 40 enabled pairs + the terminal disabled memo
        );
        // Imports never evict.
        assert_eq!(small.transition_stats().evictions, 0);
        assert_eq!(
            small.stats().store_rejected_entries,
            stats.rejected,
            "rejections surface in CacheStats"
        );
    }

    #[test]
    fn snapshot_file_round_trip_stats() {
        let cache = warmed_cache(5);
        let dir = std::env::temp_dir().join(format!("dpioa-store-snapst-{}", std::process::id()));
        let path = dir.join("s.dpst");
        let snap = cache.snapshot_to(&path, 1).unwrap();
        assert_eq!(snap.transitions, 6);
        assert_eq!(snap.choices, 1);
        assert_eq!(snap.bytes, std::fs::metadata(&path).unwrap().len() as usize);

        // Wrong fingerprint: typed rejection, cache untouched.
        let fresh = EngineCache::new();
        let err = fresh.warm_start_from(&path, 2).unwrap_err();
        assert_eq!(err.code(), "store-fingerprint-mismatch");
        assert_eq!(fresh.transition_entries(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
