//! Persisted strata: the cache's proactively deposited frontier
//! snapshots, durable across restarts.
//!
//! Where a [checkpoint file](crate::save_checkpoint) holds the remains
//! of *one* budget-tripped query, a strata file holds the whole
//! [`dpioa_sched::EngineCache`] stratum table — every conserving
//! snapshot successful expansions dropped along the way
//! ([`dpioa_sched::EngineCache::export_strata`]). A warm-started
//! server re-imports them and answers repeat-family queries by
//! resuming from the deepest compatible stratum instead of
//! re-expanding from the root, bit-identically (DESIGN.md §11).
//!
//! Rows are keyed portably — automaton fingerprint, scheduler scope
//! *describe-string* (interned scope ids are process-local),
//! observation name, depth — and sorted canonically at encode, so
//! equal tables give byte-equal files. Each row nests the bit-exact
//! [checkpoint codec](crate::encode_checkpoint); the frame fingerprint
//! is the caller's catalog fingerprint, so a file from a foreign
//! catalog reads as a cold start, never as data.

use crate::checkpoint::{decode_checkpoint, encode_checkpoint};
use crate::error::StoreError;
use crate::format::{self, FileKind};
use crate::wire::{self, Reader};
use dpioa_sched::Checkpoint;
use std::path::Path;

/// One portable stratum row: `(automaton fingerprint, scope
/// describe-string, observation name, depth, snapshot)` — the exact
/// shape [`dpioa_sched::EngineCache::export_strata`] produces and
/// [`dpioa_sched::EngineCache::import_stratum`] consumes.
pub type StratumRow = (u64, String, String, usize, Checkpoint);

/// Encode strata rows as a store payload (no frame). Rows are sorted
/// by key first, so encoding is canonical regardless of input order.
pub fn encode_strata(rows: &[StratumRow]) -> Vec<u8> {
    let mut sorted: Vec<&StratumRow> = rows.iter().collect();
    sorted.sort_by(|a, b| (a.0, &a.1, &a.2, a.3).cmp(&(b.0, &b.1, &b.2, b.3)));
    let mut out = Vec::new();
    wire::put_varint(&mut out, sorted.len() as u64);
    for (fp, scope, obs, depth, ckpt) in sorted {
        wire::put_varint(&mut out, *fp);
        wire::put_str(&mut out, scope);
        wire::put_str(&mut out, obs);
        wire::put_varint(&mut out, *depth as u64);
        let nested = encode_checkpoint(ckpt);
        wire::put_varint(&mut out, nested.len() as u64);
        out.extend_from_slice(&nested);
    }
    out
}

/// Decode a store payload back into strata rows, consuming every byte.
pub fn decode_strata(payload: &[u8]) -> Result<Vec<StratumRow>, StoreError> {
    let mut r = Reader::new(payload);
    let n = r.len("stratum row count")?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let fp = r.varint("stratum fingerprint")?;
        let scope = r.str("stratum scope")?;
        let obs = r.str("stratum observation")?;
        let depth = r.varint("stratum depth")? as usize;
        let nested = r.bytes("stratum checkpoint")?;
        rows.push((fp, scope, obs, depth, decode_checkpoint(nested)?));
    }
    r.finish()?;
    Ok(rows)
}

/// Frame and atomically write `rows` to `path` through `vfs`, keyed by
/// the caller's catalog `fingerprint`, retrying transient faults per
/// `retry`. Returns the retry count.
pub fn save_strata_with(
    vfs: &dyn crate::vfs::Vfs,
    path: &Path,
    fingerprint: u64,
    rows: &[StratumRow],
    retry: crate::format::RetryPolicy,
) -> Result<u32, StoreError> {
    format::write_file_with(
        vfs,
        path,
        FileKind::Strata,
        fingerprint,
        &encode_strata(rows),
        retry,
    )
}

/// Frame and atomically write `rows` to `path`, keyed by the caller's
/// catalog `fingerprint`.
pub fn save_strata(path: &Path, fingerprint: u64, rows: &[StratumRow]) -> Result<(), StoreError> {
    format::write_file(path, FileKind::Strata, fingerprint, &encode_strata(rows))
}

/// Read, validate, and decode the strata file at `path` through `vfs`.
pub fn load_strata_with(
    vfs: &dyn crate::vfs::Vfs,
    path: &Path,
    fingerprint: u64,
) -> Result<Vec<StratumRow>, StoreError> {
    decode_strata(&format::read_file_with(
        vfs,
        path,
        FileKind::Strata,
        fingerprint,
    )?)
}

/// Read, validate, and decode the strata file at `path`.
pub fn load_strata(path: &Path, fingerprint: u64) -> Result<Vec<StratumRow>, StoreError> {
    decode_strata(&format::read_file(path, FileKind::Strata, fingerprint)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpioa_core::{Action, Execution, Value};
    use dpioa_sched::{stratum_reason, ConeCheckpoint, LumpedCheckpoint, LumpedClass};

    fn cone_row() -> StratumRow {
        let mut frontier_exec = Execution::from_state(Value::int(0));
        frontier_exec.push(Action::named("st-a"), Value::int(1));
        (
            11,
            "sched{first-enabled}".into(),
            String::new(),
            2,
            Checkpoint::Cone(ConeCheckpoint {
                resolved: vec![(Execution::from_state(Value::int(9)), 0.5)],
                frontier: vec![(frontier_exec, 0.5)],
                horizon: 2,
                reason: stratum_reason(),
            }),
        )
    }

    fn lumped_row(depth: usize) -> StratumRow {
        (
            7,
            "sched{priority}".into(),
            "last-state".into(),
            depth,
            Checkpoint::Lumped(LumpedCheckpoint {
                resolved: vec![(Value::int(3), 0.25)],
                frontier: vec![LumpedClass {
                    state: Value::int(1),
                    trace: vec![Action::named("st-b")],
                    weight: 0.75,
                }],
                step: depth,
                horizon: depth,
                reason: stratum_reason(),
            }),
        )
    }

    #[test]
    fn rows_round_trip_and_encoding_is_canonical() {
        let rows = vec![cone_row(), lumped_row(4), lumped_row(2)];
        let payload = encode_strata(&rows);
        let back = decode_strata(&payload).unwrap();
        assert_eq!(back.len(), 3);
        // Decoded rows come back in canonical key order…
        assert_eq!(
            back.iter()
                .map(|(fp, _, _, d, _)| (*fp, *d))
                .collect::<Vec<_>>(),
            vec![(7, 2), (7, 4), (11, 2)]
        );
        // …and re-encoding them reproduces the bytes, as does encoding
        // the original rows in any order.
        assert_eq!(encode_strata(&back), payload);
        let shuffled = vec![lumped_row(2), cone_row(), lumped_row(4)];
        assert_eq!(encode_strata(&shuffled), payload);
        // Nested checkpoints survive bit-exactly.
        for (row, got) in [lumped_row(2), lumped_row(4), cone_row()].iter().zip(&back) {
            assert_eq!(encode_checkpoint(&row.4), encode_checkpoint(&got.4));
        }
    }

    #[test]
    fn zero_row_file_round_trips() {
        // A server that never deposited still persists cleanly, and a
        // warm start from the empty file imports nothing — no error,
        // no phantom rows.
        let dir = std::env::temp_dir().join(format!("dpioa-store-strata0-{}", std::process::id()));
        let path = dir.join("strata.dpst");
        save_strata(&path, 42, &[]).unwrap();
        assert!(load_strata(&path, 42).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_round_trip_kind_and_fingerprint_separation() {
        let dir = std::env::temp_dir().join(format!("dpioa-store-strata-{}", std::process::id()));
        let path = dir.join("strata.dpst");
        let rows = vec![cone_row(), lumped_row(3)];
        save_strata(&path, 99, &rows).unwrap();
        let back = load_strata(&path, 99).unwrap();
        assert_eq!(encode_strata(&back), encode_strata(&rows));

        // A strata file refuses to open as a snapshot, and a foreign
        // catalog fingerprint reads as a cold start.
        let err = crate::format::read_file(&path, FileKind::CacheSnapshot, 99).unwrap_err();
        assert_eq!(err.code(), "store-wrong-kind");
        let err = load_strata(&path, 100).unwrap_err();
        assert!(err.is_cold_start());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_payloads_are_typed_errors() {
        assert!(matches!(
            decode_strata(&[]).unwrap_err(),
            StoreError::Truncated { .. }
        ));
        // Row count lying about the bytes available.
        assert!(matches!(
            decode_strata(&[5]).unwrap_err(),
            StoreError::Truncated { .. }
        ));
        // Trailing garbage after a valid row set.
        let mut payload = encode_strata(&[lumped_row(1)]);
        payload.push(0);
        assert!(matches!(
            decode_strata(&payload).unwrap_err(),
            StoreError::Malformed { .. }
        ));
        // Corrupt the nested checkpoint's tag byte (the nested bytes
        // sit verbatim at the end of a one-row payload).
        let row = lumped_row(1);
        let mut payload = encode_strata(std::slice::from_ref(&row));
        let tag_at = payload.len() - encode_checkpoint(&row.4).len();
        payload[tag_at] = 9;
        assert!(matches!(
            decode_strata(&payload).unwrap_err(),
            StoreError::Malformed { .. }
        ));
    }
}
