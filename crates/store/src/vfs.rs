//! The injectable IO plane every store operation runs through.
//!
//! The store's crash-consistency promise — a reader sees the complete
//! old file or the complete new file, never a blend — rests on a small
//! set of filesystem primitives (write a sibling, fsync it, rename it
//! over the target). [`Vfs`] names exactly those primitives, so the
//! promise can be *tested*, not just argued: [`RealVfs`] passes every
//! call to `std::fs`, while [`FaultVfs`] wraps it and injects the
//! fault classes real disks exhibit — torn writes truncated at an
//! arbitrary byte, fsync failures, `ENOSPC`, `EIO`, and renames that
//! claim success but never happen — at deterministic, scriptable
//! points. The crash-consistency harness in `tests/` sweeps a fault
//! over every mutating operation of a persistence pass and asserts the
//! all-old-or-all-new invariant at each one.
//!
//! Fault classification: [`is_transient`] decides which injected (or
//! real) errors the retry loop in [`crate::write_file`] may retry —
//! `EIO` and interrupted-style errors are transient (controllers
//! hiccup; a rewrite starts from a fresh temp file), `ENOSPC` is not
//! (retrying cannot create free space).

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The filesystem primitives the store is built from.
///
/// Implementations must be safe to share across threads: the server
/// calls these concurrently from the persist thread, the request path
/// (checkpoint save/load), and boot (warm start).
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Read the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Create (truncating) `path` and write `bytes` to it. Makes no
    /// durability promise — pair with [`Vfs::fsync`].
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flush the file at `path` (data + metadata) to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Atomically rename `from` over `to` (POSIX `rename(2)`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// The entries of `dir`, as full paths, in unspecified order.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The production IO plane: every call goes straight to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        fs::read_dir(dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<Vec<_>>>()
    }
}

/// One injectable fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The write lands only its first `keep` bytes on disk, then fails
    /// with `EIO` — a torn write / mid-write crash.
    TornWrite {
        /// Bytes that make it to disk before the tear.
        keep: usize,
    },
    /// The write fails wholesale with `ENOSPC`; nothing lands.
    Enospc,
    /// The read or write fails with `EIO`; on a write nothing lands.
    Eio,
    /// `fsync` reports `EIO` — the data may or may not be durable, the
    /// caller must treat the file as suspect.
    FsyncFail,
    /// The rename reports success but never happens — the journal
    /// entry that would have made it durable is lost with the crash.
    RenameDrop,
}

const ENOSPC: i32 = 28;
const EIO: i32 = 5;

fn os_err(raw: i32, what: &str) -> io::Error {
    io::Error::new(
        io::Error::from_raw_os_error(raw).kind(),
        format!("injected fault: {what}"),
    )
}

/// True iff retrying the operation could plausibly succeed: the
/// interrupted/timeout family plus `EIO` (transient controller
/// faults). `ENOSPC` and everything else are permanent — a retry
/// cannot make space or un-corrupt a path.
pub fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    ) || err.raw_os_error() == Some(EIO)
        || err.kind() == io::Error::from_raw_os_error(EIO).kind()
}

#[derive(Debug, Default)]
struct FaultState {
    /// Scripted one-shot faults, keyed by mutating-op index. Consumed
    /// when they fire.
    script: Vec<(u64, Fault)>,
    /// Seeded LCG state for probabilistic injection (chaos mode).
    rng: u64,
    /// Injection probability in percent for seeded mode.
    rate_percent: u32,
}

/// A deterministic fault-injecting wrapper around [`RealVfs`].
///
/// Two modes, composable:
///
/// * **Scripted** ([`FaultVfs::scripted`]): fault `f` fires when the
///   *mutating-op counter* (writes, fsyncs, renames, removes — reads
///   and listings don't advance it) reaches index `k`. Each scripted
///   fault fires exactly once, which models transient faults: the
///   retry that follows finds the disk healthy again.
/// * **Seeded** ([`FaultVfs::seeded`]): every mutating op rolls a
///   deterministic LCG; a hit injects a fault whose kind cycles
///   through the full fault alphabet. Used by the chaos bench.
///
/// Reads are only faulted by scripted `Eio` entries (indexed on the
/// same counter *without* advancing it — schedule them against the op
/// index the preceding mutation left).
pub struct FaultVfs {
    inner: RealVfs,
    state: Mutex<FaultState>,
    mutating_ops: AtomicU64,
    injected: AtomicU64,
}

impl fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultVfs")
            .field("mutating_ops", &self.mutating_ops.load(Ordering::Relaxed))
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultVfs {
    /// A fault plane that injects each `(op index, fault)` pair once.
    pub fn scripted(script: Vec<(u64, Fault)>) -> FaultVfs {
        FaultVfs {
            inner: RealVfs,
            state: Mutex::new(FaultState {
                script,
                ..FaultState::default()
            }),
            mutating_ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// A fault plane that injects on roughly `rate_percent`% of
    /// mutating ops, deterministically under `seed`.
    pub fn seeded(seed: u64, rate_percent: u32) -> FaultVfs {
        FaultVfs {
            inner: RealVfs,
            state: Mutex::new(FaultState {
                script: Vec::new(),
                rng: seed | 1,
                rate_percent: rate_percent.min(100),
            }),
            mutating_ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// A pass-through fault plane that only counts — run a persistence
    /// pass through this first to learn how many mutating ops it
    /// performs, then sweep a scripted fault over `0..count`.
    pub fn counting() -> FaultVfs {
        FaultVfs::scripted(Vec::new())
    }

    /// Mutating operations observed so far.
    pub fn mutating_ops(&self) -> u64 {
        self.mutating_ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decide the fault (if any) for the mutating op with index `op`.
    fn roll(&self, op: u64) -> Option<Fault> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(at) = st.script.iter().position(|&(k, _)| k == op) {
            let (_, fault) = st.script.remove(at);
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(fault);
        }
        if st.rate_percent > 0 {
            // Deterministic LCG (Numerical Recipes constants).
            st.rng = st
                .rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let draw = (st.rng >> 33) % 100;
            if (draw as u32) < st.rate_percent {
                self.injected.fetch_add(1, Ordering::Relaxed);
                // Cycle the alphabet so every class shows up; torn
                // writes keep a pseudo-random prefix.
                let fault = match (st.rng >> 17) % 5 {
                    0 => Fault::TornWrite {
                        keep: (st.rng >> 7) as usize % 64,
                    },
                    1 => Fault::Enospc,
                    2 => Fault::Eio,
                    3 => Fault::FsyncFail,
                    _ => Fault::RenameDrop,
                };
                return Some(fault);
            }
        }
        None
    }

    /// Advance the mutating-op counter and roll for its fault.
    fn next_mutation(&self) -> Option<Fault> {
        let op = self.mutating_ops.fetch_add(1, Ordering::Relaxed);
        self.roll(op)
    }

    /// Peek the fault scheduled against the *current* counter value
    /// without advancing it (read-path injection).
    fn read_fault(&self) -> Option<Fault> {
        let op = self.mutating_ops.load(Ordering::Relaxed);
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(at) = st
            .script
            .iter()
            .position(|&(k, f)| k == op && f == Fault::Eio)
        {
            let (_, fault) = st.script.remove(at);
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(fault);
        }
        None
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.read_fault().is_some() {
            return Err(os_err(EIO, "read EIO"));
        }
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.next_mutation() {
            Some(Fault::TornWrite { keep }) => {
                let keep = keep.min(bytes.len());
                // The torn prefix really lands — that is the point.
                let _ = self.inner.write(path, &bytes[..keep]);
                Err(os_err(EIO, "torn write"))
            }
            Some(Fault::Enospc) => Err(os_err(ENOSPC, "write ENOSPC")),
            Some(Fault::Eio) => Err(os_err(EIO, "write EIO")),
            // Fsync/rename faults scheduled against a write index
            // still consume their slot but do not fault the write.
            Some(Fault::FsyncFail) | Some(Fault::RenameDrop) | None => {
                self.inner.write(path, bytes)
            }
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        match self.next_mutation() {
            Some(Fault::FsyncFail) | Some(Fault::Eio) => Err(os_err(EIO, "fsync EIO")),
            _ => self.inner.fsync(path),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_mutation() {
            // The rename claims success; the on-disk state keeps the
            // old target (and the orphaned temp sibling).
            Some(Fault::RenameDrop) => Ok(()),
            Some(Fault::Eio) => Err(os_err(EIO, "rename EIO")),
            Some(Fault::Enospc) => Err(os_err(ENOSPC, "rename ENOSPC")),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.next_mutation() {
            Some(Fault::Eio) => Err(os_err(EIO, "remove EIO")),
            _ => self.inner.remove(path),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dpioa-vfs-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir.join(name)
    }

    #[test]
    fn real_vfs_round_trips() {
        let path = tmp("real.bin");
        RealVfs.write(&path, b"abc").unwrap();
        RealVfs.fsync(&path).unwrap();
        assert_eq!(RealVfs.read(&path).unwrap(), b"abc");
        let renamed = tmp("real2.bin");
        RealVfs.rename(&path, &renamed).unwrap();
        assert!(RealVfs.read(&path).is_err());
        assert_eq!(RealVfs.read(&renamed).unwrap(), b"abc");
        let listing = RealVfs.list(renamed.parent().unwrap()).unwrap();
        assert!(listing.contains(&renamed));
        RealVfs.remove(&renamed).unwrap();
    }

    #[test]
    fn scripted_faults_fire_once_at_their_index() {
        let path = tmp("torn.bin");
        let vfs = FaultVfs::scripted(vec![(0, Fault::TornWrite { keep: 2 })]);
        let err = vfs.write(&path, b"abcdef").unwrap_err();
        assert!(is_transient(&err), "torn write must be retryable: {err}");
        assert_eq!(fs::read(&path).unwrap(), b"ab", "torn prefix lands");
        // Second attempt (op index 1) is clean.
        vfs.write(&path, b"abcdef").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"abcdef");
        assert_eq!(vfs.faults_injected(), 1);
        assert_eq!(vfs.mutating_ops(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rename_drop_keeps_the_old_target() {
        let a = tmp("rd-a.bin");
        let b = tmp("rd-b.bin");
        RealVfs.write(&a, b"new").unwrap();
        RealVfs.write(&b, b"old").unwrap();
        let vfs = FaultVfs::scripted(vec![(0, Fault::RenameDrop)]);
        vfs.rename(&a, &b).unwrap(); // claims success
        assert_eq!(fs::read(&b).unwrap(), b"old", "drop keeps the target");
        assert_eq!(fs::read(&a).unwrap(), b"new", "source still orphaned");
        let _ = fs::remove_file(&a);
        let _ = fs::remove_file(&b);
    }

    #[test]
    fn enospc_is_permanent_eio_is_transient() {
        let vfs = FaultVfs::scripted(vec![(0, Fault::Enospc), (1, Fault::Eio)]);
        let path = tmp("class.bin");
        let full = vfs.write(&path, b"x").unwrap_err();
        assert!(!is_transient(&full), "ENOSPC must not be retried: {full}");
        let flaky = vfs.write(&path, b"x").unwrap_err();
        assert!(is_transient(&flaky), "EIO must be retryable: {flaky}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn seeded_mode_is_deterministic_and_injects_at_roughly_the_rate() {
        let run = || {
            let vfs = FaultVfs::seeded(0xC4A05, 30);
            let path = tmp("seeded.bin");
            let mut outcomes = Vec::new();
            for _ in 0..200 {
                outcomes.push(vfs.write(&path, b"payload").is_ok());
            }
            let _ = fs::remove_file(&path);
            (outcomes, vfs.faults_injected())
        };
        let (a, a_inj) = run();
        let (b, b_inj) = run();
        assert_eq!(a, b, "same seed, same fault sequence");
        assert_eq!(a_inj, b_inj);
        assert!(a_inj > 20 && a_inj < 120, "rate off: {a_inj}/200");
    }
}
