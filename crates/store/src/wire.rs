//! Primitive wire helpers shared by every store codec.
//!
//! The vocabulary deliberately mirrors `crates/bounded/src/encoding.rs`
//! — LEB128 varints, length-prefixed canonical value encodings — so a
//! state serializes to the *same bytes* in a snapshot as in a
//! cost-model encoding. Two additions the cost model does not need:
//!
//! * **verbatim distributions** — [`put_disc`] preserves support order
//!   and raw `f64` bits (the bounded crate's `encode_disc` sorts for
//!   canonicity, which is right for fingerprints and wrong for memo
//!   entries, whose iteration order is part of the bit-identity
//!   contract);
//! * a bounds-checked [`Reader`] that turns every malformed input into
//!   a typed [`StoreError`] instead of a panic.

use crate::error::StoreError;
use dpioa_bounded::{decode_value, encode_value};
use dpioa_core::{Action, Value};
use dpioa_prob::{Disc, SubDisc};

/// Append `v` as an LEB128 varint (identical to the bounded crate's).
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a length-prefixed UTF-8 string.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Append a length-prefixed canonical value encoding.
pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    let bytes = encode_value(v);
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(&bytes);
}

/// Append an action by *name* — symbol ids are process-local.
pub(crate) fn put_action(out: &mut Vec<u8>, a: Action) {
    put_str(out, &a.name());
}

/// Append raw `f64` bits, little-endian.
pub(crate) fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Append a distribution verbatim: support order and weight bits
/// exactly as iterated.
pub(crate) fn put_disc(out: &mut Vec<u8>, eta: &Disc<Value>) {
    put_varint(out, eta.support_len() as u64);
    for (q, &w) in eta.iter() {
        put_value(out, q);
        put_f64(out, w);
    }
}

/// Append an optional sub-measure over actions (a memoized scheduler
/// choice): flag byte, then entries verbatim plus the recorded mass.
pub(crate) fn put_choice(out: &mut Vec<u8>, choice: Option<&SubDisc<Action>>) {
    match choice {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_varint(out, c.iter().count() as u64);
            for (a, &w) in c.iter() {
                put_action(out, *a);
                put_f64(out, w);
            }
            put_f64(out, c.mass());
        }
    }
}

/// A bounds-checked cursor over a payload. Every accessor returns a
/// typed [`StoreError`] on malformed input; nothing panics.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// The decode consumed every byte — trailing garbage is malformed.
    pub(crate) fn finish(self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StoreError::Malformed {
                detail: format!("{} trailing bytes", self.buf.len() - self.pos),
            })
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| StoreError::Malformed {
                detail: format!("length overflow reading {what}"),
            })?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| StoreError::Truncated {
                detail: format!(
                    "needed {n} bytes for {what} at offset {}, had {}",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            })?;
        self.pos = end;
        Ok(bytes)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn varint(&mut self, what: &str) -> Result<u64, StoreError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(what)?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(StoreError::Malformed {
            detail: format!("varint overflow reading {what}"),
        })
    }

    /// A varint that must fit a collection length: also guards against
    /// length-prefix lies that would ask for more bytes than the whole
    /// payload holds (each element is at least one byte).
    pub(crate) fn len(&mut self, what: &str) -> Result<usize, StoreError> {
        let n = self.varint(what)?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return Err(StoreError::Truncated {
                detail: format!("{what} claims {n} elements with {remaining} bytes left"),
            });
        }
        Ok(n as usize)
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, StoreError> {
        let bytes = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// A length-prefixed opaque byte run (a nested payload another
    /// decoder consumes on its own).
    pub(crate) fn bytes(&mut self, what: &str) -> Result<&'a [u8], StoreError> {
        let n = self.len(what)?;
        self.take(n, what)
    }

    pub(crate) fn str(&mut self, what: &str) -> Result<String, StoreError> {
        let n = self.len(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Malformed {
            detail: format!("{what} is not utf-8"),
        })
    }

    pub(crate) fn action(&mut self, what: &str) -> Result<Action, StoreError> {
        Ok(Action::named(self.str(what)?))
    }

    pub(crate) fn value(&mut self, what: &str) -> Result<Value, StoreError> {
        let n = self.len(what)?;
        let bytes = self.take(n, what)?;
        decode_value(bytes).ok_or_else(|| StoreError::Malformed {
            detail: format!("{what} is not a canonical value encoding"),
        })
    }

    pub(crate) fn disc(&mut self, what: &str) -> Result<Disc<Value>, StoreError> {
        let n = self.len(what)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let q = self.value(what)?;
            let w = self.f64(what)?;
            entries.push((q, w));
        }
        Disc::from_entries(entries).map_err(|e| StoreError::Malformed {
            detail: format!("{what} is not a probability measure: {e:?}"),
        })
    }

    pub(crate) fn choice(&mut self, what: &str) -> Result<Option<SubDisc<Action>>, StoreError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => {
                let n = self.len(what)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let a = self.action(what)?;
                    let w = self.f64(what)?;
                    entries.push((a, w));
                }
                let mass = self.f64(what)?;
                SubDisc::from_entries_with_mass(entries, mass)
                    .map(Some)
                    .map_err(|e| StoreError::Malformed {
                        detail: format!("{what} is not a sub-measure: {e:?}"),
                    })
            }
            flag => Err(StoreError::Malformed {
                detail: format!("{what} has invalid option flag {flag}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_and_matches_leb128() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint("v").unwrap(), v);
            r.finish().unwrap();
        }
        let mut buf = Vec::new();
        put_varint(&mut buf, 300);
        assert_eq!(buf, vec![0xac, 0x02]);
    }

    #[test]
    fn disc_round_trip_is_verbatim() {
        // Support order and exact bits must survive — including an
        // order a canonical (sorted) encoding would change.
        let eta = Disc::from_entries(vec![
            (Value::int(7), 0.1 + 0.2), // 0.30000000000000004
            (Value::int(1), 1.0 - (0.1 + 0.2)),
        ])
        .unwrap();
        let mut buf = Vec::new();
        put_disc(&mut buf, &eta);
        let mut r = Reader::new(&buf);
        let back = r.disc("eta").unwrap();
        r.finish().unwrap();
        let orig: Vec<(Value, u64)> = eta.iter().map(|(q, &w)| (q.clone(), w.to_bits())).collect();
        let got: Vec<(Value, u64)> = back
            .iter()
            .map(|(q, &w)| (q.clone(), w.to_bits()))
            .collect();
        assert_eq!(orig, got);
    }

    #[test]
    fn choice_round_trip_preserves_mass_bits() {
        let flip = Action::named("wire-flip");
        let halt = Action::named("wire-halt");
        let c = SubDisc::from_entries(vec![(flip, 0.25), (halt, 0.5)]).unwrap();
        let mut buf = Vec::new();
        put_choice(&mut buf, Some(&c));
        let mut r = Reader::new(&buf);
        let back = r.choice("c").unwrap().unwrap();
        r.finish().unwrap();
        assert_eq!(back.mass().to_bits(), c.mass().to_bits());
        let pair = |s: &SubDisc<Action>| {
            s.iter()
                .map(|(a, &w)| (*a, w.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(pair(&back), pair(&c));

        // The None flag round-trips too.
        let mut buf = Vec::new();
        put_choice(&mut buf, None);
        let mut r = Reader::new(&buf);
        assert!(r.choice("c").unwrap().is_none());
        r.finish().unwrap();
    }

    #[test]
    fn hostile_inputs_are_typed_errors_not_panics() {
        // Truncated varint.
        let mut r = Reader::new(&[0x80]);
        assert!(matches!(r.varint("v"), Err(StoreError::Truncated { .. })));
        // Length-prefix lie: claims 100 elements with 1 byte left.
        let mut buf = Vec::new();
        put_varint(&mut buf, 100);
        buf.push(0);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.len("list"), Err(StoreError::Truncated { .. })));
        // Non-canonical value bytes.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1);
        buf.push(0xff); // no such tag
        let mut r = Reader::new(&buf);
        assert!(matches!(r.value("q"), Err(StoreError::Malformed { .. })));
        // Invalid option flag.
        let mut r = Reader::new(&[7]);
        assert!(matches!(r.choice("c"), Err(StoreError::Malformed { .. })));
        // A "distribution" whose weights are not a measure.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1);
        put_value(&mut buf, &Value::int(1));
        put_f64(&mut buf, 0.25);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.disc("eta"), Err(StoreError::Malformed { .. })));
        // Trailing bytes are rejected.
        let r = Reader::new(&[0]);
        assert!(matches!(r.finish(), Err(StoreError::Malformed { .. })));
    }
}
