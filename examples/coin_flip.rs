//! Blum coin flipping over a hiding commitment: the coin stays uniform
//! against every adversary strategy, and the ideal coin functionality is
//! emulated exactly via the equivocating simulator.
//!
//! Run with: `cargo run -p dpioa-examples --bin coin_flip`

use dpioa_core::{Automaton, Value};
use dpioa_insight::TraceInsight;
use dpioa_protocols::coinflip::{
    coin_distribution, coinflip_adversary, coinflip_instance, coinflip_simulator, flipping_env,
    Strategy,
};
use dpioa_sched::SchedulerSchema;
use dpioa_secure::secure_emulation_epsilon;
use std::sync::Arc;

fn main() {
    println!("== Blum coin flip over the XOR commitment ==\n");

    // 1. Fairness: whatever the adversary's strategy for choosing its
    //    bit after seeing the commitment, the coin is exactly uniform —
    //    because the commitment is perfectly hiding.
    println!("coin distribution by adversary strategy:");
    for (i, strategy) in Strategy::all().into_iter().enumerate() {
        let d = coin_distribution(&format!("demo{i}"), strategy);
        let p0 = d.prob(&Value::int(0));
        let p1 = d.prob(&Value::int(1));
        println!("  {:<18} P(0) = {p0}, P(1) = {p1}", format!("{strategy:?}"));
        assert_eq!((p0, p1), (0.5, 0.5));
    }

    // 2. Secure emulation of F_coin, strategy by strategy: the simulator
    //    fabricates the commitment, derives the adversary's bit from it,
    //    and equivocates the revealed b1 to match the ideal coin.
    println!("\nsecure emulation of F_coin (Def. 4.26):");
    for (i, strategy) in Strategy::all().into_iter().enumerate() {
        let tag = format!("emu{i}");
        let inst = coinflip_instance(&tag);
        let envs: Vec<Arc<dyn Automaton>> = vec![flipping_env(&tag)];
        let r = secure_emulation_epsilon(
            &inst,
            &coinflip_adversary(&tag, strategy),
            &coinflip_simulator(&tag, strategy),
            &envs,
            &SchedulerSchema::priority(48, 13),
            &TraceInsight,
            12,
        );
        println!(
            "  {:<18} measured eps = {}",
            format!("{strategy:?}"),
            r.epsilon
        );
        assert_eq!(r.epsilon, 0.0);
    }

    println!("\nthe equivocation argument holds exactly for every strategy. ok.");
}
