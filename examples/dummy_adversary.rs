//! Lemma 4.29 (dummy adversary insertion), certified with exact
//! rational arithmetic: inserting the forwarding dummy adversary between
//! a protocol and its adversary is invisible — ε is identically zero.
//!
//! The example builds the two worlds of the lemma, lifts a scheduler of
//! the direct world through the paper's `Forward^s` construction, and
//! compares the exact `f-dist`s (image measures of ε_σ) with `i128`
//! rationals — no floating-point tolerance anywhere.
//!
//! Run with: `cargo run -p dpioa-examples --bin dummy_adversary`

use dpioa_core::{Action, Automaton, ExplicitAutomaton, Signature, Value};
use dpioa_insight::{balanced_epsilon_exact, f_dist_exact, PrintInsight};
use dpioa_prob::Ratio;
use dpioa_sched::{FirstEnabled, Scheduler};
use dpioa_secure::{DummyInsertion, StructuredAutomaton};
use std::sync::Arc;

fn act(s: &str) -> Action {
    Action::named(s)
}

/// A party with an environment interface (go / rep) and an adversary
/// interface (leak / cmd).
fn party() -> StructuredAutomaton {
    let auto = ExplicitAutomaton::builder("party", Value::int(0))
        .state(0, Signature::new([act("go")], [], []))
        .state(1, Signature::new([], [act("leak")], []))
        .state(2, Signature::new([act("cmd")], [], []))
        .state(3, Signature::new([], [act("rep")], []))
        .state(4, Signature::new([], [], []))
        .step(0, act("go"), 1)
        .step(1, act("leak"), 2)
        .step(2, act("cmd"), 3)
        .step(3, act("rep"), 4)
        .build()
        .shared();
    StructuredAutomaton::with_env_actions(auto, [act("go"), act("rep")])
}

fn env() -> Arc<dyn Automaton> {
    ExplicitAutomaton::builder("env", Value::int(0))
        .state(0, Signature::new([], [act("go")], []))
        .state(1, Signature::new([act("rep")], [], []))
        .state(2, Signature::new([], [], []))
        .step(0, act("go"), 1)
        .step(1, act("rep"), 2)
        .build()
        .shared()
}

/// An adversary speaking the RENAMED dialect (it faces `g(A)` in the
/// direct world and the dummy's outer interface in the other).
fn adv() -> Arc<dyn Automaton> {
    ExplicitAutomaton::builder("adv", Value::int(0))
        .state(0, Signature::new([act("leak@g")], [], []))
        .state(1, Signature::new([], [act("cmd@g")], []))
        .state(2, Signature::new([act("leak@g")], [], []))
        .step(0, act("leak@g"), 1)
        .step(1, act("cmd@g"), 2)
        .step(2, act("leak@g"), 2)
        .build()
        .shared()
}

fn main() {
    println!("== Lemma 4.29: dummy adversary insertion, exactly ==\n");

    let insertion = DummyInsertion::new(party(), "@g");
    println!("adversary renaming g:");
    for (from, to) in insertion.g() {
        println!("  {from}  ->  {to}");
    }

    let (e, a) = (env(), adv());
    let world_direct = insertion.world_direct(&e, &a); // E ‖ g(A) ‖ Adv
    let world_dummy = insertion.world_dummy(&e, &a); // hide(E ‖ A ‖ Dummy ‖ Adv, AAct)
    println!("\nworld 1: {}", world_direct.name());
    println!("world 2: {}", world_dummy.name());

    // Lift σ through Forward^s and compare exact image measures.
    let sigma: Arc<dyn Scheduler> = Arc::new(FirstEnabled);
    let sigma_fwd = insertion.forward_scheduler(world_direct.clone(), sigma.clone());
    let insight = PrintInsight::new([act("go"), act("rep")]);

    let d1 = f_dist_exact(&*world_direct, &sigma, &insight, 16);
    let d2 = f_dist_exact(&*world_dummy, &sigma_fwd, &insight, 16);
    println!("\nexact f-dist of the direct world under sigma:");
    for (obs, p) in d1.iter() {
        println!("  {p}  {obs}");
    }
    println!("exact f-dist of the dummy world under Forward^s(sigma):");
    for (obs, p) in d2.iter() {
        println!("  {p}  {obs}");
    }

    let eps = balanced_epsilon_exact(
        &*world_direct,
        &sigma,
        &*world_dummy,
        &sigma_fwd,
        &insight,
        16,
    );
    println!("\nexact epsilon = {eps}");
    assert_eq!(eps, Ratio::ZERO);
    println!("Lemma 4.29 certified: the dummy adversary is invisible. ok.");
}
