//! Dynamic subchain ledger: automata created and destroyed at run time.
//!
//! This is the dynamicity the paper was written for (its introduction
//! cites Platypus-style subchains [13]): a probabilistic configuration
//! automaton (Def. 2.16) whose configuration grows when `open(i)`
//! creates a subchain (Def. 2.14's `φ`) and shrinks when a settled
//! subchain reaches an empty signature and the reduction of Def. 2.12
//! removes it.
//!
//! Run with: `cargo run -p dpioa-examples --bin dynamic_subchain`

use dpioa_config::audit_pca;
use dpioa_core::explore::ExploreLimits;
use dpioa_core::{compose2, Automaton};
use dpioa_protocols::subchain::{act_close, act_open, act_settle, act_tx, driver, ledger_pca};
use dpioa_sched::{execution_measure, FirstEnabled};
use std::sync::Arc;

fn main() {
    println!("== dynamic subchain ledger (PCA) ==\n");
    let tag = "demo";
    let pca = ledger_pca(tag, false);

    // Walk a lifecycle by hand, printing the live configuration.
    let mut q = pca.start_state();
    println!("start configuration: {:?}", pca.config(&q));
    let script = [
        act_open(tag, 0),
        act_tx(tag, 0, 2),
        act_open(tag, 1),
        act_tx(tag, 0, 1),
        act_tx(tag, 1, 2),
        act_close(tag, 0),
        act_settle(tag, 0, 3),
        act_close(tag, 1),
        act_settle(tag, 1, 2),
    ];
    for a in script {
        q = pca
            .transition(&q, a)
            .unwrap_or_else(|| panic!("{a} not enabled"))
            .support()
            .next()
            .unwrap()
            .clone();
        println!("after {a:<22} members = {:?}", pca.config(&q));
    }
    assert_eq!(pca.config(&q).len(), 1); // only the root survives

    // The four Def. 2.16 constraints, re-checked independently on the
    // reachable prefix (top/down + bottom/up simulation included).
    let report = audit_pca(
        &*pca,
        ExploreLimits {
            max_states: 2000,
            max_depth: 10,
        },
    );
    report.assert_valid();
    println!(
        "\nPCA audit: all four Def. 2.16 constraints hold on {} states",
        report.states_checked
    );

    // Drive the ledger end-to-end with a scripted environment and the
    // exact execution-measure engine.
    let tag2 = "demo-run";
    let script = vec![
        act_open(tag2, 0),
        act_tx(tag2, 0, 2),
        act_tx(tag2, 0, 2),
        act_close(tag2, 0),
    ];
    let world = compose2(
        driver(tag2, script),
        ledger_pca(tag2, false) as Arc<dyn Automaton>,
    );
    let m = execution_measure(&*world, &FirstEnabled, 32);
    let (exec, p) = m.iter().next().unwrap();
    println!("\nclosed run (probability {p}):");
    for (_, a, _) in exec.steps() {
        println!("  {a}");
    }
    assert!(exec.actions().contains(&act_settle(tag2, 0, 4)));
    println!("\nsubchain 0 settled with total 4. ok.");
}
