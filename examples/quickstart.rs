//! Quickstart: the dpioa framework in one file.
//!
//! Builds a PSIOA (Def. 2.1), composes it with an environment
//! (Defs. 2.3–2.5), resolves nondeterminism with a scheduler (Def. 3.1),
//! computes exact observation distributions (Def. 3.5), and measures the
//! distinguishability of two systems (Def. 3.6).
//!
//! Run with: `cargo run -p dpioa-examples --bin quickstart`

use dpioa_core::prelude::*;
use dpioa_insight::{balanced_epsilon, TraceInsight};
use dpioa_sched::{observation_dist, FirstEnabled};
use std::sync::Arc;

/// A biased coin machine: on the environment's `play`, it flips an
/// internal coin with P(win) = num/8 and announces the outcome.
fn gambler(name: &str, num: u64) -> Arc<dyn Automaton> {
    let play = Action::named("play");
    let spin = Action::named("spin");
    let win = Action::named("win");
    let lose = Action::named("lose");
    ExplicitAutomaton::builder(name, Value::int(0))
        .state(0, Signature::new([play], [], []))
        .state(1, Signature::new([], [], [spin]))
        .state(2, Signature::new([], [win], []))
        .state(3, Signature::new([], [lose], []))
        .state(4, Signature::new([], [], []))
        .step(0, play, 1)
        .transition(
            1,
            spin,
            Disc::bernoulli_dyadic(Value::int(2), Value::int(3), num, 3),
        )
        .step(2, win, 4)
        .step(3, lose, 4)
        .build()
        .shared()
}

/// The environment: presses `play`, then listens.
fn player() -> Arc<dyn Automaton> {
    let play = Action::named("play");
    let win = Action::named("win");
    let lose = Action::named("lose");
    ExplicitAutomaton::builder("player", Value::int(0))
        .state(0, Signature::new([], [play], []))
        .state(1, Signature::new([win, lose], [], []))
        .state(2, Signature::new([], [], []))
        .step(0, play, 1)
        .step(1, win, 2)
        .step(1, lose, 2)
        .build()
        .shared()
}

fn main() {
    println!("== dpioa quickstart ==\n");

    // 1. Build two PSIOA that differ only in their bias.
    let fair = gambler("fair", 4); // P(win) = 1/2
    let crooked = gambler("crooked", 1); // P(win) = 1/8

    // 2. Compose each with the same environment (Def. 2.18).
    let world_fair = compose2(player(), fair);
    let world_crooked = compose2(player(), crooked);
    println!("composed system: {}", world_fair.name());

    // 3. Drive with a scheduler and compute the exact trace distribution.
    let world_for_obs = world_fair.clone();
    let dist = observation_dist(&*world_fair, &FirstEnabled, 4, move |e| {
        e.trace(&*world_for_obs).to_value()
    });
    println!("\nexact trace distribution of the fair world:");
    for (trace, p) in dist.iter() {
        println!("  {p:.3}  {trace}");
    }

    // 4. How distinguishable are the two? (Def. 3.6: the tightest ε of
    //    the balanced-scheduler relation is a total-variation distance.)
    let eps = balanced_epsilon(
        &*world_fair,
        &FirstEnabled,
        &*world_crooked,
        &FirstEnabled,
        &TraceInsight,
        4,
    );
    println!("\ndistinguishing advantage fair vs crooked: eps = {eps}");
    assert!((eps - 0.375).abs() < 1e-12); // |4/8 − 1/8| = 3/8

    // 5. Same system twice: perfectly balanced.
    let zero = balanced_epsilon(
        &*world_fair,
        &FirstEnabled,
        &*world_fair,
        &FirstEnabled,
        &TraceInsight,
        4,
    );
    println!("fair vs itself:                           eps = {zero}");
    assert_eq!(zero, 0.0);

    println!("\nok.");
}
