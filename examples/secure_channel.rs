//! Secure channel case study: the one-time-pad channel securely emulates
//! the ideal functionality `F_SC` — with distance *exactly zero* — while
//! a plaintext channel is caught with the predicted advantage.
//!
//! This walks the full Def. 4.26 pipeline: structured automata,
//! adversary validity (Def. 4.24), the hide(·‖Adv, AAct) worlds, and the
//! measured max–min implementation distance over an environment battery
//! and an oblivious scheduler schema.
//!
//! Run with: `cargo run -p dpioa-examples --bin secure_channel`

use dpioa_core::Automaton;
use dpioa_insight::TraceInsight;
use dpioa_protocols::channel::{
    channel_instance, channel_simulator, eavesdropper, fixed_sender, leaky_instance, MSG_SPACE,
};
use dpioa_sched::SchedulerSchema;
use dpioa_secure::{is_adversary_in_context, secure_emulation_epsilon};
use std::sync::Arc;

fn main() {
    println!("== secure channel: real OTP vs ideal F_SC ==\n");
    let tag = "demo";
    let inst = channel_instance(tag);
    let adv = eavesdropper(tag);
    let sim = channel_simulator(tag);
    let envs: Vec<Arc<dyn Automaton>> = (0..MSG_SPACE).map(|m| fixed_sender(tag, m)).collect();
    let schema = SchedulerSchema::priority(48, 7);

    // Validity of the adversary and the simulator (Def. 4.24), checked
    // in every environment context.
    for env in &envs {
        assert!(is_adversary_in_context(env, &inst.real, &adv));
        assert!(is_adversary_in_context(env, &inst.ideal, &sim));
    }
    println!("adversary and simulator pass the Def. 4.24 checks");

    // The emulation distance (Def. 4.26): max over environments and
    // schedulers of the min-matched total-variation distance.
    let r = secure_emulation_epsilon(&inst, &adv, &sim, &envs, &schema, &TraceInsight, 12);
    println!(
        "OTP channel:    measured eps = {} over {} (env, scheduler) pairs",
        r.epsilon, r.pairs_checked
    );
    assert_eq!(r.epsilon, 0.0);
    println!("  -> the simulator's fake uniform ciphertext is a PERFECT match\n");

    // The leaky channel transmits in the clear; the same simulator now
    // fails: the adversary's parity report correlates with the message.
    let broken = leaky_instance("demo-leaky");
    let adv2 = eavesdropper("demo-leaky");
    let sim2 = channel_simulator("demo-leaky");
    let envs2: Vec<Arc<dyn Automaton>> = vec![fixed_sender("demo-leaky", 1)];
    let r2 = secure_emulation_epsilon(&broken, &adv2, &sim2, &envs2, &schema, &TraceInsight, 12);
    println!("leaky channel:  measured eps = {}", r2.epsilon);
    assert!((r2.epsilon - 0.5).abs() < 1e-9);
    println!("  -> plaintext leakage detected with the predicted advantage 1/2");

    println!("\nok.");
}
