//! Shared helpers for the cross-crate integration tests.
//!
//! The generators here build small randomized-but-deterministic PSIOA
//! (seeded), used by the property tests to stress closure lemmas,
//! audits and the implementation relation across module boundaries.

use dpioa_core::{Action, Automaton, ExplicitAutomaton, Signature, Value};
use dpioa_prob::Disc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

// Re-export so test files can use one import.
pub use dpioa_core as core;

/// Build a random acyclic PSIOA with `n_states` states over the given
/// action alphabet prefix. Deterministic for a fixed seed.
///
/// Layout: states `0..n`, each state `i < n-1` gets 1–2 locally
/// controlled actions whose (possibly probabilistic, always dyadic)
/// transitions move strictly forward; the last state is a sink.
pub fn random_automaton(name: &str, prefix: &str, n_states: i64, seed: u64) -> Arc<dyn Automaton> {
    assert!(n_states >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ExplicitAutomaton::builder(name, Value::int(0));
    for i in 0..n_states {
        if i == n_states - 1 {
            b = b.state(i, Signature::new([], [], []));
            continue;
        }
        let n_actions = rng.gen_range(1..=2usize);
        let mut outs = Vec::new();
        let mut ints = Vec::new();
        let mut trans: Vec<(Action, Disc<Value>)> = Vec::new();
        for k in 0..n_actions {
            let a = Action::named(format!("{prefix}-s{i}a{k}"));
            if rng.gen_bool(0.5) {
                outs.push(a);
            } else {
                ints.push(a);
            }
            // Forward targets, dyadic split.
            let t1 = rng.gen_range(i + 1..=n_states - 1);
            let t2 = rng.gen_range(i + 1..=n_states - 1);
            let eta = if t1 == t2 {
                Disc::dirac(Value::int(t1))
            } else {
                Disc::bernoulli_dyadic(Value::int(t1), Value::int(t2), 1, 1)
            };
            trans.push((a, eta));
        }
        b = b.state(i, Signature::new([], outs, ints));
        for (a, eta) in trans {
            b = b.transition(i, a, eta);
        }
    }
    b.build().shared()
}

/// A trivial single-state automaton with no actions.
pub fn idle(name: &str) -> Arc<dyn Automaton> {
    ExplicitAutomaton::builder(name, Value::Unit)
        .state(Value::Unit, Signature::new([], [], []))
        .build()
        .shared()
}

/// A two-phase environment: output `trigger`, then absorb a list of
/// observable inputs forever.
pub fn simple_env(name: &str, trigger: Action, listens: Vec<Action>) -> Arc<dyn Automaton> {
    let mut b = ExplicitAutomaton::builder(name, Value::int(0))
        .state(0, Signature::new(listens.clone(), [trigger], []))
        .state(1, Signature::new(listens.clone(), [], []))
        .step(0, trigger, 1);
    for a in listens {
        b = b.step(0, a, 0).step(1, a, 1);
    }
    b.build().shared()
}
