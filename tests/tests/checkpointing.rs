//! Checkpointed degradation: budget trips, deadlines and cooperative
//! cancellation must leave a *conserving* checkpoint behind (resolved
//! mass + frontier mass = 1, exactly — asserted over exact rationals
//! with no tolerance), and resuming that checkpoint under an enlarged
//! budget must reproduce the unbudgeted run bit-for-bit. The pooled
//! deadline/cancel tests honour `DPIOA_POOL_LANES` so CI can pin the
//! lane count.

use dpioa_core::{Action, Automaton, CancelToken, Execution};
use dpioa_integration::random_automaton;
use dpioa_prob::{Ratio, SubDisc, Weight};
use dpioa_sched::{
    projection_checkpoint, try_batch_execution_measures_in, try_execution_measure,
    try_execution_measure_ckpt, try_execution_measure_ckpt_in, try_execution_measure_flat_resume,
    try_execution_measure_pooled, try_execution_measure_resume, try_lumped_observation_dist_cached,
    try_lumped_observation_dist_ckpt, try_lumped_observation_dist_resume, BatchMember,
    BatchProjection, Budget, EngineCache, EngineError, ExpansionOutcome, FirstEnabled, HaltingMix,
    LumpedOutcome, Observation, ParallelPolicy, PriorityScheduler, RandomScheduler, Scheduler,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lane counts to exercise; `DPIOA_POOL_LANES` pins one for CI matrix
/// legs (same convention as the lumping suite).
fn pool_lanes() -> Vec<usize> {
    std::env::var("DPIOA_POOL_LANES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|l: usize| vec![l])
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// The exact-rational lift used by the no-tolerance conservation
/// proptests: refuses any weight that is not exactly dyadic.
fn ratio_lift(w: f64) -> Result<Ratio, EngineError> {
    Ratio::from_f64_exact(w).ok_or(EngineError::NonDyadicWeight { weight: w })
}

/// A memoryless scheduler family (mirrors the lumping suite) so the
/// lumped checkpoint tests draw from the same policies.
fn memoryless_scheduler(kind: u8, auto: &Arc<dyn Automaton>) -> Arc<dyn Scheduler> {
    match kind % 4 {
        0 => Arc::new(FirstEnabled),
        1 => Arc::new(RandomScheduler),
        2 => Arc::new(HaltingMix::new(FirstEnabled, 3, 2)),
        _ => {
            let mut order: Vec<_> = auto
                .signature(&auto.start_state())
                .all()
                .into_iter()
                .collect();
            order.reverse();
            Arc::new(PriorityScheduler::new(order))
        }
    }
}

/// Wraps a scheduler and cancels a [`CancelToken`] after `after`
/// scheduling calls — a deterministic way to land a cancellation
/// mid-expansion, inside a grain, from "another thread"'s perspective.
struct CancelAfter<S> {
    inner: S,
    after: usize,
    calls: AtomicUsize,
    token: CancelToken,
}

impl<S: Scheduler> Scheduler for CancelAfter<S> {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        if self.calls.fetch_add(1, Ordering::SeqCst) + 1 >= self.after {
            self.token.cancel();
        }
        self.inner.schedule(auto, exec)
    }

    fn describe(&self) -> String {
        format!("cancel-after[{}]({})", self.after, self.inner.describe())
    }
}

/// Satellite: a 0-duration deadline must trip the *pooled* expansion
/// path (cutover 0 forces pooled dispatch) with `deadline_hit: true`,
/// at every lane count.
#[test]
fn pooled_expansion_under_zero_deadline_reports_deadline_hit() {
    let auto = random_automaton("ckpt-dl", "ckptdl0", 4, 11);
    for threads in pool_lanes() {
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let budget = Budget::unlimited().with_deadline_in(Duration::ZERO);
        let cache = EngineCache::new();
        match try_execution_measure_pooled(&*auto, &FirstEnabled, 6, &budget, policy, &cache) {
            Err(EngineError::BudgetExhausted {
                deadline_hit,
                cancelled,
                ..
            }) => {
                assert!(
                    deadline_hit,
                    "deadline must be reported as the tripped limit"
                );
                assert!(!cancelled);
            }
            other => panic!("expected deadline exhaustion at {threads} lanes, got {other:?}"),
        }
    }
}

/// The checkpointed variant of the same trip keeps all the mass on the
/// frontier: nothing was resolved yet, so conservation pins the single
/// depth-0 node at exactly probability one.
#[test]
fn zero_deadline_checkpoint_holds_all_mass_on_the_frontier() {
    let auto = random_automaton("ckpt-dl", "ckptdl1", 4, 12);
    for threads in pool_lanes() {
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let budget = Budget::unlimited().with_deadline_in(Duration::ZERO);
        let cache = EngineCache::new();
        let (outcome, _) =
            try_execution_measure_ckpt(&*auto, &FirstEnabled, 6, &budget, policy, &cache)
                .expect("deadline trips are salvageable, not hard errors");
        let ckpt = outcome
            .into_checkpoint()
            .expect("a zero deadline cannot complete the expansion");
        assert!(matches!(
            ckpt.reason,
            EngineError::BudgetExhausted {
                deadline_hit: true,
                ..
            }
        ));
        assert_eq!(ckpt.resolved_mass(), 0.0);
        assert_eq!(ckpt.frontier_mass(), 1.0);
        assert_eq!(ckpt.frontier.len(), 1);
    }
}

/// A token cancelled before the query starts checkpoints before any
/// work: `cancelled: true`, everything still on the frontier.
#[test]
fn pre_cancelled_token_checkpoints_before_any_work() {
    let auto = random_automaton("ckpt-pc", "ckptpc", 4, 13);
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel(token);
    let cache = EngineCache::new();
    let (outcome, _) = try_execution_measure_ckpt(
        &*auto,
        &FirstEnabled,
        6,
        &budget,
        ParallelPolicy::new(2, 0).with_split_unit(2),
        &cache,
    )
    .expect("cancellation is salvageable");
    let ckpt = outcome
        .into_checkpoint()
        .expect("a pre-cancelled token cannot complete the expansion");
    assert!(matches!(
        ckpt.reason,
        EngineError::BudgetExhausted {
            cancelled: true,
            deadline_hit: false,
            ..
        }
    ));
    assert_eq!(ckpt.resolved_mass(), 0.0);
    assert_eq!(ckpt.frontier_mass(), 1.0);
}

/// Tentpole acceptance: a cancel landed *mid-flight* (from inside a
/// scheduling call, i.e. within one grain) still yields a usable,
/// exactly-conserving checkpoint — and resuming it with the
/// cancellation lifted completes to the same measure an uncancelled
/// run produces, over exact rationals.
#[test]
fn mid_flight_cancel_yields_a_usable_conserving_checkpoint() {
    let auto = random_automaton("ckpt-mf", "ckptmf", 5, 17);
    let horizon = 7;
    for threads in pool_lanes() {
        let token = CancelToken::new();
        let sched = CancelAfter {
            inner: FirstEnabled,
            after: 3,
            calls: AtomicUsize::new(0),
            token: token.clone(),
        };
        let budget = Budget::unlimited().with_cancel(token);
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let cache = EngineCache::new();
        let (outcome, _) = try_execution_measure_ckpt_in(
            &*auto, &sched, horizon, &budget, policy, &cache, ratio_lift, None,
        )
        .expect("cancellation is salvageable");
        let ckpt = outcome
            .into_checkpoint()
            .expect("the cancel lands well before the expansion can finish");
        assert!(matches!(
            ckpt.reason,
            EngineError::BudgetExhausted {
                cancelled: true,
                ..
            }
        ));
        assert!(!ckpt.frontier.is_empty());
        // Conservation with no tolerance: the rolled-back depth is a
        // genuine partition of the probability-one cone.
        assert_eq!(ckpt.total_mass(), Ratio::from_int(1));

        // Usable: resume without the cancel and land exactly on the
        // uncancelled measure.
        let (resumed, _) = try_execution_measure_resume(
            ckpt,
            &*auto,
            &FirstEnabled,
            &Budget::unlimited(),
            policy,
            &cache,
            ratio_lift,
        )
        .expect("resume under an unlimited budget succeeds");
        let resumed = match resumed {
            ExpansionOutcome::Complete(m) => m,
            ExpansionOutcome::Partial(c) => panic!("unlimited resume tripped: {:?}", c.reason),
        };
        let (reference, _) = try_execution_measure_ckpt_in(
            &*auto,
            &FirstEnabled,
            horizon,
            &Budget::unlimited(),
            policy,
            &cache,
            ratio_lift,
            None,
        )
        .expect("unbudgeted reference run");
        let reference = match reference {
            ExpansionOutcome::Complete(m) => m,
            ExpansionOutcome::Partial(c) => panic!("unbudgeted run tripped: {:?}", c.reason),
        };
        assert_eq!(resumed.len(), reference.len());
        for ((e1, w1), (e2, w2)) in resumed.iter().zip(reference.iter()) {
            assert_eq!(e1, e2);
            assert_eq!(w1, w2);
        }
    }
}

/// Satellite: the lumped cached core observes the deadline at grain
/// granularity too — a 0-duration deadline yields a class-space
/// checkpoint with the whole mass in the start class.
#[test]
fn lumped_zero_deadline_checkpoints_in_class_space() {
    let auto = random_automaton("ckpt-ld", "ckptld", 4, 19);
    let budget = Budget::unlimited().with_deadline_in(Duration::ZERO);
    let cache = EngineCache::new();
    let outcome = try_lumped_observation_dist_ckpt(
        &*auto,
        &FirstEnabled,
        5,
        &Observation::final_state(),
        &budget,
        &cache,
    )
    .expect("deadline trips are salvageable");
    let ckpt = match outcome {
        LumpedOutcome::Partial(c) => c,
        LumpedOutcome::Complete(_) => panic!("a zero deadline cannot complete the pass"),
    };
    assert!(matches!(
        ckpt.reason,
        EngineError::BudgetExhausted {
            deadline_hit: true,
            ..
        }
    ));
    assert_eq!(ckpt.step, 0);
    assert_eq!(ckpt.resolved_mass(), 0.0);
    assert_eq!(ckpt.frontier_mass(), 1.0);
    assert_eq!(ckpt.frontier.len(), 1);
}

/// And the lumped core observes a pre-cancelled token the same way.
#[test]
fn lumped_pre_cancelled_token_checkpoints_in_class_space() {
    let auto = random_automaton("ckpt-lc", "ckptlc", 4, 23);
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel(token);
    let cache = EngineCache::new();
    let outcome = try_lumped_observation_dist_ckpt(
        &*auto,
        &FirstEnabled,
        5,
        &Observation::trace(),
        &budget,
        &cache,
    )
    .expect("cancellation is salvageable");
    match outcome {
        LumpedOutcome::Partial(ckpt) => {
            assert!(matches!(
                ckpt.reason,
                EngineError::BudgetExhausted {
                    cancelled: true,
                    ..
                }
            ));
            assert_eq!(ckpt.frontier_mass(), 1.0);
        }
        LumpedOutcome::Complete(_) => panic!("a pre-cancelled token cannot complete the pass"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation with no tolerance, over exact rationals: whatever
    /// expansion cap trips the general engine — pooled at any lane
    /// count — the checkpoint partitions probability one exactly.
    #[test]
    fn cone_checkpoint_conserves_mass_exactly(
        seed in 0u64..400,
        n in 3i64..7,
        horizon in 2usize..7,
        cap in 0usize..24,
        threads in 1usize..5,
    ) {
        let auto = random_automaton("ckpt-cons", &format!("ckc{seed}"), n, seed);
        let budget = Budget::unlimited().with_max_expansions(cap);
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let cache = EngineCache::new();
        let (outcome, _) = try_execution_measure_ckpt_in(
            &*auto, &FirstEnabled, horizon, &budget, policy, &cache, ratio_lift, None,
        ).expect("budget trips are salvageable on dyadic models");
        match outcome {
            ExpansionOutcome::Complete(m) => {
                let total = m.iter().fold(Ratio::from_int(0), |t, (_, w)| t.add(w));
                prop_assert_eq!(total, Ratio::from_int(1));
            }
            ExpansionOutcome::Partial(ckpt) => {
                prop_assert!(!ckpt.frontier.is_empty());
                prop_assert!(matches!(
                    ckpt.reason,
                    EngineError::BudgetExhausted { deadline_hit: false, cancelled: false, .. }
                ));
                prop_assert_eq!(ckpt.total_mass(), Ratio::from_int(1));
            }
        }
    }

    /// Resuming a tripped exact expansion under an enlarged (unlimited)
    /// budget is bit-identical to the unbudgeted run *of the same
    /// engine*: same entry count, same order, same executions,
    /// bit-equal `f64` weights — and, as a multiset, identical to the
    /// sequential engine's measure too.
    #[test]
    fn resume_is_bit_identical_to_unbudgeted_run(
        seed in 0u64..400,
        n in 3i64..7,
        horizon in 2usize..7,
        cap in 0usize..24,
        threads in 1usize..5,
    ) {
        let auto = random_automaton("ckpt-res", &format!("ckr{seed}"), n, seed);
        let budget = Budget::unlimited().with_max_expansions(cap);
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let cache = EngineCache::new();
        let (outcome, _) = try_execution_measure_ckpt(
            &*auto, &FirstEnabled, horizon, &budget, policy, &cache,
        ).expect("budget trips are salvageable");
        let resumed = match outcome {
            ExpansionOutcome::Complete(m) => m,
            ExpansionOutcome::Partial(ckpt) => {
                let (resumed, _) = try_execution_measure_resume(
                    ckpt, &*auto, &FirstEnabled, &Budget::unlimited(), policy, &cache, Ok,
                ).expect("unlimited resume succeeds");
                match resumed {
                    ExpansionOutcome::Complete(m) => m,
                    ExpansionOutcome::Partial(c) =>
                        return Err(proptest::test_runner::TestCaseError::fail(format!(
                            "unlimited resume tripped: {:?}", c.reason
                        ))),
                }
            }
        };
        // Order + bits against the same (pooled) engine, unbudgeted.
        let (reference, _) = try_execution_measure_ckpt(
            &*auto, &FirstEnabled, horizon, &Budget::unlimited(), policy, &cache,
        ).expect("unbudgeted pooled reference");
        let reference = match reference {
            ExpansionOutcome::Complete(m) => m,
            ExpansionOutcome::Partial(c) =>
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "unbudgeted run tripped: {:?}", c.reason
                ))),
        };
        prop_assert_eq!(resumed.len(), reference.len());
        prop_assert_eq!(resumed.total().to_bits(), reference.total().to_bits());
        for ((e1, w1), (e2, w2)) in resumed.iter().zip(reference.iter()) {
            prop_assert_eq!(e1, e2);
            prop_assert_eq!(w1.to_bits(), w2.to_bits());
        }
        // Multiset equality against the sequential engine (whose
        // within-depth entry order may legitimately differ).
        let seq = try_execution_measure(
            &*auto, &FirstEnabled, horizon, &Budget::unlimited(),
        ).expect("unbudgeted sequential reference");
        prop_assert_eq!(resumed.len(), seq.len());
        prop_assert_eq!(resumed.total().to_bits(), seq.total().to_bits());
        for (e, w) in seq.iter() {
            let found: Vec<_> = resumed.iter().filter(|(e2, _)| *e2 == e).collect();
            prop_assert_eq!(found.len(), 1);
            prop_assert_eq!(found[0].1.to_bits(), w.to_bits());
        }
    }

    /// The lumped tier's checkpoints conserve exactly (dyadic sums in
    /// `f64` are order-independent at these sizes) and resume to the
    /// same distribution the unbudgeted cached pass computes.
    #[test]
    fn lumped_checkpoint_conserves_and_resumes_identically(
        seed in 0u64..400,
        n in 3i64..7,
        kind in 0u8..4,
        horizon in 1usize..6,
        cap in 0usize..16,
        trace_obs in any::<bool>(),
    ) {
        let auto = random_automaton("ckpt-lr", &format!("ckl{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let obs = if trace_obs { Observation::trace() } else { Observation::final_state() };
        let cache = EngineCache::new();
        let reference = try_lumped_observation_dist_cached(
            &*auto, &sched, horizon, &obs, &Budget::unlimited(), &cache,
        ).expect("family is memoryless and the observation factors");

        let budget = Budget::unlimited().with_max_expansions(cap);
        let outcome = try_lumped_observation_dist_ckpt(
            &*auto, &sched, horizon, &obs, &budget, &cache,
        ).expect("budget trips are salvageable");
        let dist = match outcome {
            LumpedOutcome::Complete(d) => d,
            LumpedOutcome::Partial(ckpt) => {
                prop_assert!(!ckpt.frontier.is_empty());
                prop_assert_eq!(ckpt.total_mass(), 1.0);
                match try_lumped_observation_dist_resume(
                    ckpt, &*auto, &sched, &obs, &Budget::unlimited(), &cache,
                ).expect("unlimited resume succeeds") {
                    LumpedOutcome::Complete(d) => d,
                    LumpedOutcome::Partial(c) =>
                        return Err(proptest::test_runner::TestCaseError::fail(format!(
                            "unlimited lumped resume tripped: {:?}", c.reason
                        ))),
                }
            }
        };
        prop_assert_eq!(dist, reference);
    }
}

/// A fair binary branching automaton of `depth` levels: state `q < 2^depth - 1`
/// splits uniformly into `2q+1` / `2q+2`; the `2^depth` leaves halt.
/// Depth `d` of the cone has exactly `2^d` nodes, so expansion caps
/// map deterministically to trip depths.
fn binary_tree(depth: u32) -> dpioa_core::ExplicitAutomaton {
    use dpioa_core::{ExplicitAutomaton, Signature, Value};
    use dpioa_prob::Disc;
    let split = Action::named("bt-split");
    let internal = 2i64.pow(depth) - 1;
    let total = 2i64.pow(depth + 1) - 1;
    let mut b = ExplicitAutomaton::builder("bt", Value::int(0));
    for q in 0..internal {
        b = b.state(q, Signature::new([], [], [split])).transition(
            q,
            split,
            Disc::bernoulli_dyadic(Value::int(2 * q + 1), Value::int(2 * q + 2), 1, 1),
        );
    }
    for q in internal..total {
        b = b.state(q, Signature::new([], [], []));
    }
    b.build()
}

/// Resume composes: a resume under a still-too-small budget trips
/// again, strictly further along, and the second checkpoint conserves
/// too. The binary tree makes the trip depths deterministic: cap 1
/// trips at depth 1 (2 nodes), cap 2 trips at depth 2 (4 nodes). The
/// horizon exceeds `TAIL_DEPTHS` so the early depths go through the
/// per-node counting path rather than whole-subtree tail grains.
#[test]
fn resume_under_a_small_budget_checkpoints_again() {
    let auto = binary_tree(7);
    let horizon = 7;
    let policy = ParallelPolicy::new(2, 0).with_split_unit(2);
    let cache = EngineCache::new();
    let (outcome, _) = try_execution_measure_ckpt_in(
        &auto,
        &FirstEnabled,
        horizon,
        &Budget::unlimited().with_max_expansions(1),
        policy,
        &cache,
        ratio_lift,
        None,
    )
    .expect("budget trips are salvageable");
    let first = outcome
        .into_checkpoint()
        .expect("one expansion cannot finish a depth-7 tree");
    assert_eq!(first.total_mass(), Ratio::from_int(1));
    assert_eq!(first.frontier.len(), 2, "cap 1 rolls back to depth 1");

    let (outcome, _) = try_execution_measure_resume(
        first,
        &auto,
        &FirstEnabled,
        &Budget::unlimited().with_max_expansions(2),
        policy,
        &cache,
        ratio_lift,
    )
    .expect("budget trips are salvageable");
    let second = outcome
        .into_checkpoint()
        .expect("two expansions cannot finish the remaining tree either");
    assert_eq!(second.total_mass(), Ratio::from_int(1));
    assert_eq!(second.frontier.len(), 4, "cap 2 rolls back to depth 2");

    let (outcome, _) = try_execution_measure_resume(
        second,
        &auto,
        &FirstEnabled,
        &Budget::unlimited(),
        policy,
        &cache,
        ratio_lift,
    )
    .expect("unlimited resume succeeds");
    let done = match outcome {
        ExpansionOutcome::Complete(m) => m,
        ExpansionOutcome::Partial(c) => panic!("unlimited resume tripped: {:?}", c.reason),
    };
    assert_eq!(done.len(), 128, "all 2^7 leaves resolved");
    let total = done.iter().fold(Ratio::from_int(0), |t, (_, w)| t.add(w));
    assert_eq!(total, Ratio::from_int(1));
    for (_, w) in done.iter() {
        assert_eq!(w.clone(), Ratio::new(1, 128));
    }
}

/// Satellite (batch interop): a budget-tripped *batch* leaves one
/// shared [`dpioa_sched::ConeCheckpoint`] behind. Projecting it onto
/// each member's horizon with [`projection_checkpoint`] and resuming
/// the cut — on the flat engine and on the Arc-spine engine alike —
/// lands bit-identically (over exact rationals) on the measure an
/// independent unbudgeted expansion of that member computes. The
/// shallow member (horizon 5) keeps the tail window gated off, so a
/// cap of two expansions deterministically trips in the counted
/// per-depth path at every lane count.
#[test]
fn tripped_batch_checkpoint_resumes_per_projection_bit_identically() {
    let auto = binary_tree(7);
    let members = [BatchMember::new(7), BatchMember::new(5)];
    for threads in pool_lanes() {
        let cache = EngineCache::new();
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let out = try_batch_execution_measures_in(
            &auto,
            &FirstEnabled,
            &members,
            &Budget::unlimited().with_max_expansions(2),
            policy,
            &cache,
            ratio_lift,
        )
        .expect("budget trips are salvageable");
        assert!(
            out.projections
                .iter()
                .all(|p| matches!(p, BatchProjection::Pending)),
            "two expansions cannot complete either member at {threads} lanes"
        );
        let ckpt = out.checkpoint.expect("tripped batch carries a checkpoint");
        assert!(matches!(
            ckpt.reason,
            EngineError::BudgetExhausted {
                deadline_hit: false,
                cancelled: false,
                ..
            }
        ));
        // Conservation with no tolerance, and a frontier shallow
        // enough that *both* members can be cut from it.
        assert_eq!(ckpt.total_mass(), Ratio::from_int(1));
        let frontier_depth = ckpt.frontier[0].0.len();
        assert!(frontier_depth <= 5, "frontier at depth {frontier_depth}");

        for member in &members {
            let proj = projection_checkpoint(&ckpt, member.horizon)
                .expect("frontier is shallower than every member horizon");
            assert_eq!(proj.horizon, member.horizon);

            let (reference, _) = try_execution_measure_ckpt_in(
                &auto,
                &FirstEnabled,
                member.horizon,
                &Budget::unlimited(),
                policy,
                &cache,
                ratio_lift,
                None,
            )
            .expect("unbudgeted independent run");
            let reference = match reference {
                ExpansionOutcome::Complete(m) => m,
                ExpansionOutcome::Partial(c) => panic!("unbudgeted run tripped: {:?}", c.reason),
            };

            // The flat engine and the Arc-spine engine both finish the
            // projected cut to the same exact measure, entry for entry.
            let (flat, _) = try_execution_measure_flat_resume(
                proj.clone(),
                &auto,
                &FirstEnabled,
                &Budget::unlimited(),
                policy,
                &cache,
                ratio_lift,
            )
            .expect("flat resume under an unlimited budget succeeds");
            let (spine, _) = try_execution_measure_resume(
                proj,
                &auto,
                &FirstEnabled,
                &Budget::unlimited(),
                policy,
                &cache,
                ratio_lift,
            )
            .expect("spine resume under an unlimited budget succeeds");
            for (label, resumed) in [("flat", flat), ("spine", spine)] {
                let m = match resumed {
                    ExpansionOutcome::Complete(m) => m,
                    ExpansionOutcome::Partial(c) => {
                        panic!("unlimited {label} resume tripped: {:?}", c.reason)
                    }
                };
                assert_eq!(
                    m.len(),
                    reference.len(),
                    "{label} h={} lanes={threads}",
                    member.horizon
                );
                for (i, ((e1, w1), (e2, w2))) in m.iter().zip(reference.iter()).enumerate() {
                    assert_eq!(e1, e2, "{label} entry #{i} h={}", member.horizon);
                    assert_eq!(w1, w2, "{label} weight #{i} h={}", member.horizon);
                }
            }
        }
    }
}
