//! Property tests for the closure lemmas, across seeded random systems:
//! Lemma A.1 (renaming), closure under composition and hiding, and the
//! invariance of observable behavior under renaming round-trips.

use dpioa_core::audit::audit_psioa;
use dpioa_core::explore::{reachable, ExploreLimits};
use dpioa_core::{compose2, hide_static, rename_with, Action, Automaton, AutomatonExt};
use dpioa_insight::{f_dist, TraceInsight};
use dpioa_integration::random_automaton;
use dpioa_sched::FirstEnabled;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma A.1: r(A) is a PSIOA for every injective renaming.
    #[test]
    fn renaming_closure_lemma_a1(seed in 0u64..500, n in 3i64..7) {
        let a = random_automaton("cl-ren", "clr", n, seed);
        let renamed = rename_with(a, |_, x| x.suffixed("@cl"));
        prop_assert!(audit_psioa(&*renamed, ExploreLimits::default()).is_valid());
    }

    /// Composition of valid PSIOA with disjoint alphabets is valid.
    #[test]
    fn composition_closure(seed in 0u64..500, n in 3i64..6) {
        let a = random_automaton("cl-ca", &format!("cca{seed}"), n, seed);
        let b = random_automaton("cl-cb", &format!("ccb{seed}"), n, seed + 999);
        let c = compose2(a, b);
        prop_assert!(audit_psioa(&*c, ExploreLimits::default()).is_valid());
    }

    /// Hiding any subset of outputs preserves validity.
    #[test]
    fn hiding_closure(seed in 0u64..500, n in 3i64..7) {
        let a = random_automaton("cl-h", &format!("clh{seed}"), n, seed);
        // Collect every reachable output and hide all of them.
        let r = reachable(&*a, ExploreLimits::default());
        let mut outs: Vec<Action> = Vec::new();
        for q in &r.states {
            outs.extend(a.signature(q).output);
        }
        let h = hide_static(a, outs);
        prop_assert!(audit_psioa(&*h, ExploreLimits::default()).is_valid());
    }

    /// Renaming is invisible modulo the renaming itself: the f-dist of
    /// the renamed automaton is the renamed f-dist. The scheduler must
    /// itself be renaming-equivariant, so order by action NAME (a suffix
    /// renaming preserves lexicographic name order), not interning id.
    #[test]
    fn renaming_commutes_with_observation(seed in 0u64..200, n in 3i64..6) {
        let by_name = || dpioa_sched::DeterministicScheduler::new(
            "lexicographic",
            |_, enabled: &[Action]| enabled.iter().min_by_key(|a| a.name()).copied(),
        );
        let a = random_automaton("cl-o", &format!("clo{seed}"), n, seed);
        let renamed = rename_with(a.clone(), |_, x| x.suffixed("@obs"));
        let d1 = f_dist(&*a, &by_name(), &TraceInsight, 8);
        let d2 = f_dist(&*renamed, &by_name(), &TraceInsight, 8);
        // Rename observations of d1 and compare.
        let d1r = d1.map(|v| {
            let items = v.items().unwrap_or(&[]);
            dpioa_core::Value::list(
                items
                    .iter()
                    .map(|s| {
                        dpioa_core::Value::str(format!(
                            "{}@obs",
                            s.as_str().expect("trace entries are strings")
                        ))
                    })
                    .collect::<Vec<_>>(),
            )
        });
        prop_assert_eq!(d1r, d2);
    }

    /// Hiding can only shrink the external perception (data processing).
    #[test]
    fn hiding_never_reveals(seed in 0u64..200, n in 3i64..6) {
        let a = random_automaton("cl-dp", &format!("cldp{seed}"), n, seed);
        let r = reachable(&*a, ExploreLimits::default());
        let mut outs: Vec<Action> = Vec::new();
        for q in &r.states {
            outs.extend(a.signature(q).output);
        }
        let h = hide_static(a.clone(), outs);
        let d_hidden = f_dist(&*h, &FirstEnabled, &TraceInsight, 8);
        // All outputs hidden and no inputs driven: the trace is empty.
        for (obs, _) in d_hidden.iter() {
            prop_assert_eq!(obs.items().map(|i| i.len()), Some(0));
        }
    }

    /// locally_controlled ⊆ enabled, always.
    #[test]
    fn locally_controlled_is_a_subset(seed in 0u64..300, n in 3i64..7) {
        let a = random_automaton("cl-lc", &format!("cllc{seed}"), n, seed);
        let r = reachable(&*a, ExploreLimits::default());
        for q in &r.states {
            let enabled = a.enabled(q);
            for lc in a.locally_controlled(q) {
                prop_assert!(enabled.contains(&lc));
            }
        }
    }
}
