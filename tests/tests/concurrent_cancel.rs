//! Concurrent cancellation under a shared engine cache — the failure
//! mode the query server lives with: many robust queries in flight at
//! once, all drawing through one [`EngineCache`], while some of them
//! are revoked mid-grain by their client's [`CancelToken`].
//!
//! Pinned properties:
//!
//! * a cancelled query surfaces `cancelled: true` and nothing else —
//!   no panic, no wrong answer, no hang;
//! * surviving queries are **bit-identical** to solo runs on a fresh
//!   cache — a neighbour's cancellation (or its partially-warmed cache
//!   entries) never perturbs anyone else's distribution;
//! * re-running a previously-cancelled query against the same shared
//!   cache completes and is bit-identical to its solo run — a
//!   cancelled expansion leaves no poisoned state behind;
//! * all of the above per lane count (`DPIOA_POOL_LANES` pins one for
//!   CI matrix legs; the default sweep is `{2, 8}`).

use dpioa_core::{Action, Automaton, CancelToken, Execution, Value};
use dpioa_integration::random_automaton;
use dpioa_prob::{Disc, SubDisc};
use dpioa_sched::{
    robust_observation_dist, Budget, DeterministicScheduler, EngineCache, EngineError,
    FirstEnabled, Observation, RandomScheduler, RobustConfig, Scheduler,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Lane counts to exercise; `DPIOA_POOL_LANES` pins one for CI matrix
/// legs (same convention as the checkpointing suite).
fn pool_lanes() -> Vec<usize> {
    std::env::var("DPIOA_POOL_LANES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|l: usize| vec![l])
        .unwrap_or_else(|| vec![2, 8])
}

/// Wraps a scheduler and cancels a [`CancelToken`] after `after`
/// scheduling calls — lands the cancellation deterministically inside
/// an expansion grain. Deliberately does not forward
/// `schedule_memoryless`: the wrapped query is history-opaque, so it
/// takes the general exact tier, whose per-execution `schedule` calls
/// give the counter something to count.
struct CancelAfter<S> {
    inner: S,
    after: usize,
    calls: AtomicUsize,
    token: CancelToken,
}

impl<S: Scheduler> Scheduler for CancelAfter<S> {
    fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
        if self.calls.fetch_add(1, Ordering::SeqCst) + 1 >= self.after {
            self.token.cancel();
        }
        self.inner.schedule(auto, exec)
    }

    fn describe(&self) -> String {
        format!("cancel-after[{}]({})", self.after, self.inner.describe())
    }
}

/// The scheduler mix one simulated client `i` uses: memoryless and
/// memoryful policies interleaved, so concurrent queries exercise both
/// the lumped and the general tier against the same shared cache (and
/// the choice table's per-scheduler scoping along the way).
fn scheduler_for(i: usize) -> Arc<dyn Scheduler> {
    match i % 3 {
        0 => Arc::new(FirstEnabled),
        1 => Arc::new(RandomScheduler),
        _ => Arc::new(DeterministicScheduler::new(
            "cc-memoryful-alternate",
            |exec: &Execution, enabled: &[Action]| {
                if exec.len() % 2 == 0 {
                    enabled.first().copied()
                } else {
                    enabled.last().copied()
                }
            },
        )),
    }
}

fn config(
    lanes: usize,
    cache: Option<Arc<EngineCache>>,
    token: Option<CancelToken>,
) -> RobustConfig {
    let mut budget = Budget::unlimited().with_max_entries(1 << 14);
    if let Some(t) = token {
        budget = budget.with_cancel(t);
    }
    RobustConfig {
        budget,
        exact_threads: lanes,
        cache,
        mc_samples: 2_000,
        mc_threads: 2,
        ..RobustConfig::default()
    }
}

/// Two distributions agree bit-for-bit: same support in the same
/// order, every weight the same `f64` down to its bits.
fn assert_bit_identical(got: &Disc<Value>, want: &Disc<Value>, what: &str) {
    let got: Vec<(Value, u64)> = got.iter().map(|(v, w)| (v.clone(), w.to_bits())).collect();
    let want: Vec<(Value, u64)> = want.iter().map(|(v, w)| (v.clone(), w.to_bits())).collect();
    assert_eq!(got, want, "{what}: shared-cache answer drifted from solo");
}

const HORIZON: usize = 6;
const QUERIES: usize = 12;

#[test]
fn concurrent_cancellations_leave_survivors_bit_identical() {
    let auto = random_automaton("cc-auto", "ccq", 5, 17);
    let observe = Observation::final_state();

    for lanes in pool_lanes() {
        // Solo baselines: fresh cache, no concurrency, no cancellation.
        let solo: Vec<Disc<Value>> = (0..QUERIES)
            .map(|i| {
                let sched = scheduler_for(i);
                let (dist, _) = robust_observation_dist(
                    &*auto,
                    &sched,
                    HORIZON,
                    &observe,
                    &config(lanes, None, None),
                )
                .expect("solo baseline query must succeed");
                dist
            })
            .collect();

        // The concurrent round: every query shares one cache; every
        // third query carries a token its scheduler revokes mid-grain.
        let shared = Arc::new(EngineCache::bounded_with_admission(1 << 14, 0.5));
        let cancelled = |i: usize| i % 3 == 0;
        let results: Vec<Result<Disc<Value>, EngineError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..QUERIES)
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    let auto = Arc::clone(&auto);
                    let observe = &observe;
                    s.spawn(move || {
                        if cancelled(i) {
                            let token = CancelToken::new();
                            let sched = CancelAfter {
                                inner: scheduler_for(i),
                                after: 4,
                                calls: AtomicUsize::new(0),
                                token: token.clone(),
                            };
                            robust_observation_dist(
                                &*auto,
                                &sched,
                                HORIZON,
                                observe,
                                &config(lanes, Some(shared), Some(token)),
                            )
                            .map(|(d, _)| d)
                        } else {
                            let sched = scheduler_for(i);
                            robust_observation_dist(
                                &*auto,
                                &sched,
                                HORIZON,
                                observe,
                                &config(lanes, Some(shared), None),
                            )
                            .map(|(d, _)| d)
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("query thread panicked"))
                .collect()
        });

        for (i, result) in results.iter().enumerate() {
            if cancelled(i) {
                match result {
                    Err(EngineError::BudgetExhausted {
                        cancelled: true, ..
                    }) => {}
                    other => {
                        panic!("query {i} at {lanes} lanes: expected a cancellation, got {other:?}")
                    }
                }
            } else {
                let dist = result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("survivor {i} at {lanes} lanes failed: {e:?}"));
                assert_bit_identical(dist, &solo[i], &format!("survivor {i} at {lanes} lanes"));
            }
        }

        // A cancelled query's slot in the shared cache is not poisoned:
        // re-running it uncancelled completes bit-identically to solo.
        for i in (0..QUERIES).filter(|&i| cancelled(i)) {
            let sched = scheduler_for(i);
            let (dist, _) = robust_observation_dist(
                &*auto,
                &sched,
                HORIZON,
                &observe,
                &config(lanes, Some(Arc::clone(&shared)), None),
            )
            .unwrap_or_else(|e| panic!("retry of cancelled query {i} failed: {e:?}"));
            assert_bit_identical(
                &dist,
                &solo[i],
                &format!("retried query {i} at {lanes} lanes"),
            );
        }
    }
}
