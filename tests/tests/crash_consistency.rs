//! The crash-consistency harness: replay a fault at *every* injected
//! fault point of every persistence pass the store performs, and
//! assert the store's central promise at each one — a reboot sees the
//! complete old state or the complete new state, bit for bit, never a
//! blend, never a panic.
//!
//! Mechanics: a persistence pass is first run through
//! [`FaultVfs::counting`] to learn how many mutating IO operations it
//! performs, then re-run once per `(operation index, fault kind)` pair
//! through [`FaultVfs::scripted`], so every reachable fault point is
//! exercised. "Reboot" is a fresh read of the target through the
//! production [`RealVfs`].
//!
//! The hostile-file property tests at the bottom cover the read side:
//! truncation at every frame-section boundary and random bit flips
//! must surface a typed store error and apply *nothing* to a live
//! cache.

use dpioa_core::{Action, Automaton, ExplicitAutomaton, Signature, Value};
use dpioa_prob::{Disc, SubDisc};
use dpioa_sched::{
    try_execution_measure_ckpt, Budget, Checkpoint, EngineCache, FirstEnabled, ParallelPolicy,
};
use dpioa_store::{
    automaton_fingerprint, encode_cache, encode_checkpoint, encode_strata, load_checkpoint_with,
    load_strata_with, read_file_with, save_checkpoint_with, save_strata_with, EngineCacheStoreExt,
    Fault, FaultVfs, FileKind, RealVfs, RetryPolicy, StratumRow, Vfs,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// The fault alphabet swept over every mutating operation. Torn writes
/// are tried at several tear points including zero (nothing lands) and
/// deep into the frame. A fault scheduled at an op it cannot apply to
/// (e.g. `RenameDrop` against a write) is consumed silently — the
/// sweep covers those combinations on purpose: they model faults that
/// "would have" hit a neighbouring op and must be harmless.
fn fault_alphabet() -> Vec<Fault> {
    vec![
        Fault::TornWrite { keep: 0 },
        Fault::TornWrite { keep: 1 },
        Fault::TornWrite { keep: 13 },
        Fault::TornWrite { keep: 40 },
        Fault::Enospc,
        Fault::Eio,
        Fault::FsyncFail,
        Fault::RenameDrop,
    ]
}

/// A scratch directory unique to this process and test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpioa-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Count the mutating IO operations one clean run of `pass` performs.
fn count_ops(pass: impl FnOnce(&FaultVfs)) -> u64 {
    let vfs = FaultVfs::counting();
    pass(&vfs);
    vfs.mutating_ops()
}

// ---------------------------------------------------------------------
// Frame level: write_file_with on every file kind.
// ---------------------------------------------------------------------

/// The tentpole sweep at the frame layer: for every file kind, every
/// mutating-op index of an atomic write, and every fault kind, the
/// target file after the faulted write validates and holds exactly the
/// old or exactly the new payload.
#[test]
fn every_fault_point_leaves_all_old_or_all_new() {
    let old: Vec<u8> = (0..57u8).collect();
    let new: Vec<u8> = (0..91u8).rev().collect();
    let fp = 0xFEED_F00D_u64;

    for kind in [
        FileKind::CacheSnapshot,
        FileKind::Checkpoint,
        FileKind::Strata,
    ] {
        let dir = scratch(&format!("frame-{}", kind as u8));
        let path = dir.join("target.dpst");
        let ops = count_ops(|vfs| {
            dpioa_store::write_file_with(
                vfs,
                &dir.join("probe.dpst"),
                kind,
                fp,
                &new,
                RetryPolicy::none(),
            )
            .expect("counting pass is clean");
        });
        assert!(ops >= 3, "write+fsync+rename at minimum, got {ops}");

        let (mut saw_old, mut saw_new) = (false, false);
        for k in 0..ops {
            for fault in fault_alphabet() {
                // Reset to the old state, then attempt the new write
                // with the fault scripted at mutating op `k` and
                // retries disabled, so the raw fault behaviour shows.
                dpioa_store::write_file_with(&RealVfs, &path, kind, fp, &old, RetryPolicy::none())
                    .expect("reset old");
                let vfs = FaultVfs::scripted(vec![(k, fault)]);
                let _ =
                    dpioa_store::write_file_with(&vfs, &path, kind, fp, &new, RetryPolicy::none());

                // Reboot: the target must validate and be all-old or
                // all-new — a torn or lied-about write never reaches it.
                let payload = read_file_with(&RealVfs, &path, kind, fp).unwrap_or_else(|e| {
                    panic!("target corrupt after fault {fault:?} at op {k}: {e}")
                });
                assert!(
                    payload == old || payload == new,
                    "blended payload after fault {fault:?} at op {k}"
                );
                saw_old |= payload == old;
                saw_new |= payload == new;
            }
        }
        assert!(saw_old, "no fault point ever preserved the old file");
        assert!(saw_new, "no fault point ever committed the new file");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Under the default bounded retry, every fault point resolves to one
/// of exactly two visible outcomes: the write reports success and the
/// new payload is durably committed, or it reports a typed IO error
/// and the old payload is untouched. No third state exists — except
/// the documented lying-rename (`RenameDrop`), which reports success
/// while keeping the old file; the sweep pins that case separately.
#[test]
fn retry_outcomes_are_binary_success_commits_failure_preserves() {
    let old = b"old".to_vec();
    let new = b"brand new payload".to_vec();
    let fp = 0xA11C_E5ED_u64;
    let dir = scratch("retry");
    let path = dir.join("target.dpst");
    let kind = FileKind::Checkpoint;

    let ops = count_ops(|vfs| {
        dpioa_store::write_file_with(
            vfs,
            &dir.join("probe.dpst"),
            kind,
            fp,
            &new,
            RetryPolicy::none(),
        )
        .expect("counting pass is clean");
    });

    let mut total_retries = 0u32;
    for k in 0..ops {
        for fault in fault_alphabet() {
            dpioa_store::write_file_with(&RealVfs, &path, kind, fp, &old, RetryPolicy::none())
                .expect("reset old");
            let vfs = FaultVfs::scripted(vec![(k, fault)]);
            let result =
                dpioa_store::write_file_with(&vfs, &path, kind, fp, &new, RetryPolicy::default());
            let payload = read_file_with(&RealVfs, &path, kind, fp).expect("validates");
            match result {
                Ok(retries) => {
                    total_retries += retries;
                    if fault == Fault::RenameDrop && payload == old {
                        // The lying rename: success reported, old file
                        // kept. This is exactly why the server's persist
                        // loop is periodic — the next pass re-commits.
                        continue;
                    }
                    assert_eq!(
                        payload, new,
                        "reported success must mean the new payload (fault {fault:?} at op {k})"
                    );
                }
                Err(e) => {
                    // Only the permanent class survives the retry loop.
                    assert_eq!(e.code(), "store-io");
                    assert_eq!(
                        payload, old,
                        "reported failure must leave the old payload (fault {fault:?} at op {k})"
                    );
                }
            }
        }
    }
    // The transient faults in the sweep (torn writes, EIO, fsync
    // failures at their own ops) must actually have exercised the
    // retry loop, not been silently absorbed.
    assert!(
        total_retries >= 3,
        "retry loop never engaged: {total_retries}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Store level: the real snapshot / checkpoint / strata passes.
// ---------------------------------------------------------------------

fn small_cache(tag: &str, rows: usize) -> EngineCache {
    let cache = EngineCache::new();
    for i in 0..rows {
        let c = SubDisc::from_entries(vec![(Action::named(format!("cc-{tag}-{i}")), 1.0)]).unwrap();
        assert!(cache.import_choice(
            &format!("cc-scope-{tag}"),
            i,
            &Value::int(i as i64),
            Some(c)
        ));
    }
    cache
}

/// The engine-cache snapshot pass, swept at every fault point: a fresh
/// cache warm-started from the post-fault file carries exactly the old
/// rows or exactly the new rows (canonical encodings compared).
#[test]
fn snapshot_pass_is_crash_consistent_at_every_fault_point() {
    let fp = 0x5EED_CAFE_u64;
    let dir = scratch("snap");
    let path = dir.join("cache.dpst");
    let old_cache = small_cache("old", 3);
    let new_cache = small_cache("new", 5);
    let old_canon = encode_cache(&old_cache);
    let new_canon = encode_cache(&new_cache);
    assert_ne!(old_canon, new_canon);

    let ops = count_ops(|vfs| {
        new_cache
            .snapshot_to_with(vfs, &dir.join("probe.dpst"), fp, RetryPolicy::none())
            .expect("counting pass is clean");
    });
    for k in 0..ops {
        for fault in fault_alphabet() {
            old_cache
                .snapshot_to_with(&RealVfs, &path, fp, RetryPolicy::none())
                .expect("reset old snapshot");
            let vfs = FaultVfs::scripted(vec![(k, fault)]);
            let _ = new_cache.snapshot_to_with(&vfs, &path, fp, RetryPolicy::none());

            // Reboot: warm-start a fresh cache and re-encode it.
            let rebooted = EngineCache::new();
            rebooted
                .warm_start_from_with(&RealVfs, &path, fp)
                .unwrap_or_else(|e| {
                    panic!("snapshot corrupt after fault {fault:?} at op {k}: {e}")
                });
            let canon = encode_cache(&rebooted);
            assert!(
                canon == old_canon || canon == new_canon,
                "blended cache state after fault {fault:?} at op {k}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A probabilistic binary tree: state `i` branches to `2i+1` / `2i+2`
/// until the leaf layer. Expansion caps map deterministically to trip
/// depths, so a budgeted run always leaves a checkpoint.
fn binary_tree(depth: u32) -> Arc<dyn Automaton> {
    let split = Action::named("cc-split");
    let internal = 2i64.pow(depth) - 1;
    let total = 2i64.pow(depth + 1) - 1;
    let mut b = ExplicitAutomaton::builder("cc-tree", Value::int(0));
    for q in 0..internal {
        b = b.state(q, Signature::new([], [], [split])).transition(
            q,
            split,
            Disc::bernoulli_dyadic(Value::int(2 * q + 1), Value::int(2 * q + 2), 1, 1),
        );
    }
    for q in internal..total {
        b = b.state(q, Signature::new([], [], []));
    }
    b.build().shared()
}

/// The query-checkpoint and strata passes, swept the same way: a
/// reboot loads exactly the old or exactly the new artefact.
#[test]
fn checkpoint_and_strata_passes_are_crash_consistent_at_every_fault_point() {
    let auto = binary_tree(5);
    let fp = automaton_fingerprint(auto.as_ref());
    let cache = EngineCache::new();
    let policy = ParallelPolicy::new(1, 0).with_split_unit(2);
    let trip = |expansions: usize| -> Checkpoint {
        let (outcome, _) = try_execution_measure_ckpt(
            auto.as_ref(),
            &FirstEnabled,
            5,
            &Budget::unlimited().with_max_expansions(expansions),
            policy,
            &cache,
        )
        .expect("budget trips are salvageable");
        Checkpoint::Cone(
            outcome
                .into_checkpoint()
                .expect("tiny budgets cannot finish a depth-5 tree"),
        )
    };
    let old_ckpt = trip(2);
    let new_ckpt = trip(4);
    let old_canon = encode_checkpoint(&old_ckpt);
    let new_canon = encode_checkpoint(&new_ckpt);
    assert_ne!(old_canon, new_canon, "distinct progress points");

    let dir = scratch("ckpt");
    let path = dir.join("ckpt.dpst");
    let ops = count_ops(|vfs| {
        save_checkpoint_with(
            vfs,
            &dir.join("probe.dpst"),
            fp,
            &new_ckpt,
            RetryPolicy::none(),
        )
        .expect("counting pass is clean");
    });
    for k in 0..ops {
        for fault in fault_alphabet() {
            save_checkpoint_with(&RealVfs, &path, fp, &old_ckpt, RetryPolicy::none())
                .expect("reset old checkpoint");
            let vfs = FaultVfs::scripted(vec![(k, fault)]);
            let _ = save_checkpoint_with(&vfs, &path, fp, &new_ckpt, RetryPolicy::none());
            let rebooted = load_checkpoint_with(&RealVfs, &path, fp).unwrap_or_else(|e| {
                panic!("checkpoint corrupt after fault {fault:?} at op {k}: {e}")
            });
            let canon = encode_checkpoint(&rebooted);
            assert!(
                canon == old_canon || canon == new_canon,
                "blended checkpoint after fault {fault:?} at op {k}"
            );
        }
    }

    // Strata ride the same frame; sweep their pass too.
    let old_rows: Vec<StratumRow> = vec![(fp, "s".into(), "o".into(), 2, old_ckpt.clone())];
    let new_rows: Vec<StratumRow> = vec![
        (fp, "s".into(), "o".into(), 4, new_ckpt.clone()),
        (fp, "s2".into(), "o".into(), 4, new_ckpt.clone()),
    ];
    let old_canon = encode_strata(&old_rows);
    let new_canon = encode_strata(&new_rows);
    let spath = dir.join("strata.dpst");
    let ops = count_ops(|vfs| {
        save_strata_with(
            vfs,
            &dir.join("probe2.dpst"),
            fp,
            &new_rows,
            RetryPolicy::none(),
        )
        .expect("counting pass is clean");
    });
    for k in 0..ops {
        for fault in fault_alphabet() {
            save_strata_with(&RealVfs, &spath, fp, &old_rows, RetryPolicy::none())
                .expect("reset old strata");
            let vfs = FaultVfs::scripted(vec![(k, fault)]);
            let _ = save_strata_with(&vfs, &spath, fp, &new_rows, RetryPolicy::none());
            let rebooted = load_strata_with(&RealVfs, &spath, fp)
                .unwrap_or_else(|e| panic!("strata corrupt after fault {fault:?} at op {k}: {e}"));
            let canon = encode_strata(&rebooted);
            assert!(
                canon == old_canon || canon == new_canon,
                "blended strata after fault {fault:?} at op {k}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Read faults are surfaced as typed IO errors, and the fault plane
/// leaves the file itself untouched for the retry that follows.
#[test]
fn read_faults_are_typed_and_non_destructive() {
    let dir = scratch("readf");
    let path = dir.join("r.dpst");
    let payload = b"readable".to_vec();
    dpioa_store::write_file_with(
        &RealVfs,
        &path,
        FileKind::Strata,
        7,
        &payload,
        RetryPolicy::none(),
    )
    .unwrap();
    let vfs = FaultVfs::scripted(vec![(0, Fault::Eio)]);
    let err = read_file_with(&vfs, &path, FileKind::Strata, 7).unwrap_err();
    assert_eq!(err.code(), "store-io");
    // The next read (fault consumed) succeeds on the same plane.
    assert_eq!(
        read_file_with(&vfs, &path, FileKind::Strata, 7).unwrap(),
        payload
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Hostile files: truncation boundaries and bit flips.
// ---------------------------------------------------------------------

/// Every frame-section boundary of the DPST layout (see
/// `crates/store/src/format.rs`): magic, version, kind, fingerprint,
/// payload_len, payload, checksum.
fn frame_boundaries(payload_len: usize) -> Vec<usize> {
    let header = 4 + 4 + 1 + 8 + 8;
    let full = header + payload_len + 8;
    let mut cuts = vec![
        0,
        1,
        4,      // after magic
        8,      // after version
        9,      // after kind
        17,     // after fingerprint
        header, // after payload_len
        header + payload_len / 2,
        header + payload_len, // before checksum
        full - 1,
    ];
    cuts.dedup();
    cuts
}

fn valid_file_bytes(kind: FileKind, fp: u64, payload: &[u8], tag: &str) -> Vec<u8> {
    let dir = scratch(tag);
    let path = dir.join("v.dpst");
    dpioa_store::write_file_with(&RealVfs, &path, kind, fp, payload, RetryPolicy::none()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating any file kind at any frame-section boundary (and at a
    /// proptest-chosen arbitrary cut) yields a typed store error —
    /// never a panic — and applies nothing to a live cache.
    #[test]
    fn truncations_at_every_boundary_are_typed_and_apply_nothing(
        kind_tag in 1u8..=3,
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        arbitrary_cut in 0usize..400,
    ) {
        let kind = match kind_tag {
            1 => FileKind::CacheSnapshot,
            2 => FileKind::Checkpoint,
            _ => FileKind::Strata,
        };
        let fp = 0xB0B5_u64;
        let bytes = valid_file_bytes(kind, fp, &payload, "trunc");
        let dir = scratch("trunc-case");
        let path = dir.join("t.dpst");

        let mut cuts = frame_boundaries(payload.len());
        cuts.push(arbitrary_cut.min(bytes.len() - 1));
        for cut in cuts {
            RealVfs.write(&path, &bytes[..cut.min(bytes.len())]).unwrap();
            let err = read_file_with(&RealVfs, &path, kind, fp)
                .expect_err("truncated file must not validate");
            // Typed, stable, and never mistaken for a missing file.
            prop_assert!(err.code().starts_with("store-"), "{err}");
            prop_assert_ne!(err.code(), "store-not-found");

            // Zero partial application: warm-starting a populated cache
            // from the corpse leaves it exactly as it was.
            if kind == FileKind::CacheSnapshot {
                let cache = small_cache("hostile", 2);
                let before = encode_cache(&cache);
                let _ = cache.warm_start_from_with(&RealVfs, &path, fp);
                prop_assert_eq!(encode_cache(&cache), before);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single bit anywhere in the frame is caught by the
    /// seeded checksum (or an earlier header check) as a typed error.
    #[test]
    fn single_bit_flips_never_validate(
        kind_tag in 1u8..=3,
        payload in proptest::collection::vec(any::<u8>(), 1..120),
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        let kind = match kind_tag {
            1 => FileKind::CacheSnapshot,
            2 => FileKind::Checkpoint,
            _ => FileKind::Strata,
        };
        let fp = 0xF11B_u64;
        let mut bytes = valid_file_bytes(kind, fp, &payload, "flip");
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;

        let dir = scratch("flip-case");
        let path = dir.join("f.dpst");
        RealVfs.write(&path, &bytes).unwrap();
        let err = read_file_with(&RealVfs, &path, kind, fp)
            .expect_err("flipped file must not validate");
        prop_assert!(err.code().starts_with("store-"), "{err}");

        if kind == FileKind::CacheSnapshot {
            let cache = small_cache("flip", 2);
            let before = encode_cache(&cache);
            let _ = cache.warm_start_from_with(&RealVfs, &path, fp);
            prop_assert_eq!(encode_cache(&cache), before);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Quarantine-then-rebuild at boot: a store directory holding a
/// corrupt file must not block a warm start — the file is moved to
/// `*.quarantine` (evidence preserved) and the boot proceeds cold.
/// The server-level behaviour is asserted in `supervision.rs`; here
/// the primitive itself is pinned.
#[test]
fn quarantine_preserves_the_corpse_and_unblocks_the_path() {
    let dir = scratch("quarantine");
    let path = dir.join("cache.dpst");
    RealVfs
        .write(&path, b"DPSTgarbage-that-will-not-validate")
        .unwrap();
    let moved = dpioa_store::quarantine_file(&RealVfs, &path).expect("quarantine");
    assert!(moved.to_string_lossy().ends_with("cache.dpst.quarantine"));
    assert!(!path.exists(), "the blocking corpse is gone");
    assert_eq!(
        std::fs::read(&moved).unwrap(),
        b"DPSTgarbage-that-will-not-validate",
        "the evidence survives for the operator"
    );
    // The path now cold-starts cleanly.
    let err = read_file_with(&RealVfs, &path, FileKind::CacheSnapshot, 1).unwrap_err();
    assert_eq!(err.code(), "store-not-found");
    let _ = std::fs::remove_dir_all(&dir);
}
