//! End-to-end pipeline test across crates: build PSIOA → compose →
//! schedule → exact measure → insight → distance, verified against
//! hand-computed values.

use dpioa_core::prelude::*;
use dpioa_insight::{balanced_epsilon, balanced_epsilon_exact, f_dist, TraceInsight};
use dpioa_integration::simple_env;
use dpioa_prob::{Ratio, SubDisc};
use dpioa_sched::{
    execution_measure, execution_measure_exact, BoundedScheduler, FirstEnabled, ScriptedScheduler,
};

fn act(s: &str) -> Action {
    Action::named(s)
}

/// A two-round probabilistic service: `req` → (ok with 3/4 | retry with
/// 1/4, then ok).
fn service(tag: &str) -> std::sync::Arc<dyn Automaton> {
    let req = act(&format!("{tag}-req"));
    let ok = act(&format!("{tag}-ok"));
    let retry = act(&format!("{tag}-retry"));
    ExplicitAutomaton::builder(format!("svc-{tag}"), Value::int(0))
        .state(0, Signature::new([req], [], []))
        .state(1, Signature::new([], [], [act(&format!("{tag}-proc"))]))
        .state(2, Signature::new([], [ok], []))
        .state(3, Signature::new([], [retry], []))
        .state(4, Signature::new([], [ok], []))
        .state(5, Signature::new([], [], []))
        .step(0, req, 1)
        .transition(
            1,
            act(&format!("{tag}-proc")),
            Disc::bernoulli_dyadic(Value::int(2), Value::int(3), 3, 2),
        )
        .step(2, ok, 5)
        .step(3, retry, 4)
        .step(4, ok, 5)
        .build()
        .shared()
}

#[test]
fn full_pipeline_produces_hand_computed_distribution() {
    let tag = "pipe";
    let svc = service(tag);
    let env = simple_env(
        "pipe-env",
        act("pipe-req"),
        vec![act("pipe-ok"), act("pipe-retry")],
    );
    let world = compose2(env, svc);
    let m = execution_measure(&*world, &FirstEnabled, 8);
    assert!((m.total() - 1.0).abs() < 1e-12);
    let d = f_dist(&*world, &FirstEnabled, &TraceInsight, 8);
    // Fast path: req, ok (prob 3/4). Slow: req, retry, ok (prob 1/4).
    let fast = Value::list(vec![Value::str("pipe-req"), Value::str("pipe-ok")]);
    let slow = Value::list(vec![
        Value::str("pipe-req"),
        Value::str("pipe-retry"),
        Value::str("pipe-ok"),
    ]);
    assert_eq!(d.prob(&fast), 0.75);
    assert_eq!(d.prob(&slow), 0.25);
}

#[test]
fn exact_engine_agrees_with_f64_engine() {
    let tag = "pipe2";
    let svc = service(tag);
    let env = simple_env(
        "pipe2-env",
        act("pipe2-req"),
        vec![act("pipe2-ok"), act("pipe2-retry")],
    );
    let world = compose2(env, svc);
    let mf = execution_measure(&*world, &FirstEnabled, 8);
    let mr = execution_measure_exact(&*world, &FirstEnabled, 8);
    assert_eq!(mr.total(), Ratio::ONE);
    assert_eq!(mf.len(), mr.len());
    for (e, w) in mf.iter() {
        let exact = mr
            .iter()
            .find(|(e2, _)| *e2 == e)
            .map(|(_, w2)| *w2)
            .expect("same executions");
        assert_eq!(Ratio::from_f64_exact(*w).unwrap(), exact);
    }
}

#[test]
fn bounded_scheduler_cuts_executions_at_the_bound() {
    let tag = "pipe3";
    let svc = service(tag);
    let env = simple_env(
        "pipe3-env",
        act("pipe3-req"),
        vec![act("pipe3-ok"), act("pipe3-retry")],
    );
    let world = compose2(env, svc);
    let m = execution_measure(&*world, &BoundedScheduler::new(FirstEnabled, 2), 8);
    for (e, _) in m.iter() {
        assert!(e.len() <= 2);
    }
}

#[test]
fn scripted_runs_match_trace_prefixes() {
    let tag = "pipe4";
    let svc = service(tag);
    let env = simple_env(
        "pipe4-env",
        act("pipe4-req"),
        vec![act("pipe4-ok"), act("pipe4-retry")],
    );
    let world = compose2(env, svc);
    let s = ScriptedScheduler::new(vec![act("pipe4-req"), act("pipe4-proc")]);
    let d = f_dist(&*world, &s, &TraceInsight, 8);
    // Only the external req appears; the probabilistic proc is internal.
    assert_eq!(d.prob(&Value::list(vec![Value::str("pipe4-req")])), 1.0);
}

#[test]
fn identical_worlds_are_exactly_balanced() {
    let tag = "pipe5";
    let svc = service(tag);
    let env = simple_env(
        "pipe5-env",
        act("pipe5-req"),
        vec![act("pipe5-ok"), act("pipe5-retry")],
    );
    let world = compose2(env, svc);
    let eps = balanced_epsilon(
        &*world,
        &FirstEnabled,
        &*world,
        &FirstEnabled,
        &TraceInsight,
        8,
    );
    assert_eq!(eps, 0.0);
    let exact = balanced_epsilon_exact(
        &*world,
        &FirstEnabled,
        &*world,
        &FirstEnabled,
        &TraceInsight,
        8,
    );
    assert_eq!(exact, Ratio::ZERO);
}

#[test]
fn halting_mass_is_conserved_through_the_pipeline() {
    let tag = "pipe6";
    let svc = service(tag);
    let env = simple_env(
        "pipe6-env",
        act("pipe6-req"),
        vec![act("pipe6-ok"), act("pipe6-retry")],
    );
    let world = compose2(env, svc);
    // A scheduler that halts with probability 1/2 at each step.
    struct Half;
    impl dpioa_sched::Scheduler for Half {
        fn schedule(&self, auto: &dyn Automaton, exec: &Execution) -> SubDisc<Action> {
            match auto.locally_controlled(exec.lstate()).first() {
                Some(&a) => SubDisc::from_entries(vec![(a, 0.5)]).unwrap(),
                None => SubDisc::halt(),
            }
        }
    }
    let m = execution_measure(&*world, &Half, 10);
    assert!((m.total() - 1.0).abs() < 1e-12);
    // The empty execution keeps exactly mass 1/2.
    let w_empty: f64 = m
        .iter()
        .filter(|(e, _)| e.is_empty())
        .map(|(_, w)| *w)
        .sum();
    assert_eq!(w_empty, 0.5);
}
