//! State-lumped expansion vs the general cone engine: on random
//! memoryless scheduler/automaton pairs the lumped forward pass must
//! reproduce the general-exact observation distribution bit-for-bit
//! (dyadic weights make f64 sums order-independent), and hash-consing
//! values through the interner must preserve `Disc` canonicalization.

use dpioa_core::{canonical, Automaton, Execution, IValue, Value};
use dpioa_integration::random_automaton;
use dpioa_prob::{Disc, Ratio, Weight};
use dpioa_sched::{
    execution_measure_exact, observation_dist, try_execution_measure, try_execution_measure_pooled,
    try_lumped_observation_dist, try_lumped_observation_dist_exact, BoundedScheduler, Budget,
    EngineCache, FirstEnabled, HaltingMix, Observation, ParallelPolicy, PriorityScheduler,
    RandomScheduler, Scheduler,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A memoryless scheduler from a small enumerated family. Every member
/// implements `schedule_memoryless`, so the lumped tier must accept it.
fn memoryless_scheduler(kind: u8, auto: &Arc<dyn Automaton>) -> Arc<dyn Scheduler> {
    match kind % 5 {
        0 => Arc::new(FirstEnabled),
        1 => Arc::new(RandomScheduler),
        2 => {
            // Priority over the automaton's start-state actions,
            // reversed — still a fixed state-only policy.
            let mut order: Vec<_> = auto
                .signature(&auto.start_state())
                .all()
                .into_iter()
                .collect();
            order.reverse();
            Arc::new(PriorityScheduler::new(order))
        }
        3 => Arc::new(HaltingMix::new(FirstEnabled, 3, 2)),
        _ => Arc::new(BoundedScheduler::new(FirstEnabled, 3)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The lumped and general engines agree exactly on last-state
    /// observations, for random automata and every memoryless scheduler
    /// in the family.
    #[test]
    fn lumped_matches_general_on_last_state(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..5,
        horizon in 0usize..6,
    ) {
        let auto = random_automaton("el-ls", &format!("els{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let observe = Observation::final_state();
        let lumped = try_lumped_observation_dist(
            &*auto, &sched, horizon, &observe, &Budget::unlimited(),
        ).expect("family is memoryless, observation factors through last state");
        let general = observation_dist(&*auto, &sched, horizon, |e: &Execution| {
            observe.apply(&*auto, e)
        });
        prop_assert_eq!(lumped, general);
    }

    /// Same agreement for trace observations, and the exact-rational
    /// lumped pass totals exactly one.
    #[test]
    fn lumped_matches_general_on_trace(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..5,
        horizon in 0usize..6,
    ) {
        let auto = random_automaton("el-tr", &format!("elt{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let observe = Observation::trace();
        let lumped = try_lumped_observation_dist(
            &*auto, &sched, horizon, &observe, &Budget::unlimited(),
        ).expect("trace observations are lumpable");
        let general = observation_dist(&*auto, &sched, horizon, |e: &Execution| {
            observe.apply(&*auto, e)
        });
        prop_assert_eq!(lumped, general);

        let exact = try_lumped_observation_dist_exact(
            &*auto, &sched, horizon, &observe, &Budget::unlimited(),
        ).expect("dyadic weights are exactly representable");
        let total = exact.iter().fold(Ratio::from_int(0), |t, (_, w)| t.add(w));
        prop_assert_eq!(total, Ratio::from_int(1));
    }

    /// The work-stealing pooled engine is bit-identical to the
    /// sequential general engine for every lane count × steal-RNG seed
    /// × split threshold: same entry count, same total, the same
    /// (execution, weight) pairs with bit-equal f64 weights, and the
    /// same observed distribution — regardless of how the frontier was
    /// chunked, stolen or split across lanes (cutover 0 forces pooled
    /// dispatch at every depth; split unit 1–4 forces splits on tiny
    /// spans). `DPIOA_POOL_LANES` pins the lane count for CI matrix
    /// runs; unset, all of {1, 2, 4, 8} are exercised.
    #[test]
    fn pooled_parallel_matches_sequential_bitwise(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..5,
        horizon in 0usize..6,
        steal_seed in any::<u64>(),
        split_unit in 1usize..5,
    ) {
        let auto = random_automaton("el-pp", &format!("elp{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let observe = Observation::final_state();
        let budget = Budget::unlimited();
        let seq = try_execution_measure(&*auto, &sched, horizon, &budget)
            .expect("unlimited budget");
        let seq_dist = seq.observe(|e: &Execution| observe.apply(&*auto, e));
        let lanes: Vec<usize> = std::env::var("DPIOA_POOL_LANES")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(|l: usize| vec![l])
            .unwrap_or_else(|| vec![1, 2, 4, 8]);
        for threads in lanes {
            let cache = EngineCache::new();
            let policy = ParallelPolicy::new(threads, 0)
                .with_steal_seed(steal_seed)
                .with_split_unit(split_unit);
            let (pooled, stats) = try_execution_measure_pooled(
                &*auto, &sched, horizon, &budget, policy, &cache,
            ).expect("unlimited budget");
            prop_assert_eq!(pooled.len(), seq.len());
            prop_assert_eq!(pooled.total().to_bits(), seq.total().to_bits());
            for (e, w) in seq.iter() {
                let found: Vec<_> = pooled.iter().filter(|(e2, _)| *e2 == e).collect();
                prop_assert_eq!(found.len(), 1);
                prop_assert_eq!(found[0].1.to_bits(), w.to_bits());
            }
            let pooled_dist = pooled.observe(|e: &Execution| observe.apply(&*auto, e));
            prop_assert_eq!(&pooled_dist, &seq_dist);
            prop_assert_eq!(stats.threads, threads.max(1));
        }
    }

    /// A workload whose frontiers never reach the adaptive cutover must
    /// never touch the pool: zero pooled depths, zero steals, zero
    /// failed steals, zero splits — the "a small query pays nothing"
    /// half of the work-stealing contract.
    #[test]
    fn small_workload_never_steals_or_splits(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..5,
        horizon in 0usize..6,
        threads in 2usize..9,
    ) {
        let auto = random_automaton("el-ns", &format!("eln{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let budget = Budget::unlimited();
        // auto(threads) sets the cutover at 128 per lane; a horizon-6
        // frontier tops out at far fewer nodes, so every depth must
        // stay inline.
        let cache = EngineCache::new();
        let (_, stats) = try_execution_measure_pooled(
            &*auto, &sched, horizon, &budget, ParallelPolicy::auto(threads), &cache,
        ).expect("unlimited budget");
        prop_assert_eq!(stats.pooled_depths, 0);
        prop_assert_eq!(stats.pool.steals, 0);
        prop_assert_eq!(stats.pool.failed_steals, 0);
        prop_assert_eq!(stats.pool.splits, 0);
        prop_assert_eq!(stats.pool.batches, 0);
    }

    /// Bounded-cache eviction changes *which* probes hit, never the
    /// answer: under a transition cache clamped small enough to churn,
    /// the pooled engine (sequential and stealing) reproduces the
    /// unbounded-cache distribution bit-for-bit, warm or cold.
    #[test]
    fn bounded_cache_eviction_never_changes_results(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..5,
        horizon in 0usize..6,
        cap in 1usize..6,
    ) {
        let auto = random_automaton("el-ev", &format!("ele{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let observe = Observation::final_state();
        let budget = Budget::unlimited();
        let plain = try_execution_measure(&*auto, &sched, horizon, &budget)
            .expect("unlimited budget")
            .observe(|e: &Execution| observe.apply(&*auto, e));
        let bounded = EngineCache::bounded(cap);
        for policy in [ParallelPolicy::sequential(), ParallelPolicy::new(4, 0)] {
            // Two passes per policy: the second runs against whatever
            // survived the first pass's eviction churn.
            for _ in 0..2 {
                let (m, _) = try_execution_measure_pooled(
                    &*auto, &sched, horizon, &budget, policy, &bounded,
                ).expect("unlimited budget");
                let dist = m.observe(|e: &Execution| observe.apply(&*auto, e));
                prop_assert_eq!(&dist, &plain);
            }
        }
        // The bound is rounded up to a whole number of shards, but a
        // bound there must be.
        prop_assert!(bounded.transition_capacity().expect("bounded cache") >= cap);
    }

    /// Transition/choice memoization is invisible to results: a cold
    /// cache, the same cache warm (second run), and a cache reused
    /// across a different horizon all reproduce the unmemoized general
    /// engine's observation distribution exactly.
    #[test]
    fn memoized_engine_matches_unmemoized(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..5,
        horizon in 0usize..6,
    ) {
        let auto = random_automaton("el-mm", &format!("elm{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let observe = Observation::final_state();
        let budget = Budget::unlimited();
        let plain = try_execution_measure(&*auto, &sched, horizon, &budget)
            .expect("unlimited budget")
            .observe(|e: &Execution| observe.apply(&*auto, e));
        let cache = EngineCache::new();
        let cold = try_execution_measure_pooled(
            &*auto, &sched, horizon, &budget, ParallelPolicy::sequential(), &cache,
        ).expect("unlimited budget");
        let cold_dist = cold.0.observe(|e: &Execution| observe.apply(&*auto, e));
        prop_assert_eq!(&cold_dist, &plain);
        let warm = try_execution_measure_pooled(
            &*auto, &sched, horizon, &budget, ParallelPolicy::sequential(), &cache,
        ).expect("unlimited budget");
        let warm_dist = warm.0.observe(|e: &Execution| observe.apply(&*auto, e));
        prop_assert_eq!(&warm_dist, &plain);
        // On the warm pass every expansion hits the memo: misses must
        // not grow when the exact same query repeats.
        prop_assert_eq!(warm.1.cache.misses, 0);
        // Reusing the cache at a longer horizon is still exact.
        let longer = try_execution_measure_pooled(
            &*auto, &sched, horizon + 1, &budget, ParallelPolicy::sequential(), &cache,
        ).expect("unlimited budget");
        let longer_plain = try_execution_measure(&*auto, &sched, horizon + 1, &budget)
            .expect("unlimited budget")
            .observe(|e: &Execution| observe.apply(&*auto, e));
        let longer_dist = longer.0.observe(|e: &Execution| observe.apply(&*auto, e));
        prop_assert_eq!(&longer_dist, &longer_plain);
    }

    /// Interning values preserves `Disc` canonicalization: rebuilding a
    /// transition distribution through `canonical` leaves it equal, and
    /// equal values intern to the same id.
    #[test]
    fn interning_preserves_disc_canonicalization(
        seed in 0u64..500,
        n in 3i64..7,
        horizon in 1usize..5,
    ) {
        let auto = random_automaton("el-in", &format!("eli{seed}"), n, seed);
        let m = execution_measure_exact(&*auto, &FirstEnabled, horizon);
        for (exec, _) in m.iter() {
            for (q, a, _) in exec.steps() {
                let eta = auto.transition(q, a).expect("step came from a transition");
                let interned: Disc<Value, Ratio> = Disc::from_entries(
                    eta.iter().map(|(v, w)| (canonical(v), Ratio::from_f64_exact(*w)
                        .expect("dyadic"))).collect(),
                ).expect("canonical is injective on equal values");
                let direct: Disc<Value, Ratio> = Disc::from_entries(
                    eta.iter().map(|(v, w)| (v.clone(), Ratio::from_f64_exact(*w)
                        .expect("dyadic"))).collect(),
                ).expect("original entries");
                prop_assert_eq!(&interned, &direct);
                for v in eta.support() {
                    prop_assert_eq!(IValue::of(v), IValue::of(&canonical(v)));
                    prop_assert!(IValue::of(v).value() == *v);
                }
            }
        }
    }
}
