//! State-lumped expansion vs the general cone engine: on random
//! memoryless scheduler/automaton pairs the lumped forward pass must
//! reproduce the general-exact observation distribution bit-for-bit
//! (dyadic weights make f64 sums order-independent), and hash-consing
//! values through the interner must preserve `Disc` canonicalization.

use dpioa_core::{canonical, Automaton, Execution, IValue, Value};
use dpioa_integration::random_automaton;
use dpioa_prob::{Disc, Ratio, Weight};
use dpioa_sched::{
    execution_measure_exact, observation_dist, try_lumped_observation_dist,
    try_lumped_observation_dist_exact, BoundedScheduler, Budget, FirstEnabled, HaltingMix,
    Observation, PriorityScheduler, RandomScheduler, Scheduler,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A memoryless scheduler from a small enumerated family. Every member
/// implements `schedule_memoryless`, so the lumped tier must accept it.
fn memoryless_scheduler(kind: u8, auto: &Arc<dyn Automaton>) -> Arc<dyn Scheduler> {
    match kind % 5 {
        0 => Arc::new(FirstEnabled),
        1 => Arc::new(RandomScheduler),
        2 => {
            // Priority over the automaton's start-state actions,
            // reversed — still a fixed state-only policy.
            let mut order: Vec<_> = auto
                .signature(&auto.start_state())
                .all()
                .into_iter()
                .collect();
            order.reverse();
            Arc::new(PriorityScheduler::new(order))
        }
        3 => Arc::new(HaltingMix::new(FirstEnabled, 3, 2)),
        _ => Arc::new(BoundedScheduler::new(FirstEnabled, 3)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The lumped and general engines agree exactly on last-state
    /// observations, for random automata and every memoryless scheduler
    /// in the family.
    #[test]
    fn lumped_matches_general_on_last_state(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..5,
        horizon in 0usize..6,
    ) {
        let auto = random_automaton("el-ls", &format!("els{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let observe = Observation::final_state();
        let lumped = try_lumped_observation_dist(
            &*auto, &sched, horizon, &observe, &Budget::unlimited(),
        ).expect("family is memoryless, observation factors through last state");
        let general = observation_dist(&*auto, &sched, horizon, |e: &Execution| {
            observe.apply(&*auto, e)
        });
        prop_assert_eq!(lumped, general);
    }

    /// Same agreement for trace observations, and the exact-rational
    /// lumped pass totals exactly one.
    #[test]
    fn lumped_matches_general_on_trace(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..5,
        horizon in 0usize..6,
    ) {
        let auto = random_automaton("el-tr", &format!("elt{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let observe = Observation::trace();
        let lumped = try_lumped_observation_dist(
            &*auto, &sched, horizon, &observe, &Budget::unlimited(),
        ).expect("trace observations are lumpable");
        let general = observation_dist(&*auto, &sched, horizon, |e: &Execution| {
            observe.apply(&*auto, e)
        });
        prop_assert_eq!(lumped, general);

        let exact = try_lumped_observation_dist_exact(
            &*auto, &sched, horizon, &observe, &Budget::unlimited(),
        ).expect("dyadic weights are exactly representable");
        let total = exact.iter().fold(Ratio::from_int(0), |t, (_, w)| t.add(w));
        prop_assert_eq!(total, Ratio::from_int(1));
    }

    /// Interning values preserves `Disc` canonicalization: rebuilding a
    /// transition distribution through `canonical` leaves it equal, and
    /// equal values intern to the same id.
    #[test]
    fn interning_preserves_disc_canonicalization(
        seed in 0u64..500,
        n in 3i64..7,
        horizon in 1usize..5,
    ) {
        let auto = random_automaton("el-in", &format!("eli{seed}"), n, seed);
        let m = execution_measure_exact(&*auto, &FirstEnabled, horizon);
        for (exec, _) in m.iter() {
            for (q, a, _) in exec.steps() {
                let eta = auto.transition(q, a).expect("step came from a transition");
                let interned: Disc<Value, Ratio> = Disc::from_entries(
                    eta.iter().map(|(v, w)| (canonical(v), Ratio::from_f64_exact(*w)
                        .expect("dyadic"))).collect(),
                ).expect("canonical is injective on equal values");
                let direct: Disc<Value, Ratio> = Disc::from_entries(
                    eta.iter().map(|(v, w)| (v.clone(), Ratio::from_f64_exact(*w)
                        .expect("dyadic"))).collect(),
                ).expect("original entries");
                prop_assert_eq!(&interned, &direct);
                for v in eta.support() {
                    prop_assert_eq!(IValue::of(v), IValue::of(&canonical(v)));
                    prop_assert!(IValue::of(v).value() == *v);
                }
            }
        }
    }
}
