//! Exactness cross-validation: the `f64` engine and the exact `Ratio`
//! engine must agree bit-for-bit on every dyadic system, across random
//! models, schedulers and horizons.

use dpioa_core::{compose2, Automaton};
use dpioa_insight::{f_dist, f_dist_exact, TraceInsight};
use dpioa_integration::{random_automaton, simple_env};
use dpioa_prob::{Ratio, Weight};
use dpioa_sched::{execution_measure, execution_measure_exact, FirstEnabled, RandomScheduler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ε_σ agrees between engines on dyadic systems.
    #[test]
    fn execution_measures_agree(seed in 0u64..300, n in 3i64..7, horizon in 1usize..8) {
        let a = random_automaton("ex-m", &format!("exm{seed}"), n, seed);
        let mf = execution_measure(&*a, &FirstEnabled, horizon);
        let mr = execution_measure_exact(&*a, &FirstEnabled, horizon);
        prop_assert_eq!(mf.len(), mr.len());
        prop_assert_eq!(mr.total(), Ratio::ONE);
        for (e, w) in mf.iter() {
            let exact = mr.iter().find(|(e2, _)| *e2 == e).map(|(_, w2)| *w2);
            prop_assert_eq!(exact, Ratio::from_f64_exact(*w));
        }
    }

    /// f-dist agrees between engines.
    #[test]
    fn f_dists_agree(seed in 0u64..300, n in 3i64..6) {
        let a = random_automaton("ex-f", &format!("exf{seed}"), n, seed);
        let df = f_dist(&*a, &FirstEnabled, &TraceInsight, 8);
        let dr = f_dist_exact(&*a, &FirstEnabled, &TraceInsight, 8);
        prop_assert_eq!(df.support_len(), dr.support_len());
        for (obs, w) in df.iter() {
            prop_assert_eq!(dr.prob(obs), Ratio::from_f64_exact(*w).unwrap());
        }
    }

    /// Total mass is conserved through composition and scheduling.
    #[test]
    fn mass_conservation(seed in 0u64..200, n in 3i64..6, horizon in 1usize..10) {
        let a = random_automaton("ex-c1", &format!("exc1{seed}"), n, seed);
        let b = random_automaton("ex-c2", &format!("exc2{seed}"), n, seed + 31);
        let sys = compose2(a, b);
        let m = execution_measure(&*sys, &FirstEnabled, horizon);
        prop_assert!((m.total() - 1.0).abs() < 1e-12);
    }

    /// Cone probabilities are monotone under prefix extension.
    #[test]
    fn cone_monotonicity(seed in 0u64..200, n in 3i64..6) {
        let a = random_automaton("ex-cn", &format!("excn{seed}"), n, seed);
        let m = execution_measure(&*a, &FirstEnabled, 6);
        for (e, _) in m.iter() {
            if !e.is_empty() {
                // A prefix's cone contains the full execution's cone.
                let mut prefix = dpioa_core::Execution::from_state(e.fstate().clone());
                let (q0, a0, q1) = e.steps().next().unwrap();
                let _ = q0;
                prefix.push(a0, q1.clone());
                prop_assert!(m.cone_prob(&prefix) >= m.cone_prob(e) - 1e-12);
            }
        }
    }
}

/// The uniform scheduler mixes non-dyadic weights when 3 actions are
/// enabled — the exact engine must refuse rather than silently round.
#[test]
fn exact_engine_rejects_non_dyadic_weights() {
    use dpioa_core::{Action, ExplicitAutomaton, Signature, Value};
    let mk = |s: &str| Action::named(s);
    let tri = ExplicitAutomaton::builder("ex-tri", Value::int(0))
        .state(
            0,
            Signature::new([], [mk("ex-t1"), mk("ex-t2"), mk("ex-t3")], []),
        )
        .state(1, Signature::new([], [], []))
        .step(0, mk("ex-t1"), 1)
        .step(0, mk("ex-t2"), 1)
        .step(0, mk("ex-t3"), 1)
        .build();
    // 1/3 is exactly representable as a RATIO of the f64 it becomes, so
    // the conversion itself succeeds; the point here is agreement:
    let mf = execution_measure(&tri, &RandomScheduler, 1);
    let mr = execution_measure_exact(&tri, &RandomScheduler, 1);
    assert_eq!(mf.len(), mr.len());
    // And the rational total equals the f64 total's exact lift (both are
    // sums of the same f64 values).
    let total_f64_lifted: Ratio = mf
        .iter()
        .map(|(_, w)| Ratio::from_f64_exact(*w).unwrap())
        .fold(Ratio::ZERO, |acc, r| acc.add(&r));
    assert_eq!(total_f64_lifted, mr.total());
}

#[test]
fn pipeline_with_environment_is_exact() {
    let svc = random_automaton("ex-p", "exp0", 5, 42);
    let trigger = svc.signature(&svc.start_state()).output.into_iter().next();
    // Compose with a listening environment when the model has an output.
    if let Some(out) = trigger {
        let env = simple_env("ex-env", dpioa_core::Action::named("ex-env-go"), vec![out]);
        let sys = compose2(env, svc);
        let mf = execution_measure(&*sys, &FirstEnabled, 8);
        let mr = execution_measure_exact(&*sys, &FirstEnabled, 8);
        assert_eq!(mf.len(), mr.len());
    }
}
