//! Fault injection meets the engine: wrapped automata stay legal PSIOA
//! (Def. 2.1), execution measures stay exactly normalized under crash
//! faults, the crash/restart PCA passes the Def. 2.16 audit, and budget
//! exhaustion degrades gracefully to Monte-Carlo with provenance.

use dpioa_config::{audit_pca, Autid};
use dpioa_core::audit::audit_psioa;
use dpioa_core::explore::ExploreLimits;
use dpioa_core::{Action, Automaton, AutomatonExt, ExplicitAutomaton, Signature, Value};
use dpioa_faults::{
    crash_restart, CrashStop, DuplicatingChannel, FaultProb, LossyChannel, StallingChannel,
};
use dpioa_integration::random_automaton;
use dpioa_prob::{Disc, Ratio, Weight};
use dpioa_sched::{
    execution_measure_exact, robust_observation_dist, Budget, EngineError, EngineKind,
    FirstEnabled, Observation, RandomScheduler, RobustConfig,
};
use proptest::prelude::*;
use std::sync::Arc;

fn act(s: &str) -> Action {
    Action::named(s)
}

/// Every action any seeded random automaton can take (used to target
/// the channel wrappers at the full alphabet).
fn all_actions(a: &Arc<dyn Automaton>) -> Vec<Action> {
    let r = dpioa_core::explore::reachable(&**a, ExploreLimits::default());
    let mut out = Vec::new();
    for q in &r.states {
        out.extend(a.signature(q).all());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CrashStop-wrapped automata satisfy Def. 2.1 for every seed and
    /// every dyadic crash rate.
    #[test]
    fn crash_stop_preserves_psioa_validity(seed in 0u64..400, n in 3i64..7, num in 0u64..=8) {
        let inner = random_automaton("fi-cs", &format!("fcs{seed}"), n, seed);
        let wrapped = CrashStop::wrap(inner, FaultProb::new(num, 3));
        prop_assert!(audit_psioa(&*wrapped, ExploreLimits::default()).is_valid());
    }

    /// LossyChannel-wrapped automata satisfy Def. 2.1 when every action
    /// is subject to loss.
    #[test]
    fn lossy_channel_preserves_psioa_validity(seed in 0u64..400, n in 3i64..6, num in 0u64..=4) {
        let inner = random_automaton("fi-lc", &format!("flc{seed}"), n, seed);
        let targets = all_actions(&inner);
        let wrapped = LossyChannel::wrap(inner, targets, FaultProb::new(num, 2));
        prop_assert!(audit_psioa(&*wrapped, ExploreLimits::default()).is_valid());
    }

    /// DuplicatingChannel-wrapped automata satisfy Def. 2.1 when every
    /// action is subject to duplication.
    #[test]
    fn duplicating_channel_preserves_psioa_validity(seed in 0u64..400, n in 3i64..6, num in 0u64..=4) {
        let inner = random_automaton("fi-dc", &format!("fdc{seed}"), n, seed);
        let targets = all_actions(&inner);
        let wrapped = DuplicatingChannel::wrap(inner, targets, FaultProb::new(num, 2));
        prop_assert!(audit_psioa(&*wrapped, ExploreLimits::default()).is_valid());
    }

    /// StallingChannel-wrapped automata satisfy Def. 2.1 for every stall
    /// budget when every action is subject to stalling.
    #[test]
    fn stalling_channel_preserves_psioa_validity(seed in 0u64..400, n in 3i64..6, delay in 0u64..=4) {
        let inner = random_automaton("fi-sc", &format!("fsc{seed}"), n, seed);
        let targets = all_actions(&inner);
        let wrapped = StallingChannel::wrap(inner, targets, delay);
        prop_assert!(audit_psioa(&*wrapped, ExploreLimits::default()).is_valid());
    }

    /// A stalled automaton's exact execution measure stays exactly
    /// normalized: stalling only reroutes mass, never loses it.
    #[test]
    fn execution_measure_exactly_normalized_under_stall(
        seed in 0u64..200,
        n in 3i64..6,
        delay in 0u64..=3,
        horizon in 1usize..7,
    ) {
        let inner = random_automaton("fi-sn", &format!("fsn{seed}"), n, seed);
        let targets = all_actions(&inner);
        let wrapped = StallingChannel::wrap(inner, targets, delay);
        let m = execution_measure_exact(&*wrapped, &RandomScheduler, horizon);
        prop_assert_eq!(m.total(), Ratio::one());
    }

    /// The exact execution measure of a crash-wrapped automaton is a
    /// genuine probability measure: total mass exactly 1 (as a rational,
    /// zero rounding), for random systems, schedulers and crash rates.
    #[test]
    fn execution_measure_exactly_normalized_under_crash(
        seed in 0u64..400,
        n in 3i64..7,
        num in 0u64..=8,
        horizon in 1usize..8,
    ) {
        let inner = random_automaton("fi-nm", &format!("fnm{seed}"), n, seed);
        let wrapped = CrashStop::wrap(inner, FaultProb::new(num, 3));
        let m = execution_measure_exact(&*wrapped, &RandomScheduler, horizon);
        prop_assert_eq!(m.total(), Ratio::one());
    }
}

/// A coin automaton with a long dyadic tail, used to exhaust budgets.
fn deep_coin() -> Arc<dyn Automaton> {
    let mut b = ExplicitAutomaton::builder("fi-deep", Value::int(0));
    for i in 0..10 {
        b = b
            .state(i, Signature::new([], [], [act("fi-step")]))
            .transition(
                i,
                act("fi-step"),
                Disc::bernoulli_dyadic(Value::int(i + 1), Value::int(100 + i), 1, 1),
            );
    }
    for i in 0..10 {
        b = b.state(100 + i, Signature::new([], [], []));
    }
    b.state(10, Signature::new([], [], [])).build().shared()
}

/// Budget exhaustion on a fault-wrapped system now degrades to a
/// *hybrid* answer: the tripped exact tier's checkpoint keeps the mass
/// it resolved, the salvage sampler estimates only the frontier
/// remainder, and the provenance reports both — deterministically.
#[test]
fn budget_exhaustion_salvages_checkpoint_into_hybrid_with_provenance() {
    let auto = CrashStop::wrap(deep_coin(), FaultProb::new(1, 2));
    let config = RobustConfig {
        // Enough to finish depth 1 (crash + report branches resolve)
        // and trip inside depth 2 — so the checkpoint carries exact
        // resolved mass AND a live frontier.
        budget: Budget::unlimited().with_max_expansions(5),
        mc_samples: 20_000,
        mc_threads: 2,
        ..RobustConfig::default()
    };
    // Execution length factors through neither trace nor last state, so
    // the lumped tier is ineligible and the general tier's budget rules.
    let observe = Observation::full(|e| Value::int(e.len() as i64));
    let (dist, prov) =
        robust_observation_dist(&*auto, &FirstEnabled, 6, &observe, &config).unwrap();
    assert_eq!(prov.engine, EngineKind::Hybrid);
    assert!(matches!(
        prov.fallback_reason,
        Some(EngineError::BudgetExhausted {
            deadline_hit: false,
            cancelled: false,
            ..
        })
    ));
    assert_eq!(prov.samples, Some(20_000));
    assert_eq!(prov.threads, Some(2));
    // The checkpoint resolved exact mass before tripping, and salvage
    // sampled from a non-empty frontier.
    let resolved = prov.resolved_mass.expect("hybrid reports resolved mass");
    assert!(
        resolved > 0.0 && resolved < 1.0,
        "expected partial exact resolution, got {resolved}"
    );
    assert!(prov.frontier_nodes.unwrap() > 0);
    // Every tier reports the shared transition-memo counters; the
    // salvage sampler walks cached successors, so totals are populated.
    assert!(prov.cache_hits.is_some());
    assert!(prov.cache_misses.is_some());
    assert!(prov.cache_hits.unwrap() + prov.cache_misses.unwrap() > 0);
    // The error bound is the DKW bound scaled DOWN by the frontier
    // mass — a strict refinement of a pure Monte-Carlo restart.
    let full_dkw = ((2.0f64 / config.confidence_delta).ln() / (2.0 * 20_000.0)).sqrt();
    assert!(prov.error_bound > 0.0);
    assert!(prov.error_bound < full_dkw);
    let total: f64 = dist.iter().map(|(_, w)| *w).sum();
    assert!((total - 1.0).abs() < 1e-9);

    // The same system under a generous budget answers exactly, and the
    // Monte-Carlo estimate tracks that exact answer.
    let exact_config = RobustConfig::default();
    let (exact, exact_prov) =
        robust_observation_dist(&*auto, &FirstEnabled, 6, &observe, &exact_config).unwrap();
    assert_eq!(exact_prov.engine, EngineKind::Exact);
    assert_eq!(exact_prov.error_bound, 0.0);
    // The exact tier reports pool and memo statistics uniformly too.
    assert!(exact_prov.threads.is_some());
    assert!(exact_prov.cache_hits.is_some());
    assert!(exact_prov.cache_misses.is_some());
    assert!(exact_prov.pooled_depths.is_some());
    // Work-stealing activity rides along: the pool record is present,
    // and on a horizon-6 query (frontier far below the cutover) it must
    // show an untouched pool — no batches, no steals, no splits.
    let pool = exact_prov
        .pool
        .as_ref()
        .expect("exact tier reports pool stats");
    assert_eq!(pool.batches, 0);
    assert_eq!(pool.steals, 0);
    assert_eq!(pool.splits, 0);
    assert!(dpioa_prob::tv_distance(&exact, &dist) < 0.05);
}

/// The crash/restart PCA: destruction by reduction, re-creation by the
/// `created` mapping, audited against all four Def. 2.16 constraints.
#[test]
fn crash_restart_lifecycle_and_audit() {
    let child_id = Autid::named("fi-cr-child");
    let ticker = ExplicitAutomaton::builder("fi-ticker", Value::int(0))
        .state(0, Signature::new([], [], [act("fi-tick")]))
        .step(0, act("fi-tick"), 0)
        .build()
        .shared();
    let child = CrashStop::wrap(ticker, FaultProb::new(1, 1));
    let child_start = child.start_state();
    let sys = crash_restart("fi-cr", child_id, child, act("fi-restart"));

    // Half the tick mass crashes the child; the crashed branch must be
    // the configuration WITHOUT the child (destroyed by reduction).
    let q0 = sys.pca.start_state();
    let eta = sys.pca.transition(&q0, act("fi-tick")).unwrap();
    assert_eq!(eta.support_len(), 2);
    let (mut dead, mut alive) = (None, None);
    for q in eta.support() {
        if sys.pca.config(q).contains(sys.child) {
            alive = Some(q.clone());
        } else {
            dead = Some(q.clone());
        }
    }
    let (dead, alive) = (dead.expect("crash branch"), alive.expect("survive branch"));
    assert_eq!(eta.prob(&dead), 0.5);
    assert_eq!(eta.prob(&alive), 0.5);
    // The dead branch lost the child's actions; restart stays enabled.
    assert!(!sys.pca.signature(&dead).contains(act("fi-tick")));
    assert!(sys.pca.signature(&dead).contains(sys.restart));

    // Restart from the dead branch re-creates the child at start.
    let eta_r = sys.pca.transition(&dead, sys.restart).unwrap();
    let q_restarted = eta_r.support().next().unwrap().clone();
    assert_eq!(
        sys.pca.config(&q_restarted).state_of(sys.child),
        Some(&child_start)
    );
    assert!(sys.pca.enabled(&q_restarted).contains(&act("fi-tick")));

    // Restart from the alive branch does NOT reset the child (φ ∖ A).
    let eta_noop = sys.pca.transition(&alive, sys.restart).unwrap();
    let q_noop = eta_noop.support().next().unwrap().clone();
    assert_eq!(
        sys.pca.config(&q_noop).state_of(sys.child),
        sys.pca.config(&alive).state_of(sys.child)
    );

    // All four Def. 2.16 constraints hold on the reachable prefix.
    let report = audit_pca(&*sys.pca, ExploreLimits::default());
    assert!(report.is_valid(), "PCA audit failed: {report:?}");

    // And the PCA's own execution measure stays exactly normalized.
    let m = execution_measure_exact(&*sys.pca, &FirstEnabled, 5);
    assert_eq!(m.total(), Ratio::one());
}
