//! Flat-frontier bit-identity: the arena-backed struct-of-arrays
//! engine (`dpioa_sched::flat`) must reproduce the Arc-spine engine's
//! execution measure *entry-for-entry, bit-for-bit* — same order, same
//! executions, bit-equal f64 weights — for every lane count ×
//! steal-RNG seed × split threshold, on random automata under both
//! memoryless and history-dependent schedulers. Batched multi-horizon
//! expansion must likewise equal K independent expansions, member by
//! member. `DPIOA_POOL_LANES` pins the lane count for CI matrix runs;
//! unset, all of {1, 2, 4, 8} are exercised.

use dpioa_core::{Automaton, Execution};
use dpioa_integration::random_automaton;
use dpioa_sched::{
    try_batch_execution_measures, try_execution_measure_ckpt_in, try_execution_measure_flat,
    BatchMember, BatchProjection, BoundedScheduler, Budget, DeterministicScheduler, EngineCache,
    ExecutionMeasure, FirstEnabled, HaltingMix, ParallelPolicy, PriorityScheduler, RandomScheduler,
    Scheduler,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::Arc;

/// Lane counts to exercise; `DPIOA_POOL_LANES` pins one for CI matrix
/// runs.
fn lane_counts() -> Vec<usize> {
    std::env::var("DPIOA_POOL_LANES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|l: usize| vec![l])
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// A scheduler from a small enumerated family. Kinds 0–4 are
/// memoryless (the flat engine serves them from lane memos and tail
/// templates); kind 5 is genuinely history-dependent, forcing the
/// per-execution fallback path.
fn scheduler_family(kind: u8, auto: &Arc<dyn Automaton>) -> Arc<dyn Scheduler> {
    match kind % 6 {
        0 => Arc::new(FirstEnabled),
        1 => Arc::new(RandomScheduler),
        2 => {
            let mut order: Vec<_> = auto
                .signature(&auto.start_state())
                .all()
                .into_iter()
                .collect();
            order.reverse();
            Arc::new(PriorityScheduler::new(order))
        }
        3 => Arc::new(HaltingMix::new(FirstEnabled, 3, 2)),
        4 => Arc::new(BoundedScheduler::new(FirstEnabled, 3)),
        _ => Arc::new(DeterministicScheduler::new(
            "ff-alternate",
            |exec, enabled| {
                if enabled.is_empty() {
                    None
                } else {
                    enabled.get(exec.len() % enabled.len()).copied()
                }
            },
        )),
    }
}

/// The Arc-spine per-depth engine run sequentially — the order-exact
/// oracle every flat expansion must match bitwise.
fn spine(auto: &dyn Automaton, sched: &dyn Scheduler, horizon: usize) -> ExecutionMeasure<f64> {
    let cache = EngineCache::new();
    let (outcome, _) = try_execution_measure_ckpt_in::<f64, _>(
        auto,
        sched,
        horizon,
        &Budget::unlimited(),
        ParallelPolicy::sequential(),
        &cache,
        Ok,
        None,
    )
    .expect("spine expansion succeeds");
    outcome.into_measure().expect("unbudgeted run completes")
}

fn entries_of(m: &ExecutionMeasure<f64>) -> Vec<(Execution, f64)> {
    m.iter().map(|(e, w)| (e.clone(), *w)).collect()
}

/// Order-exact bitwise comparison: same length, pairwise-equal
/// executions, bit-equal weights.
fn assert_bitwise(
    got: &ExecutionMeasure<f64>,
    want: &ExecutionMeasure<f64>,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let got = entries_of(got);
    let want = entries_of(want);
    prop_assert!(
        got.len() == want.len(),
        "entry count diverged ({} vs {}): {}",
        got.len(),
        want.len(),
        ctx
    );
    for (i, ((ge, gw), (we, ww))) in got.iter().zip(&want).enumerate() {
        prop_assert!(ge == we, "execution #{} diverged: {}", i, ctx);
        prop_assert!(
            gw.to_bits() == ww.to_bits(),
            "weight #{} diverged: {}",
            i,
            ctx
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flat engine is bit-identical to the sequential spine engine
    /// for every lane count × steal seed × split unit — regardless of
    /// how grains were chunked, stolen or split (cutover 0 forces
    /// pooled dispatch at every depth; split unit 1–4 forces splits on
    /// tiny spans).
    #[test]
    fn flat_matches_spine_bitwise_across_lanes(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..6,
        horizon in 0usize..7,
        steal_seed in any::<u64>(),
        split_unit in 1usize..5,
    ) {
        let auto = random_automaton("ff-fs", &format!("ffs{seed}"), n, seed);
        let sched = scheduler_family(kind, &auto);
        let oracle = spine(&*auto, &*sched, horizon);
        for threads in lane_counts() {
            let cache = EngineCache::new();
            let policy = ParallelPolicy::new(threads, 0)
                .with_steal_seed(steal_seed)
                .with_split_unit(split_unit);
            let (outcome, stats) = try_execution_measure_flat(
                &*auto, &*sched, horizon, &Budget::unlimited(), policy, &cache,
            ).expect("unbudgeted flat expansion succeeds");
            let flat = outcome.into_measure().expect("completes");
            assert_bitwise(&flat, &oracle, &format!(
                "kind={kind} h={horizon} lanes={threads} seed={steal_seed} unit={split_unit}",
            ))?;
            prop_assert_eq!(stats.threads, threads.max(1));
        }
    }

    /// A batch of K projections over one shared frontier answers every
    /// member bit-identically to the K independent expansions it
    /// replaces — duplicate horizons included (proptest draws the
    /// horizons independently, so collisions occur), sequential and
    /// pooled alike.
    #[test]
    fn batch_matches_k_independent_expansions(
        seed in 0u64..500,
        n in 3i64..7,
        kind in 0u8..6,
        horizons in proptest::collection::vec(0usize..7, 1..5),
        steal_seed in any::<u64>(),
        split_unit in 1usize..5,
    ) {
        let auto = random_automaton("ff-bk", &format!("ffb{seed}"), n, seed);
        let sched = scheduler_family(kind, &auto);
        let members: Vec<BatchMember> =
            horizons.iter().map(|&h| BatchMember::new(h)).collect();
        for threads in lane_counts() {
            let cache = EngineCache::new();
            let policy = ParallelPolicy::new(threads, 0)
                .with_steal_seed(steal_seed)
                .with_split_unit(split_unit);
            let out = try_batch_execution_measures(
                &*auto, &*sched, &members, &Budget::unlimited(), policy, &cache,
            ).expect("unbudgeted batch succeeds");
            prop_assert!(out.checkpoint.is_none());
            prop_assert_eq!(out.projections.len(), horizons.len());
            for (h, p) in horizons.iter().zip(&out.projections) {
                let BatchProjection::Complete(m) = p else {
                    return Err(TestCaseError::fail(format!(
                        "unbudgeted member h={h} did not complete"
                    )));
                };
                let oracle = spine(&*auto, &*sched, *h);
                assert_bitwise(m, &oracle, &format!(
                    "kind={kind} h={h} lanes={threads} seed={steal_seed} unit={split_unit}",
                ))?;
            }
        }
    }
}
