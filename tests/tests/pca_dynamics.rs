//! Cross-crate PCA dynamics: configuration algebra, intrinsic
//! transitions, PCA composition/hiding closure, and the structured-PCA
//! equation of Lemma C.1 on a concrete dynamic system.

use dpioa_config::{
    audit_pca, compose_pca, hide_pca, intrinsic_transition, preserving_transition, Autid,
    ConfigAutomaton, Configuration, Pca, Registry,
};
use dpioa_core::explore::ExploreLimits;
use dpioa_core::{Action, ActionSet, Automaton, ExplicitAutomaton, Signature, Value};
use dpioa_prob::Disc;
use dpioa_secure::StructuredAutomaton;
use std::collections::BTreeSet;
use std::sync::Arc;

fn act(s: &str) -> Action {
    Action::named(s)
}

/// Worker that beats twice then dies.
fn worker(tag: &str) -> Arc<dyn Automaton> {
    let beat = act(&format!("pd-beat-{tag}"));
    ExplicitAutomaton::builder(format!("pd-w-{tag}"), Value::int(0))
        .state(0, Signature::new([], [beat], []))
        .state(1, Signature::new([], [beat], []))
        .state(2, Signature::empty())
        .step(0, beat, 1)
        .step(1, beat, 2)
        .build()
        .shared()
}

/// Spawner that creates the worker on `spawn`; it keeps a dormant input
/// afterwards so its signature never becomes empty (an empty signature
/// would mean self-destruction, Def. 2.12).
fn spawner(tag: &str) -> Arc<dyn Automaton> {
    let spawn = act(&format!("pd-spawn-{tag}"));
    let halt = act(&format!("pd-halt-{tag}"));
    ExplicitAutomaton::builder(format!("pd-s-{tag}"), Value::int(0))
        .state(0, Signature::new([], [spawn], []))
        .state(1, Signature::new([halt], [], []))
        .step(0, spawn, 1)
        .step(1, halt, 1)
        .build()
        .shared()
}

fn system(tag: &str) -> (Arc<dyn Pca>, Autid, Autid) {
    let s = Autid::named(format!("pd-spawner-{tag}"));
    let w = Autid::named(format!("pd-worker-{tag}"));
    let reg = Registry::builder()
        .register(s, spawner(tag))
        .register(w, worker(tag))
        .build();
    let spawn = act(&format!("pd-spawn-{tag}"));
    let pca = ConfigAutomaton::builder(format!("pd-sys-{tag}"), reg)
        .member(s)
        .created(move |_, a| {
            if a == spawn {
                [w].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        })
        .build()
        .shared();
    (pca, s, w)
}

fn walk(pca: &Arc<dyn Pca>, actions: &[Action]) -> Value {
    let mut q = pca.start_state();
    for &a in actions {
        q = pca
            .transition(&q, a)
            .unwrap_or_else(|| panic!("{a} not enabled at {q}"))
            .support()
            .next()
            .unwrap()
            .clone();
    }
    q
}

#[test]
fn full_lifecycle_and_audit() {
    let (pca, s, w) = system("life");
    let spawn = act("pd-spawn-life");
    let beat = act("pd-beat-life");
    let q = walk(&pca, &[spawn, beat, beat]);
    let c = pca.config(&q);
    assert!(!c.contains(w), "worker must be destroyed after two beats");
    assert!(c.contains(s));
    audit_pca(&*pca, ExploreLimits::default()).assert_valid();
}

#[test]
fn preserving_vs_intrinsic_transitions() {
    let (pca, s, w) = system("pv");
    let spawn = act("pd-spawn-pv");
    let registry = pca.registry();
    let c0 = Configuration::new([(s, Value::int(0))]);
    // Preserving: no creation even though the policy says so.
    let p = preserving_transition(registry, &c0, spawn).unwrap();
    for (c, _) in p.iter() {
        assert!(!c.contains(w));
    }
    // Intrinsic with φ = {w}: the worker appears at its start state.
    let phi: BTreeSet<Autid> = [w].into_iter().collect();
    let i = intrinsic_transition(registry, &c0, spawn, &phi).unwrap();
    for (c, _) in i.iter() {
        assert_eq!(c.state_of(w), Some(&Value::int(0)));
    }
}

#[test]
fn pca_composition_closure_via_audit() {
    let (x1, _, _) = system("cmpA");
    let (x2, _, _) = system("cmpB");
    let sys = compose_pca(vec![x1, x2]);
    audit_pca(&*sys, ExploreLimits::default()).assert_valid();
}

#[test]
fn pca_hiding_closure_via_audit() {
    let (x, _, _) = system("hid");
    let h = hide_pca(x, [act("pd-beat-hid")]);
    audit_pca(&*h, ExploreLimits::default()).assert_valid();
}

/// Lemma C.1 / Def. 4.22: for a structured PCA, `EAct_X(q) =
/// EAct(config(X)(q)) ∖ hidden-actions(X)(q)` — and the equation is
/// preserved under PCA composition.
#[test]
fn structured_pca_eact_equation() {
    let (x1, _, _) = system("eqA");
    let (x2, _, _) = system("eqB");
    let beats = [act("pd-beat-eqA"), act("pd-beat-eqB")];
    // Hide the first beat: it must leave EAct.
    let h1 = hide_pca(x1, [beats[0]]);
    let sys = compose_pca(vec![h1, x2]);
    // EAct mapping: every external action of the configuration minus the
    // hidden ones (the Def. 4.22 equation, instantiated per state).
    let sys_for_eact = sys.clone();
    let structured = StructuredAutomaton::new(
        sys.clone() as Arc<dyn Automaton>,
        move |q: &Value| -> ActionSet {
            let config = sys_for_eact.config(q);
            let hidden = sys_for_eact.hidden_actions(q);
            let mut eact = config.signature(sys_for_eact.registry()).external();
            eact.retain(|a| !hidden.contains(a));
            eact
        },
    );
    // Check the equation on every reachable state.
    let r = dpioa_core::explore::reachable(&*sys, ExploreLimits::default());
    for q in &r.states {
        let lhs = structured.env_actions(q);
        let config = sys.config(q);
        let hidden = sys.hidden_actions(q);
        let mut rhs = config.signature(sys.registry()).external();
        rhs.retain(|a| !hidden.contains(a));
        // env_actions clamps to ext(X)(q): hidden outputs became internal
        // in X, so the clamp realizes exactly the ∖ hidden of C.1.
        assert_eq!(lhs, rhs, "EAct equation fails at {q}");
        assert!(!lhs.contains(&beats[0]), "hidden beat leaked into EAct");
    }
}

#[test]
fn reduction_merges_probability_mass_across_crates() {
    // A child that dies via two distinct doomed states with one witness:
    // after reduction the outcome distribution has a single point.
    let dying = ExplicitAutomaton::builder("pd-dying", Value::int(0))
        .state(0, Signature::new([], [], [act("pd-fade")]))
        .state(1, Signature::empty())
        .state(2, Signature::empty())
        .transition(
            0,
            act("pd-fade"),
            Disc::bernoulli_dyadic(Value::int(1), Value::int(2), 1, 3),
        )
        .build()
        .shared();
    let d = Autid::named("pd-dying-id");
    let keep = Autid::named("pd-keeper-id");
    let keeper = ExplicitAutomaton::builder("pd-keeper", Value::Unit)
        .state(Value::Unit, Signature::new([], [act("pd-keep")], []))
        .step(Value::Unit, act("pd-keep"), Value::Unit)
        .build()
        .shared();
    let reg = Registry::builder()
        .register(d, dying)
        .register(keep, keeper)
        .build();
    let pca = ConfigAutomaton::builder("pd-merge", reg)
        .member(d)
        .member(keep)
        .build();
    let eta = pca.transition(&pca.start_state(), act("pd-fade")).unwrap();
    assert_eq!(eta.support_len(), 1);
}
