//! The persistent engine-state store, end to end: canonical cache
//! snapshots and checkpoint files must cross the process boundary (here
//! modelled as encode → bytes → decode) without losing a bit. The
//! tentpole assertion is three-way: resume-from-disk ==
//! resume-from-memory == uninterrupted run, bit for bit, on the
//! Arc-spine and flat engines alike, at every `DPIOA_POOL_LANES` count.
//! The hostile-file tests pin the typed [`StoreError`] codes and the
//! never-partially-applied guarantee at the integration level.

use dpioa_core::{Action, Automaton, ExplicitAutomaton, Signature, Value};
use dpioa_integration::random_automaton;
use dpioa_prob::Disc;
use dpioa_sched::{
    try_execution_measure_ckpt, try_execution_measure_flat_resume, try_execution_measure_resume,
    try_lumped_observation_dist_cached, try_lumped_observation_dist_ckpt,
    try_lumped_observation_dist_resume, Budget, Checkpoint, EngineCache, ExpansionOutcome,
    FirstEnabled, HaltingMix, LumpedOutcome, Observation, ParallelPolicy, PriorityScheduler,
    RandomScheduler, Scheduler,
};
use dpioa_store::{
    automaton_fingerprint, decode_checkpoint, decode_into_cache, encode_cache, encode_checkpoint,
    load_checkpoint, save_checkpoint, write_file, EngineCacheStoreExt, FileKind, StoreError,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Lane counts to exercise; `DPIOA_POOL_LANES` pins one for CI matrix
/// legs (same convention as the checkpointing suite).
fn pool_lanes() -> Vec<usize> {
    std::env::var("DPIOA_POOL_LANES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|l: usize| vec![l])
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// A scratch store file unique to this process and test.
fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dpioa-persist-it-{}-{tag}.dpst",
        std::process::id()
    ))
}

/// The memoryless scheduler family the lumped round-trip proptest
/// draws from (mirrors the checkpointing suite).
fn memoryless_scheduler(kind: u8, auto: &Arc<dyn Automaton>) -> Arc<dyn Scheduler> {
    match kind % 4 {
        0 => Arc::new(FirstEnabled),
        1 => Arc::new(RandomScheduler),
        2 => Arc::new(HaltingMix::new(FirstEnabled, 3, 2)),
        _ => {
            let mut order: Vec<_> = auto
                .signature(&auto.start_state())
                .all()
                .into_iter()
                .collect();
            order.reverse();
            Arc::new(PriorityScheduler::new(order))
        }
    }
}

/// A fair binary branching automaton of `depth` levels (same shape as
/// the checkpointing suite): expansion caps map deterministically to
/// trip depths, so the budgeted run below always leaves a checkpoint.
fn binary_tree(depth: u32) -> ExplicitAutomaton {
    let split = Action::named("pt-split");
    let internal = 2i64.pow(depth) - 1;
    let total = 2i64.pow(depth + 1) - 1;
    let mut b = ExplicitAutomaton::builder("pt", Value::int(0));
    for q in 0..internal {
        b = b.state(q, Signature::new([], [], [split])).transition(
            q,
            split,
            Disc::bernoulli_dyadic(Value::int(2 * q + 1), Value::int(2 * q + 2), 1, 1),
        );
    }
    for q in internal..total {
        b = b.state(q, Signature::new([], [], []));
    }
    b.build()
}

/// Tentpole acceptance: a budget-tripped cone checkpoint is saved to a
/// framed, checksummed, fingerprint-keyed file; the loaded copy and
/// the in-memory original both resume — on the Arc-spine engine and on
/// the flat engine — to exactly the measure the uninterrupted run
/// computes: same entry count, same order, bit-equal `f64` weights.
#[test]
fn resume_from_disk_equals_memory_equals_uninterrupted_on_both_engines() {
    let auto = binary_tree(7);
    let horizon = 7;
    let fp = automaton_fingerprint(&auto);
    for threads in pool_lanes() {
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let cache = EngineCache::new();
        let (outcome, _) = try_execution_measure_ckpt(
            &auto,
            &FirstEnabled,
            horizon,
            &Budget::unlimited().with_max_expansions(2),
            policy,
            &cache,
        )
        .expect("budget trips are salvageable");
        let ckpt = outcome
            .into_checkpoint()
            .expect("two expansions cannot finish a depth-7 tree");

        // Through the disk and back.
        let path = tmp_path(&format!("resume-{threads}"));
        save_checkpoint(&path, fp, &Checkpoint::Cone(ckpt.clone())).expect("save");
        let from_disk = match load_checkpoint(&path, fp).expect("load") {
            Checkpoint::Cone(c) => c,
            Checkpoint::Lumped(_) => panic!("checkpoint kind must be preserved"),
        };
        std::fs::remove_file(&path).unwrap();

        let (reference, _) = try_execution_measure_ckpt(
            &auto,
            &FirstEnabled,
            horizon,
            &Budget::unlimited(),
            policy,
            &cache,
        )
        .expect("unbudgeted reference run");
        let reference = match reference {
            ExpansionOutcome::Complete(m) => m,
            ExpansionOutcome::Partial(c) => panic!("unbudgeted run tripped: {:?}", c.reason),
        };

        for (source, ck) in [("memory", ckpt), ("disk", from_disk)] {
            let (spine, _) = try_execution_measure_resume(
                ck.clone(),
                &auto,
                &FirstEnabled,
                &Budget::unlimited(),
                policy,
                &cache,
                Ok,
            )
            .expect("spine resume under an unlimited budget succeeds");
            let (flat, _) = try_execution_measure_flat_resume(
                ck,
                &auto,
                &FirstEnabled,
                &Budget::unlimited(),
                policy,
                &cache,
                Ok,
            )
            .expect("flat resume under an unlimited budget succeeds");
            for (engine, out) in [("spine", spine), ("flat", flat)] {
                let m = match out {
                    ExpansionOutcome::Complete(m) => m,
                    ExpansionOutcome::Partial(c) => {
                        panic!("unlimited {source}/{engine} resume tripped: {:?}", c.reason)
                    }
                };
                assert_eq!(
                    m.len(),
                    reference.len(),
                    "{source}/{engine} lanes={threads}"
                );
                for (i, ((e1, w1), (e2, w2))) in m.iter().zip(reference.iter()).enumerate() {
                    assert_eq!(e1, e2, "{source}/{engine} entry #{i} lanes={threads}");
                    assert_eq!(
                        w1.to_bits(),
                        w2.to_bits(),
                        "{source}/{engine} weight #{i} lanes={threads}"
                    );
                }
            }
        }
    }
}

/// Hostile files at the integration boundary: every rejection is a
/// typed, stable error code, and a failed warm start never leaves even
/// one row in the target cache.
#[test]
fn hostile_store_files_fail_typed_and_never_partially_apply() {
    let auto = random_automaton("store-rb", "srb", 5, 7);
    let cache = EngineCache::new();
    try_lumped_observation_dist_cached(
        &*auto,
        &FirstEnabled,
        4,
        &Observation::final_state(),
        &Budget::unlimited(),
        &cache,
    )
    .expect("memoryless pass warms the cache");
    let fp = automaton_fingerprint(&*auto);
    let path = tmp_path("hostile");
    let snap = cache.snapshot_to(&path, fp).expect("snapshot");
    assert!(snap.transitions > 0, "warmed cache must snapshot rows");
    let good = std::fs::read(&path).unwrap();

    let fresh = EngineCache::new();
    let untouched = |fresh: &EngineCache| {
        assert_eq!(fresh.transition_entries(), 0, "cache must stay untouched");
    };

    // Stale fingerprint: cold-start class, not a fault.
    let err = fresh.warm_start_from(&path, fp ^ 1).unwrap_err();
    assert_eq!(err.code(), "store-fingerprint-mismatch");
    assert!(err.is_cold_start());
    untouched(&fresh);

    // Truncation (interrupted write).
    std::fs::write(&path, &good[..good.len() - 1]).unwrap();
    let err = fresh.warm_start_from(&path, fp).unwrap_err();
    assert_eq!(err.code(), "store-truncated");
    assert!(!err.is_cold_start());
    untouched(&fresh);

    // A single flipped bit in the payload.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    let err = fresh.warm_start_from(&path, fp).unwrap_err();
    assert_eq!(err.code(), "store-checksum-mismatch");
    untouched(&fresh);

    // Not a store file at all.
    std::fs::write(&path, b"definitely not a snapshot").unwrap();
    let err = fresh.warm_start_from(&path, fp).unwrap_err();
    assert_eq!(err.code(), "store-bad-magic");
    untouched(&fresh);

    // A valid frame of the wrong kind (a checkpoint where a snapshot
    // was expected).
    write_file(&path, FileKind::Checkpoint, fp, b"wrong kind").unwrap();
    let err = fresh.warm_start_from(&path, fp).unwrap_err();
    assert_eq!(err.code(), "store-wrong-kind");
    untouched(&fresh);

    // No file: the ordinary cold start.
    std::fs::remove_file(&path).unwrap();
    let err = fresh.warm_start_from(&path, fp).unwrap_err();
    assert!(matches!(err, StoreError::NotFound { .. }));
    assert!(err.is_cold_start());
    untouched(&fresh);

    // And the intact bytes still load completely after all that.
    std::fs::write(&path, &good).unwrap();
    let stats = fresh.warm_start_from(&path, fp).expect("intact file loads");
    assert_eq!(stats.transitions, snap.transitions);
    assert_eq!(stats.choices, snap.choices);
    assert_eq!(stats.rejected, 0);
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache snapshots are canonical and bit-exact: decoding a payload
    /// into a fresh cache and re-encoding reproduces the payload byte
    /// for byte — which pins every transition row (canonical state
    /// bytes, action names, verbatim `Disc` bits) and every scheduler
    /// choice across the process boundary.
    #[test]
    fn cache_snapshots_round_trip_canonically(
        seed in 0u64..300,
        n in 3i64..7,
        kind in 0u8..4,
        horizon in 1usize..6,
    ) {
        let auto = random_automaton("store-sn", &format!("ssn{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let cache = EngineCache::new();
        try_lumped_observation_dist_cached(
            &*auto, &sched, horizon, &Observation::final_state(), &Budget::unlimited(), &cache,
        ).expect("memoryless pass warms the cache");

        let payload = encode_cache(&cache);
        let fresh = EngineCache::new();
        let stats = decode_into_cache(&payload, &fresh).expect("round trip");
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(stats.skipped, 0);
        prop_assert_eq!(encode_cache(&fresh), payload);
    }

    /// Cone checkpoints survive the codec bit-exactly: re-encoding the
    /// decoded checkpoint reproduces the bytes, and the decoded copy
    /// resumes to the same bits as the unbudgeted run.
    #[test]
    fn cone_checkpoints_survive_the_codec_bit_exactly(
        seed in 0u64..300,
        n in 3i64..7,
        horizon in 2usize..7,
        cap in 0usize..16,
        threads in 1usize..5,
    ) {
        let auto = random_automaton("store-cc", &format!("scc{seed}"), n, seed);
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let cache = EngineCache::new();
        let (outcome, _) = try_execution_measure_ckpt(
            &*auto, &FirstEnabled, horizon,
            &Budget::unlimited().with_max_expansions(cap), policy, &cache,
        ).expect("budget trips are salvageable");
        let ExpansionOutcome::Partial(ckpt) = outcome else { return Ok(()) };

        let bytes = encode_checkpoint(&Checkpoint::Cone(ckpt));
        let decoded = decode_checkpoint(&bytes).expect("codec round trip");
        prop_assert_eq!(encode_checkpoint(&decoded), bytes);

        let Checkpoint::Cone(ck) = decoded else {
            return Err(proptest::test_runner::TestCaseError::fail("kind flipped"));
        };
        let (resumed, _) = try_execution_measure_resume(
            ck, &*auto, &FirstEnabled, &Budget::unlimited(), policy, &cache, Ok,
        ).expect("unlimited resume succeeds");
        let ExpansionOutcome::Complete(resumed) = resumed else {
            return Err(proptest::test_runner::TestCaseError::fail("unlimited resume tripped"));
        };
        let (reference, _) = try_execution_measure_ckpt(
            &*auto, &FirstEnabled, horizon, &Budget::unlimited(), policy, &cache,
        ).expect("unbudgeted reference");
        let ExpansionOutcome::Complete(reference) = reference else {
            return Err(proptest::test_runner::TestCaseError::fail("unbudgeted run tripped"));
        };
        prop_assert_eq!(resumed.len(), reference.len());
        for ((e1, w1), (e2, w2)) in resumed.iter().zip(reference.iter()) {
            prop_assert_eq!(e1, e2);
            prop_assert_eq!(w1.to_bits(), w2.to_bits());
        }
    }

    /// Lumped (class-space) checkpoints survive the codec bit-exactly
    /// and resume from the decoded copy to the distribution the
    /// unbudgeted cached pass computes.
    #[test]
    fn lumped_checkpoints_survive_the_codec_and_resume_identically(
        seed in 0u64..300,
        n in 3i64..7,
        kind in 0u8..4,
        horizon in 1usize..6,
        cap in 0usize..12,
    ) {
        let auto = random_automaton("store-lc", &format!("slc{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let obs = Observation::final_state();
        let cache = EngineCache::new();
        let outcome = try_lumped_observation_dist_ckpt(
            &*auto, &sched, horizon, &obs,
            &Budget::unlimited().with_max_expansions(cap), &cache,
        ).expect("budget trips are salvageable");
        let LumpedOutcome::Partial(ckpt) = outcome else { return Ok(()) };

        let bytes = encode_checkpoint(&Checkpoint::Lumped(ckpt));
        let decoded = decode_checkpoint(&bytes).expect("codec round trip");
        prop_assert_eq!(encode_checkpoint(&decoded), bytes);

        let Checkpoint::Lumped(ck) = decoded else {
            return Err(proptest::test_runner::TestCaseError::fail("kind flipped"));
        };
        let resumed = match try_lumped_observation_dist_resume(
            ck, &*auto, &sched, &obs, &Budget::unlimited(), &cache,
        ).expect("unlimited resume succeeds") {
            LumpedOutcome::Complete(d) => d,
            LumpedOutcome::Partial(c) =>
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "unlimited lumped resume tripped: {:?}", c.reason
                ))),
        };
        let reference = try_lumped_observation_dist_cached(
            &*auto, &sched, horizon, &obs, &Budget::unlimited(), &cache,
        ).expect("unbudgeted cached reference");
        prop_assert_eq!(resumed.iter().count(), reference.iter().count());
        for (v, p) in resumed.iter() {
            let q = reference.iter().find(|(v2, _)| *v2 == v).map(|(_, q)| q);
            prop_assert_eq!(q.map(|q| q.to_bits()), Some(p.to_bits()));
        }
    }
}
