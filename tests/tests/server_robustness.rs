//! Cross-crate robustness tests for the query server: a real server
//! on a real socket, driven through the wire protocol only — no
//! internal shortcuts except the metrics handle the harness uses for
//! its assertions. Covers the acceptance criteria of the
//! emulation-as-a-service milestone: correct answers under
//! concurrency, stable error codes for malformed input, explicit
//! shedding under overload, client-disconnect cancellation within a
//! grain, and a graceful drain on shutdown.

use dpioa_server::client::{self, Client};
use dpioa_server::{serve, Json, ServerConfig};
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn quick_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        watcher_poll: Duration::from_millis(2),
        ..ServerConfig::default()
    }
}

/// A query whose exact tier trips fast and whose salvage pass samples
/// long enough for the watcher to revoke it mid-flight.
const SLOW_QUERY: &str = r#"{"automaton":"mixer-4x3","scheduler":"memoryful-alternate","horizon":9,
    "budget":{"max_expansions":8,"deadline_ms":10000},"mc_samples":200000}"#;

#[test]
fn concurrent_clients_get_consistent_answers() {
    let handle = serve(quick_config()).expect("bind");
    let addr = handle.addr().to_string();

    let baseline = Client::new(addr.clone())
        .query(r#"{"automaton":"walk-8","horizon":10}"#)
        .unwrap();
    assert_eq!(baseline.status, 200, "body: {}", baseline.body);
    let want = baseline.json().unwrap().get("dist").cloned().unwrap();

    // Eight clients hammer the same query while four more interleave a
    // different workload; every answer to the first query must be
    // byte-identical to the baseline (shared cache, fixed seed).
    std::thread::scope(|s| {
        for _ in 0..8 {
            let addr = addr.clone();
            let want = &want;
            s.spawn(move || {
                let resp = Client::new(addr)
                    .query(r#"{"automaton":"walk-8","horizon":10}"#)
                    .unwrap();
                assert_eq!(resp.status, 200, "body: {}", resp.body);
                assert_eq!(resp.json().unwrap().get("dist"), Some(want));
            });
        }
        for _ in 0..4 {
            let addr = addr.clone();
            s.spawn(move || {
                let resp = Client::new(addr)
                    .query(
                        r#"{"automaton":"walk-8","scheduler":"memoryful-alternate","horizon":8}"#,
                    )
                    .unwrap();
                assert_eq!(resp.status, 200, "body: {}", resp.body);
                assert_eq!(
                    resp.json()
                        .unwrap()
                        .get("provenance")
                        .and_then(|p| p.get("engine"))
                        .and_then(Json::as_str),
                    Some("exact"),
                    "memoryful queries must keep answering via the exact tier \
                     while memoryless neighbours warm the shared cache"
                );
            });
        }
    });

    handle.shutdown_and_wait();
}

#[test]
fn malformed_input_gets_stable_codes_not_crashes() {
    let handle = serve(quick_config()).expect("bind");
    let client = Client::new(handle.addr().to_string());

    for (body, code) in [
        ("{not json", "malformed-request"),
        (r#"{"automaton":"nope","horizon":1}"#, "unknown-automaton"),
        (r#"{"automaton":"coin","horizon":99}"#, "horizon-too-large"),
    ] {
        let resp = client.query(body).unwrap();
        assert_eq!(resp.status, 400, "{body}");
        assert_eq!(
            resp.json()
                .unwrap()
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(code),
            "{body}"
        );
    }

    // Raw protocol garbage and a stalled half-request are both
    // answered (or timed out) without taking the server down.
    let addr = handle.addr().to_string();
    assert_eq!(
        client::send_garbage(&addr, b"EHLO not-http\r\n\r\n").unwrap(),
        Some(400)
    );
    let _ = client::stall(
        &addr,
        b"POST /v1/query HTTP/1.1\r\n",
        Duration::from_millis(50),
    );

    // The server still answers cleanly afterwards.
    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);

    handle.shutdown_and_wait();
}

#[test]
fn overload_sheds_explicitly_and_recovers() {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 1,
        watcher_poll: Duration::from_millis(2),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();
    let metrics = handle.metrics();
    let client = Client::new(addr.clone());

    // Occupy the only worker, then fill the one queue slot.
    let busy = TcpStream::connect(&addr).unwrap();
    {
        let mut busy = &busy;
        let head = format!(
            "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{SLOW_QUERY}",
            SLOW_QUERY.len()
        );
        busy.write_all(head.as_bytes()).unwrap();
        busy.flush().unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while metrics.in_flight.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "busy query never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    let _filler = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 503, "overload must shed, not queue forever");
    assert!(resp.header("retry-after").is_some());
    assert_eq!(
        resp.json()
            .unwrap()
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("overloaded")
    );

    // Dropping the busy client frees the worker (watcher revokes the
    // in-flight query) and the server recovers.
    drop(busy);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(resp) = client.get("/healthz") {
            if resp.status == 200 {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "server never recovered from overload"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    handle.shutdown_and_wait();
}

#[test]
fn client_disconnect_cancels_the_expansion_within_a_grain() {
    let handle = serve(quick_config()).expect("bind");
    let metrics = handle.metrics();
    let addr = handle.addr().to_string();

    client::fire_and_disconnect(&addr, SLOW_QUERY).unwrap();

    let deadline = Instant::now() + Duration::from_secs(20);
    while metrics.cancelled.load(Ordering::Relaxed) == 0 {
        assert!(
            Instant::now() < deadline,
            "disconnect never cancelled the query"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let unwind_ns = metrics.cancel_latency_ns_max.load(Ordering::Relaxed);
    assert!(
        unwind_ns < 2_000_000_000,
        "cancel→unwind took {unwind_ns}ns — more than one grain"
    );

    handle.shutdown_and_wait();
}

#[test]
fn mid_batch_disconnect_cancels_only_its_own_projection() {
    // A long coalesce window so the second query reliably joins the
    // first one's batch instead of leading its own.
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        watcher_poll: Duration::from_millis(2),
        coalesce_window: Duration::from_millis(400),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr().to_string();
    let metrics = handle.metrics();

    // Baseline solo answer for the survivor's query. walk-8 is dyadic,
    // so the lumped solo tier and the flat batch tier produce the same
    // f64 bits and the dists compare byte-identically.
    let baseline = Client::new(addr.clone())
        .query(r#"{"automaton":"walk-8","horizon":10}"#)
        .unwrap();
    assert_eq!(baseline.status, 200, "body: {}", baseline.body);
    let want = baseline.json().unwrap().get("dist").cloned().unwrap();

    // The survivor leads a fresh batch, collecting for the window…
    let survivor = std::thread::spawn({
        let addr = addr.clone();
        move || {
            Client::new(addr)
                .query(r#"{"automaton":"walk-8","horizon":10}"#)
                .unwrap()
        }
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while metrics.in_flight.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "leader never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    // …and a compatible query (same automaton/scheduler/observation,
    // deeper horizon) joins the batch, then its client vanishes.
    client::fire_and_disconnect(&addr, r#"{"automaton":"walk-8","horizon":12}"#).unwrap();

    // The survivor still gets its exact answer — the deserter's
    // cancellation dropped only the deserter's projection.
    let resp = survivor.join().unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(
        resp.json().unwrap().get("dist"),
        Some(&want),
        "surviving projection must be bit-identical to the solo answer"
    );

    // The deserter was cancelled, and the batch counters saw exactly
    // one two-member batch with one coalesce hit.
    let deadline = Instant::now() + Duration::from_secs(10);
    while metrics.cancelled.load(Ordering::Relaxed) == 0 {
        assert!(
            Instant::now() < deadline,
            "mid-batch disconnect never recorded a cancellation"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(metrics.batches.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.batched_queries.load(Ordering::Relaxed), 2);
    assert_eq!(metrics.coalesce_hits.load(Ordering::Relaxed), 1);
    assert_eq!(metrics.batch_fanout_max.load(Ordering::Relaxed), 2);

    handle.shutdown_and_wait();
}

#[test]
fn graceful_shutdown_drains_and_joins() {
    let handle = serve(quick_config()).expect("bind");
    let client = Client::new(handle.addr().to_string());
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    let resp = client.request("POST", "/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    // All threads exit; wait() returning is the assertion.
    handle.wait();
}
