//! The stratum cache, end to end: successful expansions proactively
//! deposit conserving frontier snapshots ("strata"), and a later query
//! that resumes from one must be **bit-identical** to a cold run — on
//! the Arc-spine, flat, and lumped engines, at every `DPIOA_POOL_LANES`
//! count, and across the process boundary (strata saved to a framed
//! `FileKind::Strata` file and re-imported into a fresh cache).

use dpioa_core::{with_pool_seeded, Action, Automaton, ExplicitAutomaton, Signature, Value};
use dpioa_integration::random_automaton;
use dpioa_prob::Disc;
use dpioa_sched::{
    try_execution_measure_flat_resume, try_execution_measure_flat_strata_with,
    try_execution_measure_resume, try_execution_measure_strata_with,
    try_lumped_observation_dist_cached, try_lumped_observation_dist_strata, Budget, Checkpoint,
    ConeCheckpoint, EngineCache, ExpansionOutcome, FirstEnabled, HaltingMix, LumpedCheckpoint,
    LumpedOutcome, Observation, ParallelPolicy, PriorityScheduler, RandomScheduler, Scheduler,
    StratumSink,
};
use dpioa_store::{decode_strata, encode_strata, load_strata, save_strata, StratumRow};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Lane counts to exercise; `DPIOA_POOL_LANES` pins one for CI matrix
/// legs (same convention as the checkpointing and persistence suites).
fn pool_lanes() -> Vec<usize> {
    std::env::var("DPIOA_POOL_LANES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|l: usize| vec![l])
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dpioa-strata-it-{}-{tag}.dpst", std::process::id()))
}

/// The memoryless scheduler family the lumped proptest draws from.
fn memoryless_scheduler(kind: u8, auto: &Arc<dyn Automaton>) -> Arc<dyn Scheduler> {
    match kind % 4 {
        0 => Arc::new(FirstEnabled),
        1 => Arc::new(RandomScheduler),
        2 => Arc::new(HaltingMix::new(FirstEnabled, 3, 2)),
        _ => {
            let mut order: Vec<_> = auto
                .signature(&auto.start_state())
                .all()
                .into_iter()
                .collect();
            order.reverse();
            Arc::new(PriorityScheduler::new(order))
        }
    }
}

/// A fair binary branching automaton of `depth` levels (the
/// checkpointing suite's shape): every depth is live, so a stride-`s`
/// run deposits strata at each multiple of `s` below the horizon.
fn binary_tree(depth: u32) -> ExplicitAutomaton {
    let split = Action::named("st-split");
    let internal = 2i64.pow(depth) - 1;
    let total = 2i64.pow(depth + 1) - 1;
    let mut b = ExplicitAutomaton::builder("st", Value::int(0));
    for q in 0..internal {
        b = b.state(q, Signature::new([], [], [split])).transition(
            q,
            split,
            Disc::bernoulli_dyadic(Value::int(2 * q + 1), Value::int(2 * q + 2), 1, 1),
        );
    }
    for q in internal..total {
        b = b.state(q, Signature::new([], [], []));
    }
    b.build()
}

/// Assert two execution measures are equal entry-for-entry with
/// bit-equal weights.
fn assert_measure_bits(
    got: &dpioa_sched::ExecutionMeasure<f64>,
    want: &dpioa_sched::ExecutionMeasure<f64>,
    what: &str,
) {
    assert_eq!(got.len(), want.len(), "{what}: entry count");
    for (i, ((e1, w1), (e2, w2))) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(e1, e2, "{what}: entry #{i}");
        assert_eq!(w1.to_bits(), w2.to_bits(), "{what}: weight #{i}");
    }
}

/// Run the spine strata engine cold, collecting every deposited
/// stratum, and return `(completed measure, strata)`.
fn spine_with_strata(
    auto: &dyn Automaton,
    horizon: usize,
    stride: usize,
    policy: ParallelPolicy,
    cache: &EngineCache,
) -> (
    dpioa_sched::ExecutionMeasure<f64>,
    Vec<(usize, ConeCheckpoint<f64>)>,
) {
    let mut strata: Vec<(usize, ConeCheckpoint<f64>)> = Vec::new();
    let mut sink = |d: usize, c: ConeCheckpoint<f64>| strata.push((d, c));
    let (outcome, _) = with_pool_seeded(policy.threads, policy.steal_seed, |pool| {
        try_execution_measure_strata_with(
            auto,
            &FirstEnabled,
            horizon,
            &Budget::unlimited(),
            policy,
            cache,
            pool,
            Ok,
            None,
            Some(StratumSink {
                stride,
                min_depth: 0,
                sink: &mut sink,
            }),
        )
    })
    .expect("unbudgeted strata run succeeds");
    let ExpansionOutcome::Complete(m) = outcome else {
        panic!("unbudgeted run tripped");
    };
    (m, strata)
}

/// Tentpole acceptance: strata deposited by a successful spine or flat
/// expansion resume — on both engines, at every lane count — to the
/// exact measure the cold run computed, including the horizon stratum
/// (the completed answer's terminal split).
#[test]
fn strata_resume_bit_identical_to_cold_on_spine_and_flat() {
    // Horizon 10 keeps stride depths 2 and 4 above the pooled tail
    // window (the last `TAIL_DEPTHS` levels are expanded in-grain and
    // never iterated, so no strata are offered there).
    let auto = binary_tree(10);
    let horizon = 10;
    for threads in pool_lanes() {
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let cache = EngineCache::new();
        let (reference, spine_strata) = spine_with_strata(&auto, horizon, 2, policy, &cache);
        let depths: Vec<usize> = spine_strata.iter().map(|(d, _)| *d).collect();
        assert!(
            depths.windows(2).all(|w| w[0] < w[1]),
            "deposits come shallow-to-deep: {depths:?}"
        );
        assert!(
            depths.contains(&2) && depths.contains(&4),
            "stride 2 deposits every even depth above the tail window: {depths:?}"
        );
        assert_eq!(
            depths.last(),
            Some(&horizon),
            "the horizon stratum is always deposited last: {depths:?}"
        );

        // The flat engine deposits the stride strata too (its collapsed
        // tail has no horizon iteration, so no horizon stratum).
        let mut flat_strata: Vec<(usize, ConeCheckpoint<f64>)> = Vec::new();
        let mut sink = |d: usize, c: ConeCheckpoint<f64>| flat_strata.push((d, c));
        let (flat_out, _) = with_pool_seeded(policy.threads, policy.steal_seed, |pool| {
            try_execution_measure_flat_strata_with(
                &auto,
                &FirstEnabled,
                horizon,
                &Budget::unlimited(),
                policy,
                &cache,
                pool,
                Ok,
                None,
                Some(StratumSink {
                    stride: 2,
                    min_depth: 0,
                    sink: &mut sink,
                }),
            )
        })
        .expect("unbudgeted flat strata run succeeds");
        let ExpansionOutcome::Complete(flat_m) = flat_out else {
            panic!("unbudgeted flat run tripped");
        };
        assert_measure_bits(&flat_m, &reference, &format!("flat cold lanes={threads}"));
        let flat_depths: Vec<usize> = flat_strata.iter().map(|(d, _)| *d).collect();
        assert!(
            flat_depths.contains(&2) && flat_depths.contains(&4),
            "the flat engine deposits stride strata above its tail window: {flat_depths:?}"
        );
        assert!(
            flat_depths.iter().all(|d| d % 2 == 0 && *d < horizon),
            "flat strata are stride-aligned and strictly below the horizon: {flat_depths:?}"
        );

        for (source, strata) in [("spine", &spine_strata), ("flat", &flat_strata)] {
            for (depth, ck) in strata {
                // Conservation: every stratum partitions the unit mass.
                assert_eq!(
                    (ck.resolved_mass() + ck.frontier_mass()).to_bits(),
                    1.0f64.to_bits(),
                    "{source} stratum at depth {depth} lanes={threads}"
                );
                // A stored stratum's `horizon` is its deposit depth;
                // the caller rewrites it to the query's horizon before
                // resuming (as the robust cascade does).
                let mut ck = ck.clone();
                ck.horizon = horizon;
                let (spine_res, _) = try_execution_measure_resume(
                    ck.clone(),
                    &auto,
                    &FirstEnabled,
                    &Budget::unlimited(),
                    policy,
                    &cache,
                    Ok,
                )
                .expect("spine resume succeeds");
                let (flat_res, _) = try_execution_measure_flat_resume(
                    ck,
                    &auto,
                    &FirstEnabled,
                    &Budget::unlimited(),
                    policy,
                    &cache,
                    Ok,
                )
                .expect("flat resume succeeds");
                for (engine, out) in [("spine", spine_res), ("flat", flat_res)] {
                    let ExpansionOutcome::Complete(m) = out else {
                        panic!("unlimited {source}->{engine} resume tripped");
                    };
                    assert_measure_bits(
                        &m,
                        &reference,
                        &format!("{source} d={depth} -> {engine} lanes={threads}"),
                    );
                }
            }
        }
    }
}

/// Disk-loaded strata in a fresh process: export the deposited strata
/// through a framed `strata.dpst` file, import into a **fresh** cache
/// (the process-boundary model of the persistence suite), look the
/// deepest one back up through the cache's own range query, and resume
/// to the cold answer's bits.
#[test]
fn disk_loaded_strata_resume_in_a_fresh_cache() {
    let auto = binary_tree(10);
    let horizon = 10;
    let fingerprint = 0x0057_A7A0_u64;
    for threads in pool_lanes() {
        let policy = ParallelPolicy::new(threads, 0).with_split_unit(2);
        let warm = EngineCache::new();
        let (reference, strata) = spine_with_strata(&auto, horizon, 2, policy, &warm);
        let scope_name = FirstEnabled.describe();

        let rows: Vec<StratumRow> = strata
            .iter()
            .map(|(d, c)| {
                (
                    fingerprint,
                    scope_name.to_string(),
                    String::new(),
                    *d,
                    Checkpoint::Cone(c.clone()),
                )
            })
            .collect();
        let path = tmp_path(&format!("fresh-{threads}"));
        save_strata(&path, 7, &rows).expect("save strata");
        let loaded = load_strata(&path, 7).expect("load strata");
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.len(), rows.len());

        // "Fresh process": a brand-new cache learns the rows through
        // the admission-gated import, then serves the deepest
        // compatible stratum from its own range lookup.
        let fresh = EngineCache::new();
        for (fp, scope, obs, depth, ckpt) in loaded {
            assert!(fresh.import_stratum(fp, &scope, &obs, depth, ckpt));
        }
        let scope = fresh.scope_by_name(scope_name);
        let (depth, hit) = fresh
            .lookup_stratum(fingerprint, scope, "", horizon)
            .expect("deepest stratum resolves");
        assert_eq!(depth, horizon, "the horizon stratum is the deepest");
        let Checkpoint::Cone(mut ck) = hit.as_ref().clone() else {
            panic!("cone stratum kind must survive the disk");
        };
        ck.horizon = horizon;
        let (resumed, _) = try_execution_measure_resume(
            ck,
            &auto,
            &FirstEnabled,
            &Budget::unlimited(),
            policy,
            &fresh,
            Ok,
        )
        .expect("resume from disk-loaded stratum succeeds");
        let ExpansionOutcome::Complete(m) = resumed else {
            panic!("unlimited resume tripped");
        };
        assert_measure_bits(&m, &reference, &format!("disk-loaded lanes={threads}"));

        // A shallower query finds the deepest stride stratum at or
        // below its own horizon, not the horizon stratum.
        let want = strata
            .iter()
            .map(|(d, _)| *d)
            .filter(|d| *d < horizon)
            .max()
            .expect("stride strata exist above the tail window");
        let (depth, _) = fresh
            .lookup_stratum(fingerprint, scope, "", horizon - 1)
            .expect("range lookup");
        assert_eq!(depth, want);
    }
}

fn dist_bits(d: &Disc<Value>) -> Vec<(Value, u64)> {
    d.iter().map(|(v, &w)| (v.clone(), w.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lumped strata on random automata: every stratum a cold lumped
    /// run deposits — stride and horizon alike — survives the strata
    /// codec and resumes to the cold distribution bit-for-bit.
    #[test]
    fn lumped_strata_resume_bit_identically_on_random_automata(
        seed in 0u64..200,
        n in 3i64..7,
        kind in 0u8..4,
        horizon in 2usize..6,
        stride in 1usize..3,
    ) {
        let auto = random_automaton("strata-lp", &format!("slp{seed}"), n, seed);
        let sched = memoryless_scheduler(kind, &auto);
        let obs = Observation::final_state();
        let cache = EngineCache::new();

        let mut strata: Vec<(usize, LumpedCheckpoint)> = Vec::new();
        let mut sink = |d: usize, c: LumpedCheckpoint| strata.push((d, c));
        let outcome = try_lumped_observation_dist_strata(
            &*auto, &*sched, horizon, &obs, &Budget::unlimited(), &cache, None,
            Some(StratumSink { stride, min_depth: 0, sink: &mut sink }),
        ).expect("unbudgeted lumped strata run succeeds");
        let LumpedOutcome::Complete(reference) = outcome else {
            return Err(proptest::test_runner::TestCaseError::fail("unbudgeted run tripped"));
        };
        prop_assert!(!strata.is_empty(), "stride > 0 always deposits the horizon stratum");

        // Through the strata codec (the in-memory process-boundary
        // model) and back, then resume each stratum.
        let rows: Vec<StratumRow> = strata
            .iter()
            .map(|(d, c)| (1u64, sched.describe().to_string(), obs.describe().to_string(), *d,
                           Checkpoint::Lumped(c.clone())))
            .collect();
        let decoded = decode_strata(&encode_strata(&rows)).expect("codec round trip");
        prop_assert_eq!(decoded.len(), rows.len());

        for (_, _, _, depth, ckpt) in decoded {
            let Checkpoint::Lumped(ck) = ckpt else {
                return Err(proptest::test_runner::TestCaseError::fail("kind flipped"));
            };
            // Conservation survives the codec.
            prop_assert_eq!((ck.resolved_mass() + ck.frontier_mass()).to_bits(), 1.0f64.to_bits());
            let resumed = match try_lumped_observation_dist_strata(
                &*auto, &*sched, horizon, &obs, &Budget::unlimited(), &cache, Some(ck), None,
            ).expect("resume succeeds") {
                LumpedOutcome::Complete(d) => d,
                LumpedOutcome::Partial(c) =>
                    return Err(proptest::test_runner::TestCaseError::fail(format!(
                        "unlimited lumped resume tripped: {:?}", c.reason
                    ))),
            };
            // The stratum at every deposited depth must resume to the
            // cold bits.
            let _ = depth;
            prop_assert_eq!(dist_bits(&resumed), dist_bits(&reference));
        }

        // The strata-aware entry point with deposits disabled is the
        // plain cached engine, bit for bit.
        let plain = try_lumped_observation_dist_cached(
            &*auto, &*sched, horizon, &obs, &Budget::unlimited(), &cache,
        ).expect("plain cached run");
        prop_assert_eq!(dist_bits(&plain), dist_bits(&reference));
    }
}
