//! Wire tests for the self-healing server: per-request panic
//! isolation, the poisoned-query breaker, supervisor respawn of dead
//! workers, readiness reporting, boot-time quarantine of corrupt store
//! files, and the persist thread's keep-alive under an injected fault
//! plane. Everything is driven through a real socket; the only
//! internal handle used is the metrics struct the harness asserts on.

use dpioa_server::client::Client;
use dpioa_server::{serve, Json, ServerConfig};
use dpioa_store::FaultVfs;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn chaos_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        watcher_poll: Duration::from_millis(2),
        expose_chaos: true,
        ..ServerConfig::default()
    }
}

/// A query that panics inside the engine, exactly where buggy
/// scheduler code would.
const PANIC_QUERY: &str = r#"{"automaton":"coin","scheduler":"chaos-panic","horizon":2}"#;

/// Poll `cond` every few milliseconds until it holds or `deadline`
/// passes; returns the final verdict.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn error_code(resp: &dpioa_server::client::Response) -> String {
    resp.json()
        .unwrap()
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpioa-supervision-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn worker_panic_is_isolated_to_the_panicking_request() {
    let handle = serve(chaos_config()).expect("bind");
    let client = Client::new(handle.addr().to_string());

    // The panicking query gets a stable 500, not a dropped socket.
    let resp = client.query(PANIC_QUERY).unwrap();
    assert_eq!(resp.status, 500, "body: {}", resp.body);
    assert_eq!(error_code(&resp), "worker-panic");
    assert!(handle.metrics().worker_panics.load(Ordering::Relaxed) >= 1);

    // The worker that caught the panic keeps serving: the very next
    // query (any worker) answers normally, zero lost requests.
    let resp = client.query(r#"{"automaton":"coin","horizon":3}"#).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);

    handle.shutdown_and_wait();
}

#[test]
fn chaos_hooks_are_invisible_without_opt_in() {
    // Production config: the chaos scheduler does not resolve and the
    // panic endpoint does not exist.
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let client = Client::new(handle.addr().to_string());

    let resp = client.query(PANIC_QUERY).unwrap();
    assert_eq!(resp.status, 400, "body: {}", resp.body);
    assert_eq!(error_code(&resp), "unknown-scheduler");

    let resp = client.request("POST", "/chaos/panic-worker", None).unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(handle.metrics().worker_panics.load(Ordering::Relaxed), 0);

    handle.shutdown_and_wait();
}

#[test]
fn repeated_panics_quarantine_the_query_identity() {
    let handle = serve(ServerConfig {
        poison_threshold: 2,
        ..chaos_config()
    })
    .expect("bind");
    let client = Client::new(handle.addr().to_string());

    // Two strikes on the same (automaton, scheduler, observation,
    // horizon) identity...
    for _ in 0..2 {
        let resp = client.query(PANIC_QUERY).unwrap();
        assert_eq!(resp.status, 500, "body: {}", resp.body);
        assert_eq!(error_code(&resp), "worker-panic");
    }
    // ...and the third attempt is refused up front: no worker risked.
    let resp = client.query(PANIC_QUERY).unwrap();
    assert_eq!(resp.status, 422, "body: {}", resp.body);
    assert_eq!(error_code(&resp), "query-quarantined");
    assert_eq!(
        handle.metrics().query_quarantines.load(Ordering::Relaxed),
        1
    );

    // The breaker is per-identity, not global: the same poisonous
    // scheduler at a different horizon is a fresh identity (it still
    // gets its isolated 500), and healthy queries are untouched.
    let resp = client
        .query(r#"{"automaton":"coin","scheduler":"chaos-panic","horizon":3}"#)
        .unwrap();
    assert_eq!(resp.status, 500, "body: {}", resp.body);
    let resp = client
        .query(r#"{"automaton":"walk-8","horizon":6}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);

    handle.shutdown_and_wait();
}

#[test]
fn supervisor_respawns_a_dead_worker() {
    let handle = serve(chaos_config()).expect("bind");
    let client = Client::new(handle.addr().to_string());
    let metrics = handle.metrics();

    assert!(
        wait_until(Duration::from_secs(5), || metrics
            .workers_alive
            .load(Ordering::Relaxed)
            == 2),
        "both workers up"
    );

    // Kill a worker outside any per-request shield.
    let resp = client.request("POST", "/chaos/panic-worker", None).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(
        resp.json().unwrap().get("panicking"),
        Some(&Json::Bool(true))
    );

    // The supervisor notices the corpse and respawns the lane.
    assert!(
        wait_until(Duration::from_secs(5), || {
            metrics.worker_restarts.load(Ordering::Relaxed) >= 1
                && metrics.workers_alive.load(Ordering::Relaxed) == 2
        }),
        "worker respawned: restarts={} alive={}",
        metrics.worker_restarts.load(Ordering::Relaxed),
        metrics.workers_alive.load(Ordering::Relaxed)
    );

    // Full service restored.
    let resp = client.query(r#"{"automaton":"coin","horizon":3}"#).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let resp = client.get("/readyz").unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);

    handle.shutdown_and_wait();
}

#[test]
fn readyz_reports_the_full_gate_with_stable_keys() {
    let handle = serve(chaos_config()).expect("bind");
    let client = Client::new(handle.addr().to_string());

    assert!(
        wait_until(Duration::from_secs(5), || client
            .get("/readyz")
            .map(|r| r.status == 200)
            .unwrap_or(false)),
        "server became ready"
    );
    let body = client.get("/readyz").unwrap().json().unwrap();
    assert_eq!(body.get("ready"), Some(&Json::Bool(true)));
    assert_eq!(body.get("warm_started"), Some(&Json::Bool(true)));
    assert_eq!(body.get("shutting_down"), Some(&Json::Bool(false)));
    for key in [
        "workers_alive",
        "workers_configured",
        "queue_depth",
        "queue_capacity",
    ] {
        assert!(body.get(key).is_some(), "missing readyz key {key}");
    }

    // Liveness stays a separate, always-cheap probe.
    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.json().unwrap().get("ok"), Some(&Json::Bool(true)));
    // Probe paths reject wrong methods with the stable 405.
    let resp = client.request("POST", "/readyz", None).unwrap();
    assert_eq!(resp.status, 405);

    handle.shutdown_and_wait();
}

#[test]
fn boot_quarantines_corrupt_store_files_and_serves_cold() {
    let dir = store_dir("boot-quarantine");
    // Valid magic, truncated body: unreadable but unmistakably ours —
    // the quarantine path, not the silent cold-start path.
    std::fs::write(dir.join("cache.dpst"), b"DPSTgarbage").unwrap();
    std::fs::write(dir.join("strata.dpst"), b"DPSTgarbage").unwrap();

    let handle = serve(ServerConfig {
        store_dir: Some(dir.clone()),
        ..chaos_config()
    })
    .expect("corrupt store files must not block boot");
    let client = Client::new(handle.addr().to_string());

    // Both corpses were moved aside, with the evidence preserved.
    assert_eq!(
        handle.metrics().quarantined_files.load(Ordering::Relaxed),
        2
    );
    assert!(handle.metrics().store_errors.load(Ordering::Relaxed) >= 2);
    for name in ["cache.dpst.quarantine", "strata.dpst.quarantine"] {
        assert_eq!(
            std::fs::read(dir.join(name)).unwrap(),
            b"DPSTgarbage",
            "{name}"
        );
    }
    assert!(!dir.join("cache.dpst").exists());

    // The server is simply cold, not broken.
    let resp = client
        .query(r#"{"automaton":"walk-8","horizon":6}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(client.get("/readyz").unwrap().status, 200);

    // A graceful shutdown rebuilds valid store files over the rubble.
    handle.shutdown_and_wait();
    assert!(dir.join("cache.dpst").exists(), "parting snapshot written");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persist_thread_survives_an_injected_fault_plane() {
    let dir = store_dir("persist-chaos");
    let handle = serve(ServerConfig {
        store_dir: Some(dir.clone()),
        persist_every: Some(Duration::from_millis(3)),
        vfs: Arc::new(FaultVfs::seeded(0xC4A0_5EED, 35)),
        restart_backoff_max: Duration::from_millis(50),
        ..chaos_config()
    })
    .expect("bind");
    let client = Client::new(handle.addr().to_string());
    let metrics = handle.metrics();

    // Populate the cache so every persist pass writes real payloads.
    let resp = client
        .query(r#"{"automaton":"walk-8","horizon":8}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);

    // At a 35% fault rate the seeded plane serves up permanent faults
    // (ENOSPC) within a handful of passes; the persist thread must
    // count them and keep going rather than die.
    assert!(
        wait_until(Duration::from_secs(30), || metrics
            .persist_errors
            .load(Ordering::Relaxed)
            >= 1),
        "persist pass never saw a fault"
    );

    // Still serving, still periodically persisting.
    let resp = client
        .query(r#"{"automaton":"walk-8","horizon":8}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(client.get("/readyz").unwrap().status, 200);
    handle.shutdown_and_wait();

    // Whatever mix of committed, retried, and failed passes the fault
    // plane produced, atomic-rename discipline means a reboot on the
    // production plane warm-starts (or cold-starts) cleanly — never a
    // torn file, never a panic.
    let handle = serve(ServerConfig {
        store_dir: Some(dir.clone()),
        ..chaos_config()
    })
    .expect("reboot after chaos run");
    assert_eq!(
        handle.metrics().quarantined_files.load(Ordering::Relaxed),
        0,
        "no torn store file can exist after an atomic-rename fault run"
    );
    let client = Client::new(handle.addr().to_string());
    let resp = client
        .query(r#"{"automaton":"walk-8","horizon":8}"#)
        .unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    handle.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}
