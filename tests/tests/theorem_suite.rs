//! The paper's theorem suite, checked end-to-end on concrete systems:
//! transitivity (Thm 4.16), composability (Lemma 4.13 / Thm 4.15),
//! dummy-adversary insertion (Lemma 4.29), adversary restriction
//! (Lemma 4.25) and the bound lemmas (4.3 / 4.5).

use dpioa_bounded::measure_bound;
use dpioa_core::explore::ExploreLimits;
use dpioa_core::{compose2, hide_static, Action, Automaton, ExplicitAutomaton, Signature, Value};
use dpioa_insight::TraceInsight;
use dpioa_integration::random_automaton;
use dpioa_sched::SchedulerSchema;
use dpioa_secure::implementation_epsilon;
use std::sync::Arc;

fn act(s: &str) -> Action {
    Action::named(s)
}

/// A one-shot biased reporter for the relation tests.
fn reporter(tag: &str, num: u64) -> Arc<dyn Automaton> {
    let go = act(&format!("th-go-{tag}"));
    let hi = act(&format!("th-hi-{tag}"));
    let lo = act(&format!("th-lo-{tag}"));
    ExplicitAutomaton::builder(format!("th-rep-{tag}-{num}"), Value::int(0))
        .state(0, Signature::new([go], [], []))
        .state(1, Signature::new([], [], [act(&format!("th-mix-{tag}"))]))
        .state(2, Signature::new([], [hi], []))
        .state(3, Signature::new([], [lo], []))
        .state(4, Signature::new([], [], []))
        .step(0, go, 1)
        .transition(
            1,
            act(&format!("th-mix-{tag}")),
            dpioa_prob::Disc::bernoulli_dyadic(Value::int(2), Value::int(3), num, 3),
        )
        .step(2, hi, 4)
        .step(3, lo, 4)
        .build()
        .shared()
}

fn prober(tag: &str) -> Arc<dyn Automaton> {
    let go = act(&format!("th-go-{tag}"));
    let hi = act(&format!("th-hi-{tag}"));
    let lo = act(&format!("th-lo-{tag}"));
    ExplicitAutomaton::builder(format!("th-env-{tag}"), Value::int(0))
        .state(0, Signature::new([], [go], []))
        .state(1, Signature::new([hi, lo], [], []))
        .state(2, Signature::new([], [], []))
        .step(0, go, 1)
        .step(1, hi, 2)
        .step(1, lo, 2)
        .build()
        .shared()
}

#[test]
fn theorem_4_16_transitivity_over_a_grid() {
    let tag = "trans";
    let envs = [prober(tag)];
    let schema = SchedulerSchema::priority(6, 2);
    let eps = |x: &Arc<dyn Automaton>, y: &Arc<dyn Automaton>| {
        implementation_epsilon(x, y, &envs, &schema, &TraceInsight, 6).epsilon
    };
    for (i, j, k) in [(0u64, 3, 6), (1, 4, 7), (2, 2, 8)] {
        let a = reporter(tag, i);
        let b = reporter(tag, j);
        let c = reporter(tag, k);
        let (e12, e23, e13) = (eps(&a, &b), eps(&b, &c), eps(&a, &c));
        assert!(
            e13 <= e12 + e23 + 1e-12,
            "({i},{j},{k}): {e13} > {e12} + {e23}"
        );
    }
}

#[test]
fn lemma_4_13_context_never_helps_the_distinguisher() {
    let tag = "ctx";
    let a = reporter(tag, 2);
    let b = reporter(tag, 6);
    let envs = [prober(tag)];
    let schema = SchedulerSchema::priority(6, 2);
    let base = implementation_epsilon(&a, &b, &envs, &schema, &TraceInsight, 8).epsilon;
    // Context: a relay reacting to `hi`.
    let relay: Arc<dyn Automaton> = ExplicitAutomaton::builder("th-relay", Value::int(0))
        .state(0, Signature::new([act("th-hi-ctx")], [], []))
        .state(1, Signature::new([], [act("th-echo")], []))
        .step(0, act("th-hi-ctx"), 1)
        .step(1, act("th-echo"), 1)
        .build()
        .shared();
    let ca = compose2(relay.clone(), a);
    let cb = compose2(relay, b);
    let composed = implementation_epsilon(&ca, &cb, &envs, &schema, &TraceInsight, 8).epsilon;
    assert!(composed <= base + 1e-12, "{composed} > {base}");
    assert_eq!(base, 0.5); // |2/8 − 6/8|
}

#[test]
fn lemma_4_3_composition_bound_over_random_systems() {
    let limits = ExploreLimits::default();
    for seed in 0..8u64 {
        let a = random_automaton("th-b1", &format!("thb1{seed}"), 4, seed);
        let b = random_automaton("th-b2", &format!("thb2{seed}"), 4, seed + 77);
        let ba = measure_bound(&*a, limits).bound();
        let bb = measure_bound(&*b, limits).bound();
        let bc = measure_bound(&*compose2(a, b), limits).bound();
        // The linear law with a conservative constant.
        assert!(bc <= 4 * (ba + bb), "seed {seed}: {bc} > 4·({ba}+{bb})");
        // Composition cannot shrink below a component.
        assert!(bc >= ba.max(bb));
    }
}

#[test]
fn lemma_4_5_hiding_bound_over_random_systems() {
    let limits = ExploreLimits::default();
    for seed in 0..8u64 {
        let a = random_automaton("th-h", &format!("thh{seed}"), 5, seed);
        let base = measure_bound(&*a, limits).bound();
        // Hide the automaton's first declared output (if any).
        let out: Vec<Action> = a.signature(&a.start_state()).output.into_iter().collect();
        let h = hide_static(a, out);
        let hidden = measure_bound(&*h, limits).bound();
        assert!(hidden <= 2 * base, "seed {seed}: {hidden} > 2·{base}");
    }
}

#[test]
fn measured_epsilon_is_symmetric_for_matched_schemas() {
    // Not a paper theorem, but a sanity invariant of the measured
    // quantity: with identical enumerable schemas on both sides, the
    // max–min distance is symmetric for this protocol family.
    let tag = "sym";
    let a = reporter(tag, 1);
    let b = reporter(tag, 6);
    let envs = [prober(tag)];
    let schema = SchedulerSchema::priority(6, 2);
    let ab = implementation_epsilon(&a, &b, &envs, &schema, &TraceInsight, 6).epsilon;
    let ba = implementation_epsilon(&b, &a, &envs, &schema, &TraceInsight, 6).epsilon;
    assert_eq!(ab, ba);
}
