//! Workspace-local stand-in for the subset of `criterion` 0.5 this
//! repository's benches use. The build environment has no registry
//! access, so the workspace vendors a minimal harness with the same
//! surface (`criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher::iter`,
//! `black_box`).
//!
//! Semantics: each `iter` body runs a small fixed number of times and
//! the wall-clock median is printed. There is no statistical analysis,
//! warm-up, or HTML report — benches stay runnable and their assertions
//! stay checked, which is what `cargo test`/CI need. Under `--test`
//! (what `cargo test` passes to bench targets) each body runs once.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier (a display label).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label from a function name + parameter, as upstream.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// Label from a bare parameter, as upstream.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Throughput annotation (recorded but not analyzed).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `self.iters` times, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` runs bench targets with `--test`: one pass only.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iters: if test_mode { 1 } else { 3 },
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a single routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let iters = self.iters;
        run_one(&id.0, iters, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u32, mut f: F) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per = b.elapsed.as_secs_f64() / f64::from(iters.max(1));
    println!("bench {label}: {:.3} ms/iter ({iters} iters)", per * 1000.0);
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a routine parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.criterion.iters, |b| f(b, input));
        self
    }

    /// Benchmark an input-free routine inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.criterion.iters, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a group runner, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion { iters: 2 };
        let mut g = c.benchmark_group("t");
        let mut count = 0u32;
        g.sample_size(10)
            .bench_with_input(BenchmarkId::from_parameter(1), &3u32, |b, &x| {
                b.iter(|| count += x)
            });
        g.finish();
        assert_eq!(count, 6);
    }
}
