//! Workspace-local stand-in for the subset of `parking_lot` this
//! repository uses (`RwLock` and `Mutex` with non-poisoning guards).
//! The build environment has no registry access, so the workspace
//! vendors a thin wrapper over `std::sync` with the `parking_lot`
//! calling convention: `read()` / `write()` / `lock()` return guards
//! directly instead of `Result`s, recovering from poison.

#![forbid(unsafe_code)]

/// Shared-state read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-state write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Mutex guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create the lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access; never returns a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive access; never returns a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutex with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create the mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex; never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.lock().len(), 2);
    }
}
