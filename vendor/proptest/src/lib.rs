//! Workspace-local stand-in for the subset of `proptest` this
//! repository's property tests use. The build environment has no
//! registry access, so the workspace vendors a minimal, dependency-free
//! implementation: the `proptest!` macro, `Strategy` (`prop_map`,
//! `prop_recursive`), `prop_oneof!`, `Just`, `any`, integer-range and
//! string-pattern strategies, `collection::vec`, tuple strategies, and
//! the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible
//! runs, no `PROPTEST_*` env handling), and failing cases are reported
//! without shrinking. Regression files are ignored.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Bounded recursion: at each of `depth` levels, generate either
        /// a value of the inner strategy built so far or a leaf value.
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// API compatibility and ignored (container strategies already
        /// bound their own sizes).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = BoxedStrategy::new(self);
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = BoxedStrategy::new(recurse(strat));
                strat = BoxedStrategy::new(Union::new(vec![leaf.clone(), deeper]));
            }
            strat
        }

        /// Erase the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::new(self)
        }
    }

    /// Object-safe mirror of [`Strategy`] for boxing.
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cheaply clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Erase a concrete strategy.
        pub fn new<S: Strategy<Value = T> + 'static>(inner: S) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::new(inner))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies (the `prop_oneof!` body).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the (non-empty) list of arms.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end.wrapping_sub(self.start)) as u128;
                    self.start.wrapping_add((rng.next_u128() % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e.wrapping_sub(s) as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return s.wrapping_add(rng.next_u128() as $t);
                    }
                    s.wrapping_add((rng.next_u128() % span) as $t)
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize, i128);

    /// String-pattern strategy: a small interpreter for the regex-like
    /// patterns used in this workspace (literals, `[a-z]` classes,
    /// `{m,n}` repetition). Unsupported syntax falls back to emitting
    /// the pattern literally.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize, i128);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for collection strategies.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod string {
    //! Tiny `[class]{m,n}` / literal pattern interpreter.

    use crate::test_runner::TestRng;

    enum Piece {
        Literal(char),
        Class(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<Vec<char>> {
        let mut members = Vec::new();
        loop {
            let c = chars.next()?;
            match c {
                ']' => {
                    return if members.is_empty() {
                        None
                    } else {
                        Some(members)
                    }
                }
                lo => {
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next()?;
                        if hi == ']' || (hi as u32) < (lo as u32) {
                            return None;
                        }
                        for u in lo as u32..=hi as u32 {
                            members.push(char::from_u32(u)?);
                        }
                    } else {
                        members.push(lo);
                    }
                }
            }
        }
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Option<(usize, usize)> {
        let mut body = String::new();
        loop {
            let c = chars.next()?;
            if c == '}' {
                break;
            }
            body.push(c);
        }
        let (lo, hi) = match body.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = body.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((lo, hi))
    }

    fn parse(pattern: &str) -> Option<Vec<(Piece, usize, usize)>> {
        let mut chars = pattern.chars().peekable();
        let mut out = Vec::new();
        while let Some(c) = chars.next() {
            let piece = match c {
                '[' => Piece::Class(parse_class(&mut chars)?),
                '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => return None,
                '\\' => Piece::Literal(chars.next()?),
                lit => Piece::Literal(lit),
            };
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                parse_repeat(&mut chars)?
            } else {
                (1, 1)
            };
            out.push((piece, lo, hi));
        }
        Some(out)
    }

    /// Generate a string matching the supported pattern subset; emit the
    /// pattern itself verbatim if it uses unsupported syntax.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let Some(pieces) = parse(pattern) else {
            return pattern.to_string();
        };
        let mut out = String::new();
        for (piece, lo, hi) in &pieces {
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                match piece {
                    Piece::Literal(c) => out.push(*c),
                    Piece::Class(members) => out.push(members[rng.below(members.len())]),
                }
            }
        }
        out
    }
}

pub mod test_runner {
    //! Deterministic case generation and failure reporting.

    use std::fmt;

    /// Per-test configuration (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (carried by `prop_assert*`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator (SplitMix64) used for case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name, deterministically (FNV-1a).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next raw 128-bit output.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform draw from `0..n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod prelude {
    //! One-import surface, as upstream.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each generated `fn` runs `cases` deterministic
/// cases; `prop_assert*` failures abort with the case's arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  args: {:?}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        ($(&$arg,)+)
                    );
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($strat)),+
        ])
    };
}

/// Assert inside a property; failure aborts the case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*))
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, "assertion failed: `{:?}` == `{:?}`", lhs, rhs);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in -1000i128..1000, b in 0u64..300, c in 1usize..8) {
            prop_assert!((-1000..1000).contains(&a));
            prop_assert!(b < 300);
            prop_assert!((1..8).contains(&c));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1i64), 10i64..20, any::<bool>().prop_map(i64::from)]) {
            prop_assert!(v == 0 || v == 1 || (10..20).contains(&v));
        }

        #[test]
        fn vec_and_tuple(v in crate::collection::vec((0u8..5, any::<bool>()), 0..4)) {
            prop_assert!(v.len() < 4);
            for (x, _) in &v {
                prop_assert!(*x < 5);
            }
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::deterministic("string_pattern_subset");
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        let lit = crate::string::generate_from_pattern("ab-c", &mut rng);
        assert_eq!(lit, "ab-c");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::deterministic("recursive_strategies_terminate");
        for _ in 0..100 {
            // Depth is bounded, so generation must terminate.
            let _ = strat.generate(&mut rng);
        }
    }
}
