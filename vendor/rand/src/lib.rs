//! Workspace-local stand-in for the subset of `rand` 0.8 this repository
//! uses. The build environment has no registry access, so the workspace
//! vendors a minimal, dependency-free implementation with the same
//! surface: `Rng` (`gen`, `gen_bool`, `gen_range`), `SeedableRng`
//! (`seed_from_u64`), `rngs::StdRng`, and `seq::SliceRandom`
//! (`shuffle`, `choose`).
//!
//! Determinism matters more than distribution quality here: every
//! sampler in the workspace is seeded explicitly and only needs a
//! stable, well-mixed stream. `StdRng` is a SplitMix64 generator — the
//! streams differ from upstream `rand`, which is fine because no golden
//! values in the repo depend on upstream's output.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The minimal generator core: a 64-bit output stream.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The `Standard` distribution marker, as in upstream `rand`.
pub struct Standard;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Sample a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let u: f64 = <Standard as Distribution<f64>>::sample(&Standard, self);
        u < p
    }

    /// Uniform draw from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng {
                // Pre-mix so that nearby seeds do not produce nearby
                // first outputs.
                state: state ^ 0x5851_F42D_4C95_7F2D,
            }
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick a reference, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let k = rng.gen_range(1..=2usize);
            assert!(k == 1 || k == 2);
            let s = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        for _ in 0..50 {
            assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
